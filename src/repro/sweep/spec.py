"""Declarative sweep specifications.

A :class:`SweepSpec` names a design space instead of a single run: axes
over :class:`~repro.core.MachineConfig` fields, predictor/selector
registry names, machine presets, workloads, trace lengths — crossed into
concrete :class:`SweepPoint`\\ s by grid or random expansion, filtered by
constraint predicates, and replicated over seeds.  Specs are plain data:
they load from TOML or JSON files (the checked-in campaigns live under
``sweeps/``) and serialize back to JSON, so a campaign is reviewable,
diffable and re-runnable long after the session that launched it.

TOML layout (see ``sweeps/store_buffer.toml`` for a real one)::

    [sweep]
    name = "store_buffer"
    workloads = ["int"]          # names, or the suite keywords int/fp/all
    lengths = [8000]
    seeds = 3                    # replicate count (or an explicit list)

    [base]                       # shared recipe every point starts from
    machine = "mtvp"
    threads = 8
    predictor = "wang-franklin"

    [axes]                       # the crossed design space
    store_buffer_entries = [16, 64, 256]

Axis and base keys are either the *special* recipe keys (``machine``,
``threads``, ``predictor``, ``selector``) or literal ``MachineConfig``
field names; unknown keys are rejected at load time with the valid
choices listed.  Enum-valued fields (``fetch_policy``, ``mode``) take
their string values; ``store_buffer_entries = 0`` means unbounded.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import itertools
import json
import random
from pathlib import Path
from typing import Callable

from repro.core import FetchPolicy, MachineConfig, SimMode
from repro.harness.runner import RunSpec, default_length
from repro.workloads import SPEC_FP, SPEC_INT, get_workload


class SweepSpecError(ValueError):
    """A sweep specification is malformed."""


#: machine presets a spec can name; mirrors the CLI's ``--machine`` choices
PRESETS: dict[str, Callable[..., MachineConfig]] = {
    "baseline": MachineConfig.hpca05_baseline,
    "stvp": MachineConfig.stvp,
    "mtvp": MachineConfig.mtvp,
    "cmp": MachineConfig.cmp,
    "spawn-only": MachineConfig.spawn_only,
    "wide-window": MachineConfig.wide_window,
    "smt": MachineConfig.smt,
    "spmt": MachineConfig.spmt,
}

#: presets whose first argument is a context/core/program count
_THREADED_PRESETS = {"mtvp", "cmp", "spawn-only", "smt", "spmt"}

#: recipe keys that are not MachineConfig overrides
SPECIAL_KEYS = ("machine", "threads", "predictor", "selector")

_SUITES = {
    "int": lambda: SPEC_INT,
    "fp": lambda: SPEC_FP,
    "all": lambda: SPEC_INT + SPEC_FP,
}

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(MachineConfig)}

#: enum-typed MachineConfig fields and how to coerce their TOML strings
_ENUM_FIELDS = {"fetch_policy": FetchPolicy, "mode": SimMode}


def _check_keys(keys, where: str) -> None:
    for key in keys:
        if key in SPECIAL_KEYS or key in _CONFIG_FIELDS:
            continue
        valid = ", ".join(sorted(_CONFIG_FIELDS | set(SPECIAL_KEYS)))
        raise SweepSpecError(
            f"unknown {where} key {key!r}; valid keys are the recipe keys "
            f"({', '.join(SPECIAL_KEYS)}) and MachineConfig fields ({valid})"
        )


def _resolve_workloads(workloads) -> tuple[str, ...]:
    if isinstance(workloads, str):
        workloads = [workloads]
    names: list[str] = []
    for entry in workloads:
        if entry in _SUITES:
            names.extend(_SUITES[entry]())
        else:
            get_workload(entry)  # raises KeyError with the known names
            names.append(entry)
    if not names:
        raise SweepSpecError("a sweep needs at least one workload")
    # de-duplicate preserving order (suite keywords may overlap with names)
    return tuple(dict.fromkeys(names))


def _resolve_seeds(seeds) -> tuple[int, ...]:
    if isinstance(seeds, int):
        if seeds < 1:
            raise SweepSpecError("seeds must be a positive count or a list")
        return tuple(range(seeds))
    out = tuple(int(s) for s in seeds)
    if not out:
        raise SweepSpecError("a sweep needs at least one seed")
    return out


def point_id(params: dict, workload: str, length: int) -> str:
    """Stable content hash identifying one design point.

    Identity covers the full resolved recipe — machine params, workload
    and trace length — but *not* the seed: seeds are replicates of a
    point, stored as separate rows under the same id.
    """
    blob = json.dumps(
        {"params": params, "workload": workload, "length": length},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved design point (machine recipe × workload × length)."""

    point_id: str
    workload: str
    length: int
    params: dict

    def label(self) -> str:
        """Compact human-readable tag used in tables and logs."""
        parts = [f"{k}={v}" for k, v in self.params.items()]
        return f"{self.workload}@{self.length} " + " ".join(parts)


def run_spec_for(
    params: dict,
    name: str = "sweep",
    warmup: int = 0,
    sample: int | None = None,
) -> RunSpec:
    """Build the :class:`RunSpec` a recipe dict describes.

    The returned spec's factories are picklable (process pool) and
    registry-describable (result cache): the config factory is a
    ``functools.partial`` over a :class:`MachineConfig` preset
    classmethod, predictor/selector stay registry names.
    ``warmup``/``sample`` are campaign-level interval-protocol settings
    (see :class:`SweepSpec`), applied uniformly to every point.
    """
    machine = params.get("machine", "mtvp")
    if machine not in PRESETS:
        raise SweepSpecError(
            f"unknown machine preset {machine!r} (valid: {', '.join(PRESETS)})"
        )
    preset = PRESETS[machine]
    overrides = {}
    for key, value in params.items():
        if key in SPECIAL_KEYS:
            continue
        if key in _ENUM_FIELDS and isinstance(value, str):
            value = _ENUM_FIELDS[key](value)
        if key == "store_buffer_entries" and value == 0:
            value = None  # TOML has no null; 0 entries means unbounded
        overrides[key] = value
    threads = params.get("threads")
    if machine in _THREADED_PRESETS:
        args = (threads,) if threads is not None else ()
        factory = functools.partial(preset, *args, **overrides)
    else:
        if threads is not None:
            raise SweepSpecError(
                f"preset {machine!r} is single-context; it takes no 'threads'"
            )
        factory = functools.partial(preset, **overrides) if overrides else preset
    return RunSpec(
        name,
        factory,
        predictor_factory=params.get("predictor", "wang-franklin"),
        selector_factory=params.get("selector", "ilp-pred"),
        warmup=warmup,
        sample=sample,
    )


def _passes(constraints, context: dict) -> bool:
    for constraint in constraints:
        if callable(constraint):
            ok = constraint(context)
        else:
            try:
                ok = eval(constraint, {"__builtins__": {}}, dict(context))
            except Exception as exc:
                raise SweepSpecError(
                    f"constraint {constraint!r} failed to evaluate: {exc}"
                ) from None
        if not ok:
            return False
    return True


@dataclasses.dataclass
class SweepSpec:
    """A declarative design-space exploration campaign.

    Args:
        name: Campaign name (keys the results store).
        axes: Mapping of recipe key -> list of values to cross.
        base: Recipe shared by every point (axes override it).
        workloads: Workload names and/or suite keywords ``int``/``fp``/``all``.
        lengths: Trace lengths to cross in; empty uses the harness default.
        seeds: Replicate count (int) or explicit seed list.
        mode: ``"grid"`` (full cross product) or ``"random"`` (sampled).
        samples: Number of points drawn in random mode.
        sample_seed: RNG seed for random mode (sampling is deterministic).
        constraints: Predicates over ``params + workload + length``; each
            is a restricted-eval expression string (the TOML form, e.g.
            ``"spawn_latency <= 16 or threads == 8"``) or a callable
            taking the context dict.  Points failing any predicate are
            dropped before sampling.
        baseline: Recipe of the speedup denominator machine.
        retries: Default retry budget for failed points.
        warmup: Instructions functionally fast-forwarded before every
            point's timed region (0 = full-trace protocol).  Uniform
            across the campaign — points and baselines alike — so one
            architectural warmup checkpoint is shared by every point that
            varies only timing axes.
        sample: Measured-interval length overriding ``lengths`` for the
            timed region when set (the warmup+sample protocol).
    """

    name: str
    axes: dict = dataclasses.field(default_factory=dict)
    base: dict = dataclasses.field(default_factory=dict)
    workloads: tuple = ("int",)
    lengths: tuple = ()
    seeds: tuple = (0, 1, 2)
    mode: str = "grid"
    samples: int = 0
    sample_seed: int = 0
    constraints: tuple = ()
    baseline: dict = dataclasses.field(
        default_factory=lambda: {"machine": "baseline"}
    )
    retries: int = 1
    warmup: int = 0
    sample: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepSpecError("a sweep needs a name")
        if self.mode not in ("grid", "random"):
            raise SweepSpecError(f'mode must be "grid" or "random", not {self.mode!r}')
        if self.mode == "random" and self.samples < 1:
            raise SweepSpecError("random mode needs samples >= 1")
        if self.warmup < 0:
            raise SweepSpecError("warmup must be non-negative")
        if self.sample is not None and self.sample < 1:
            raise SweepSpecError("sample must be a positive length (or unset)")
        _check_keys(self.base, "base")
        _check_keys(self.baseline, "baseline")
        _check_keys(self.axes, "axis")
        for key, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise SweepSpecError(
                    f"axis {key!r} must be a non-empty list of values"
                )
        self.axes = {k: list(v) for k, v in self.axes.items()}
        self.workloads = _resolve_workloads(self.workloads)
        self.seeds = _resolve_seeds(self.seeds)
        self.lengths = tuple(int(n) for n in self.lengths)
        self.constraints = tuple(self.constraints)

    # ------------------------------------------------------------------
    def resolved_lengths(self) -> tuple[int, ...]:
        return self.lengths or (default_length(),)

    def expand(self) -> list[SweepPoint]:
        """The spec's concrete design points, in deterministic order.

        Grid order is workloads (outer) × lengths × axis cross product
        (inner, axes in declaration order), so truncating to the first N
        points (``--points N``) yields N distinct recipes on the first
        workload.  Points are de-duplicated by ``point_id`` (repeated
        axis values, or axes shadowed by ``base``, would otherwise emit
        the same recipe twice and collide in the results store).  Random
        mode draws ``samples`` points without replacement from the
        de-duplicated, constraint-filtered grid with ``sample_seed`` —
        so the draw is always topped up to ``samples`` distinct points
        while the grid has that many.
        """
        axis_names = list(self.axes)
        combos = list(itertools.product(*self.axes.values())) or [()]
        points: list[SweepPoint] = []
        seen: set[str] = set()
        for workload in self.workloads:
            for length in self.resolved_lengths():
                for combo in combos:
                    params = dict(self.base)
                    params.update(zip(axis_names, combo))
                    context = dict(params, workload=workload, length=length)
                    if not _passes(self.constraints, context):
                        continue
                    pid = point_id(params, workload, length)
                    if pid in seen:
                        continue
                    seen.add(pid)
                    points.append(SweepPoint(pid, workload, length, params))
        if self.mode == "random" and self.samples < len(points):
            rng = random.Random(self.sample_seed)
            points = rng.sample(points, self.samples)
        return points

    def baseline_point(self, workload: str, length: int) -> SweepPoint:
        """The denominator run paired with every point on ``workload``."""
        params = dict(self.baseline)
        return SweepPoint(
            "base-" + point_id(params, workload, length), workload, length, params
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["workloads"] = list(self.workloads)
        out["lengths"] = list(self.lengths)
        out["seeds"] = list(self.seeds)
        out["constraints"] = [
            c for c in self.constraints if isinstance(c, str)
        ]
        return out

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialize to JSON; optionally also write to ``path``."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Build a spec from parsed TOML/JSON data.

        Accepts both the flat JSON form of :meth:`to_dict` and the TOML
        table form (``[sweep]`` holding the campaign fields next to
        ``[base]``/``[axes]``/``[baseline]``).
        """
        data = dict(data)
        sweep = dict(data.pop("sweep", {}))
        merged = {**sweep, **data}
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(merged) - known
        if unknown:
            raise SweepSpecError(
                f"unknown sweep field(s) {sorted(unknown)}; valid: {sorted(known)}"
            )
        if "name" not in merged:
            raise SweepSpecError("a sweep spec needs a name ([sweep] name = ...)")
        return cls(**merged)


def load_spec(path: str | Path) -> SweepSpec:
    """Load a :class:`SweepSpec` from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if path.suffix == ".toml":
        import tomllib

        data = tomllib.loads(path.read_text())
    else:
        data = json.loads(path.read_text())
    return SweepSpec.from_dict(data)
