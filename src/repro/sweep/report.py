"""Analysis and reporting over a sweep's aggregated results.

Renders :class:`~repro.sweep.stats.PointAggregate` lists as ASCII or
markdown tables (full per-point, plus per-axis marginals), extracts the
best point and the Pareto frontier over (speedup, contexts used,
store-buffer size), and exports rows as CSV/JSON — reusing
:mod:`repro.harness.export` by packaging the sweep as an
:class:`~repro.harness.experiments.ExperimentResult` — or as JSONL.

All output is deterministic: rows follow campaign order, statistics come
from the seeded bootstrap, and nothing volatile (wall time, timestamps)
appears, so a resumed campaign's report is byte-identical to an
uninterrupted one.
"""

from __future__ import annotations

import json
from pathlib import Path
from statistics import fmean

from repro.harness.experiments import ExperimentResult
from repro.harness.metrics import geomean_speedup
from repro.sweep.stats import PointAggregate


def _fmt_value(value) -> str:
    if value is None:
        return "-"
    return str(value)


def _combine(percents: list[float]) -> float:
    """Suite-style combination of per-point speedups: geomean when defined
    (every ratio positive), arithmetic mean otherwise."""
    try:
        return geomean_speedup(percents)
    except ValueError:
        return fmean(percents)


def sweep_result(name: str, aggregates: list[PointAggregate]) -> ExperimentResult:
    """Package aggregates as an :class:`ExperimentResult`.

    One row per design point: its axis/recipe values, per-seed statistics
    (mean, geomean, 95% bootstrap CI), replicate counts and a ``noise?``
    flag for CI-straddles-zero points.  The summary carries the best
    point and campaign health counts, so CSV/JSON exports round-trip
    everything a plot needs.
    """
    param_keys: list[str] = []
    for agg in aggregates:
        for key in agg.params:
            if key not in param_keys:
                param_keys.append(key)
    columns = (
        ["workload", "length"]
        + param_keys
        + ["mean %", "geomean %", "ci95 lo", "ci95 hi", "seeds", "failed", "noise?"]
    )
    rows: list[dict] = []
    for agg in aggregates:
        row: dict = {"workload": agg.workload, "length": agg.length}
        for key in param_keys:
            row[key] = _fmt_value(agg.params.get(key))
        if agg.failed:
            row.update({"mean %": None, "geomean %": None,
                        "ci95 lo": None, "ci95 hi": None})
        else:
            row.update({
                "mean %": agg.mean,
                "geomean %": agg.geomean,
                "ci95 lo": agg.ci_lo,
                "ci95 hi": agg.ci_hi,
            })
        row["seeds"] = agg.n_seeds
        row["failed"] = agg.n_failed
        row["noise?"] = (
            "FAILED" if agg.failed else ("yes" if agg.straddles_zero else "")
        )
        rows.append(row)

    summary: dict = {}
    best = best_point(aggregates)
    if best is not None:
        summary["best point"] = f"{best.label()} (mean {best.mean:+.1f}%)"
    n_noise = sum(1 for a in aggregates if not a.failed and a.straddles_zero)
    n_failed = sum(1 for a in aggregates if a.failed)
    summary["points"] = len(aggregates)
    if n_noise:
        summary["points with CI straddling zero"] = n_noise
    if n_failed:
        summary["points failed"] = n_failed
    return ExperimentResult(
        experiment_id=f"sweep:{name}",
        title=f"Sweep {name}: mean speedup over seed replicates "
              f"(95% bootstrap CI)",
        columns=columns,
        rows=rows,
        summary=summary,
    )


def axis_marginals(
    aggregates: list[PointAggregate], axis: str
) -> ExperimentResult | None:
    """Marginal table for one axis: each value's combined speedup.

    Groups completed points by their value on ``axis`` and combines each
    group's per-point means (geomean when defined), exposing the axis's
    main effect the way the paper's per-figure tables do.  Returns None
    when the axis never varies among completed points.
    """
    groups: dict[object, list[PointAggregate]] = {}
    for agg in aggregates:
        if agg.failed or axis not in agg.params:
            continue
        groups.setdefault(agg.params[axis], []).append(agg)
    if len(groups) < 2:
        return None
    rows = []
    for value, group in groups.items():  # insertion = campaign order
        rows.append({
            axis: _fmt_value(value),
            "points": len(group),
            "combined %": _combine([a.mean for a in group]),
            "min %": min(a.mean for a in group),
            "max %": max(a.mean for a in group),
        })
    return ExperimentResult(
        experiment_id=f"axis:{axis}",
        title=f"Marginal effect of {axis} (combined mean speedup %)",
        columns=[axis, "points", "combined %", "min %", "max %"],
        rows=rows,
        summary={},
    )


def best_point(aggregates: list[PointAggregate]) -> PointAggregate | None:
    """The completed point with the highest mean speedup."""
    done = [a for a in aggregates if not a.failed]
    if not done:
        return None
    return max(done, key=lambda a: a.mean)


def pareto_frontier(aggregates: list[PointAggregate]) -> list[PointAggregate]:
    """Non-dominated points over (speedup ↑, contexts ↓, store buffer ↓).

    A point is dominated when another completed point is at least as good
    on all three objectives — more (or equal) speedup from no more
    hardware contexts and no more store-buffer entries — and strictly
    better on at least one.  The frontier answers "how much machine does
    that speedup actually need", which a best-point scalar hides.
    """
    done = [a for a in aggregates if not a.failed]

    def dominates(a: PointAggregate, b: PointAggregate) -> bool:
        no_worse = (
            a.mean >= b.mean
            and a.contexts_used <= b.contexts_used
            and a.store_buffer_entries <= b.store_buffer_entries
        )
        better = (
            a.mean > b.mean
            or a.contexts_used < b.contexts_used
            or a.store_buffer_entries < b.store_buffer_entries
        )
        return no_worse and better

    return [
        b for b in done if not any(dominates(a, b) for a in done if a is not b)
    ]


def pareto_result(aggregates: list[PointAggregate]) -> ExperimentResult:
    """The Pareto frontier as a table (campaign order)."""
    rows = []
    for agg in pareto_frontier(aggregates):
        sb = agg.store_buffer_entries
        rows.append({
            "workload": agg.workload,
            "point": " ".join(f"{k}={v}" for k, v in agg.params.items()),
            "mean %": agg.mean,
            "contexts": agg.contexts_used,
            "store buffer": "unlimited" if sb == float("inf") else int(sb),
        })
    return ExperimentResult(
        experiment_id="pareto",
        title="Pareto frontier: speedup vs contexts vs store-buffer size",
        columns=["workload", "point", "mean %", "contexts", "store buffer"],
        rows=rows,
        summary={},
    )


def format_markdown(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as a GitHub-flavored table."""
    from repro.harness.experiments import _fmt

    lines = [f"### {result.title}", ""]
    lines.append("| " + " | ".join(result.columns) + " |")
    lines.append("|" + "|".join(" --- " for _ in result.columns) + "|")
    for row in result.rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(c)) for c in result.columns) + " |"
        )
    for key, value in result.summary.items():
        lines.append(f"\n**{key}:** {_fmt(value)}")
    return "\n".join(lines) + "\n"


def export_jsonl(
    aggregates: list[PointAggregate], path: str | Path | None = None
) -> str:
    """One JSON object per point, newline-delimited (plot/pandas-friendly)."""
    lines = []
    for agg in aggregates:
        lines.append(json.dumps({
            "point_id": agg.point_id,
            "workload": agg.workload,
            "length": agg.length,
            "params": agg.params,
            "seeds": agg.seeds,
            "speedups": agg.speedups,
            "mean": agg.mean,
            "geomean": agg.geomean,
            "ci95": [agg.ci_lo, agg.ci_hi],
            "straddles_zero": agg.straddles_zero,
            "n_failed": agg.n_failed,
            "contexts_used": agg.contexts_used,
        }, sort_keys=True))
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        Path(path).write_text(text)
    return text


def full_report(name: str, aggregates: list[PointAggregate]) -> str:
    """The complete ASCII report: per-point table, marginals, Pareto."""
    parts = [sweep_result(name, aggregates).format_table()]
    axes_seen: list[str] = []
    for agg in aggregates:
        for key in agg.params:
            if key not in axes_seen:
                axes_seen.append(key)
    for axis in axes_seen:
        marginal = axis_marginals(aggregates, axis)
        if marginal is not None:
            parts.append(marginal.format_table())
    pareto = pareto_result(aggregates)
    if pareto.rows:
        parts.append(pareto.format_table())
    return "\n\n".join(parts)


def axis_progress(axes, rows) -> dict:
    """Per-axis done/total row progress, straight from store rows.

    For each axis named in ``axes`` (a :class:`SweepSpec`'s ``axes``
    mapping, or any iterable of param keys), returns
    ``{axis: {value_label: (done, total)}}`` counting the sweep's
    *point* rows by the axis value their params carry.  This is what
    makes a long campaign's ``sweep status`` legible: you see which
    slice of the design space is holding the sweep up, not just a
    global row count.
    """
    out: dict[str, dict[str, tuple[int, int]]] = {}
    for axis in axes:
        per: dict[str, tuple[int, int]] = {}
        for row in rows:
            if row["role"] != "point":
                continue
            params = row["params"]
            if isinstance(params, str):
                params = json.loads(params)
            if axis not in params:
                continue
            label = str(params[axis])
            done, total = per.get(label, (0, 0))
            per[label] = (done + (row["status"] == "done"), total + 1)
        if per:
            out[axis] = per
    return out
