"""Persistent SQLite results store backing sweep campaigns.

One row per ``(sweep, point_id, seed)`` — the full resolved recipe, the
resolved :class:`~repro.core.MachineConfig`, the
:class:`~repro.core.SimStats` digest, a status
(``pending``/``running``/``done``/``failed``), the attempt count, wall
time and code version.  The store is what makes campaigns *resumable*:
re-launching an interrupted sweep re-inserts its rows with ``INSERT OR
IGNORE`` (done rows keep their results), asks :meth:`ResultStore.runnable`
for what is left, and simulates only that.

A single database file can hold many sweeps (rows are keyed by sweep
name); the default location is ``<spec>.db`` next to the spec file, so a
campaign and its results travel together.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path

#: the legal row states, in lifecycle order
STATUSES = ("pending", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    sweep        TEXT    NOT NULL,
    point_id     TEXT    NOT NULL,
    seed         INTEGER NOT NULL,
    role         TEXT    NOT NULL DEFAULT 'point',
    idx          INTEGER NOT NULL DEFAULT 0,
    workload     TEXT    NOT NULL,
    length       INTEGER NOT NULL,
    params       TEXT    NOT NULL,
    config       TEXT,
    status       TEXT    NOT NULL DEFAULT 'pending',
    attempts     INTEGER NOT NULL DEFAULT 0,
    stats        TEXT,
    error        TEXT,
    wall_seconds REAL    NOT NULL DEFAULT 0.0,
    code_version TEXT,
    updated_at   REAL    NOT NULL DEFAULT 0.0,
    PRIMARY KEY (sweep, point_id, seed)
);
CREATE INDEX IF NOT EXISTS idx_results_status ON results (sweep, status);
"""


class ResultStore:
    """A sweep results database (see the module docstring for the model)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(self.path)
        self._db.row_factory = sqlite3.Row
        self._db.executescript(_SCHEMA)
        self._db.commit()

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def ensure(self, sweep: str, rows: list[dict]) -> int:
        """Insert missing rows as ``pending``; existing rows are untouched.

        Each row dict needs ``point_id``, ``seed``, ``workload``,
        ``length``, ``params`` (a JSON-serializable recipe) and optionally
        ``role``/``idx``.  Returns how many rows were newly inserted.
        """
        before = self._db.total_changes
        self._db.executemany(
            "INSERT OR IGNORE INTO results "
            "(sweep, point_id, seed, role, idx, workload, length, params,"
            " status, updated_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, 'pending', ?)",
            [
                (
                    sweep,
                    row["point_id"],
                    row["seed"],
                    row.get("role", "point"),
                    row.get("idx", 0),
                    row["workload"],
                    row["length"],
                    json.dumps(row["params"], sort_keys=True, default=str),
                    time.time(),
                )
                for row in rows
            ],
        )
        self._db.commit()
        return self._db.total_changes - before

    def runnable(self, sweep: str, retries: int = 0) -> list[sqlite3.Row]:
        """Rows still owed a simulation, in campaign (idx, seed) order.

        ``pending`` rows, ``running`` rows (stale claims from a crashed
        process) and ``failed`` rows with retry budget left (``attempts <=
        retries``, i.e. ``retries`` extra attempts after the first
        failure).
        """
        return self._db.execute(
            "SELECT * FROM results WHERE sweep = ? AND "
            "(status IN ('pending', 'running') "
            " OR (status = 'failed' AND attempts <= ?)) "
            "ORDER BY idx, point_id, seed",
            (sweep, retries),
        ).fetchall()

    def mark_running(self, sweep: str, keys: list[tuple[str, int]]) -> None:
        """Claim rows for this attempt (increments their attempt count)."""
        self._db.executemany(
            "UPDATE results SET status = 'running', attempts = attempts + 1, "
            "updated_at = ? WHERE sweep = ? AND point_id = ? AND seed = ?",
            [(time.time(), sweep, pid, seed) for pid, seed in keys],
        )
        self._db.commit()

    def mark_done(
        self,
        sweep: str,
        key: tuple[str, int],
        stats: dict,
        config: dict | None = None,
        wall_seconds: float = 0.0,
        code_version: str | None = None,
    ) -> None:
        """Record a completed simulation's stats digest."""
        self._db.execute(
            "UPDATE results SET status = 'done', stats = ?, config = ?, "
            "error = NULL, wall_seconds = ?, code_version = ?, updated_at = ? "
            "WHERE sweep = ? AND point_id = ? AND seed = ?",
            (
                json.dumps(stats, sort_keys=True),
                json.dumps(config, sort_keys=True, default=str) if config else None,
                wall_seconds,
                code_version,
                time.time(),
                sweep,
                key[0],
                key[1],
            ),
        )
        self._db.commit()

    def mark_failed(self, sweep: str, key: tuple[str, int], error: str) -> None:
        """Record a failed attempt (the exception text, truncated sanely)."""
        self._db.execute(
            "UPDATE results SET status = 'failed', error = ?, updated_at = ? "
            "WHERE sweep = ? AND point_id = ? AND seed = ?",
            (error[:2000], time.time(), sweep, key[0], key[1]),
        )
        self._db.commit()

    # ------------------------------------------------------------------
    def rows(self, sweep: str, role: str | None = None) -> list[sqlite3.Row]:
        """Every row of a sweep (optionally one role), in campaign order."""
        if role is None:
            return self._db.execute(
                "SELECT * FROM results WHERE sweep = ? "
                "ORDER BY idx, point_id, seed",
                (sweep,),
            ).fetchall()
        return self._db.execute(
            "SELECT * FROM results WHERE sweep = ? AND role = ? "
            "ORDER BY idx, point_id, seed",
            (sweep, role),
        ).fetchall()

    def counts(self, sweep: str) -> dict[str, int]:
        """Row count per status (every status present, zeros included)."""
        out = {status: 0 for status in STATUSES}
        for status, n in self._db.execute(
            "SELECT status, COUNT(*) FROM results WHERE sweep = ? GROUP BY status",
            (sweep,),
        ):
            out[status] = n
        return out

    def sweeps(self) -> list[str]:
        """Names of every sweep stored in this database."""
        return [
            name
            for (name,) in self._db.execute(
                "SELECT DISTINCT sweep FROM results ORDER BY sweep"
            )
        ]

    def __len__(self) -> int:
        (n,) = self._db.execute("SELECT COUNT(*) FROM results").fetchone()
        return n

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r}, rows={len(self)})"
