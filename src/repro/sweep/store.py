"""Persistent SQLite results store backing sweep campaigns.

One row per ``(sweep, point_id, seed)`` — the full resolved recipe, the
resolved :class:`~repro.core.MachineConfig`, the
:class:`~repro.core.SimStats` digest, a status
(``pending``/``running``/``done``/``failed``), the attempt count, wall
time and code version.  The store is what makes campaigns *resumable*:
re-launching an interrupted sweep re-inserts its rows with ``INSERT OR
IGNORE`` (done rows keep their results), asks :meth:`ResultStore.runnable`
for what is left, and simulates only that.

A single database file can hold many sweeps (rows are keyed by sweep
name); the default location is ``<spec>.db`` next to the spec file, so a
campaign and its results travel together.

Concurrency model (DESIGN.md §5g): the store is safe to share between
threads of one process *and* between processes holding their own
:class:`ResultStore` on the same path.  One connection per store, opened
with ``check_same_thread=False`` and serialized behind an internal lock;
WAL journaling plus a ``busy_timeout`` make cross-process writers queue
instead of raising ``database is locked``; and ownership of a row is
taken through :meth:`claim` — a conditional single-statement ``UPDATE``
whose rowcount decides the winner — so two workers can never both run the
same ``(point, seed)``.  Live claims advertise themselves through
``updated_at`` heartbeats (:meth:`touch`); a claim only becomes stealable
again once its heartbeat is older than the caller's ``stale_after``
window.

Two refinements make the model hold up under distributed workers
(DESIGN.md §5i):

* **Database-side clock.**  Staleness cutoffs and heartbeat stamps are
  computed by SQLite *at statement execution time* (:data:`_NOW`), never
  from a Python ``time.time()`` sampled earlier.  A Python-side stamp
  can be arbitrarily old by the time the statement runs — a claim
  blocked a while behind the write lock would otherwise carry a cutoff
  from *before* a live worker's latest heartbeat and steal its row.
  With the SQL clock, a ``touch()`` that committed before the claim
  executes is always visible to the claim's staleness predicate.

* **Owner tokens.**  :meth:`claim` records who holds the lease; the
  commit-side methods (:meth:`touch`, :meth:`mark_done`,
  :meth:`mark_failed`, :meth:`release`) are owner-conditional and report
  whether they fired.  A worker whose lease was reclaimed mid-run
  cannot double-commit: its ``mark_done`` misses (wrong owner) and the
  reclaiming worker's commit is the only one.  The ``commits`` column
  counts landed commits per row, so *every done row has exactly one
  commit* is a checkable invariant, not an article of faith.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path

import json

#: the legal row states, in lifecycle order
STATUSES = ("pending", "running", "done", "failed")

#: wall-clock seconds since the epoch, evaluated by SQLite when the
#: statement runs (julian day 2440587.5 is 1970-01-01T00:00Z) — immune to
#: the sampled-too-early races a Python-side timestamp invites
_NOW = "((julianday('now') - 2440587.5) * 86400.0)"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    sweep        TEXT    NOT NULL,
    point_id     TEXT    NOT NULL,
    seed         INTEGER NOT NULL,
    role         TEXT    NOT NULL DEFAULT 'point',
    idx          INTEGER NOT NULL DEFAULT 0,
    workload     TEXT    NOT NULL,
    length       INTEGER NOT NULL,
    params       TEXT    NOT NULL,
    config       TEXT,
    status       TEXT    NOT NULL DEFAULT 'pending',
    attempts     INTEGER NOT NULL DEFAULT 0,
    stats        TEXT,
    error        TEXT,
    wall_seconds REAL    NOT NULL DEFAULT 0.0,
    code_version TEXT,
    updated_at   REAL    NOT NULL DEFAULT 0.0,
    owner        TEXT,
    commits      INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (sweep, point_id, seed)
);
CREATE INDEX IF NOT EXISTS idx_results_status ON results (sweep, status);
"""

#: columns added after the v1 schema shipped; existing databases are
#: migrated in place on open
_MIGRATIONS = {
    "owner": "ALTER TABLE results ADD COLUMN owner TEXT",
    "commits": (
        "ALTER TABLE results ADD COLUMN commits INTEGER NOT NULL DEFAULT 0"
    ),
}

#: SQL fragment selecting rows still owed a simulation; parameters are
#: (retries, stale_after, stale_after) in that order — the staleness
#: cutoff is ``now - stale_after`` with *now* read from the SQL clock
_RUNNABLE = (
    "(status = 'pending'"
    " OR (status = 'failed' AND attempts <= ?)"
    f" OR (status = 'running' AND (? IS NULL OR updated_at < {_NOW} - ?)))"
)

#: SQL fragment gating commit-side updates on lease ownership; parameters
#: are (owner, owner) — ``None`` (the single-campaign legacy path) keeps
#: the update unconditional
_OWNED = "(? IS NULL OR owner = ?)"


class ResultStore:
    """A sweep results database (see the module docstring for the model)."""

    def __init__(self, path: str | Path, busy_timeout: float = 30.0) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        #: serializes every use of the shared connection; RLock so helper
        #: methods can call each other while held
        self._lock = threading.RLock()
        self._db = sqlite3.connect(
            self.path, timeout=busy_timeout, check_same_thread=False
        )
        self._db.row_factory = sqlite3.Row
        with self._lock:
            try:
                # WAL lets readers proceed while a writer commits; harmless
                # to request on every open (a no-op once set), and some
                # filesystems refuse it — plain rollback journal then
                self._db.execute("PRAGMA journal_mode=WAL")
            except sqlite3.DatabaseError:
                pass
            self._db.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
            self._db.executescript(_SCHEMA)
            have = {
                row[1]
                for row in self._db.execute("PRAGMA table_info(results)")
            }
            for column, ddl in _MIGRATIONS.items():
                if column not in have:
                    self._db.execute(ddl)
            self._db.commit()

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def ensure(self, sweep: str, rows: list[dict]) -> int:
        """Insert missing rows as ``pending``; existing rows are untouched.

        Each row dict needs ``point_id``, ``seed``, ``workload``,
        ``length``, ``params`` (a JSON-serializable recipe) and optionally
        ``role``/``idx``.  Returns how many rows were newly inserted.
        """
        with self._lock:
            before = self._db.total_changes
            with self._db:  # one transaction for the whole batch
                self._db.executemany(
                    "INSERT OR IGNORE INTO results "
                    "(sweep, point_id, seed, role, idx, workload, length,"
                    " params, status, updated_at) "
                    f"VALUES (?, ?, ?, ?, ?, ?, ?, ?, 'pending', {_NOW})",
                    [
                        (
                            sweep,
                            row["point_id"],
                            row["seed"],
                            row.get("role", "point"),
                            row.get("idx", 0),
                            row["workload"],
                            row["length"],
                            json.dumps(row["params"], sort_keys=True, default=str),
                        )
                        for row in rows
                    ],
                )
            return self._db.total_changes - before

    def runnable(
        self, sweep: str, retries: int = 0, stale_after: float | None = None
    ) -> list[sqlite3.Row]:
        """Rows still owed a simulation, in campaign (idx, seed) order.

        ``pending`` rows, ``failed`` rows with retry budget left
        (``attempts <= retries``, i.e. ``retries`` extra attempts after
        the first failure), and ``running`` rows whose claim has gone
        stale.  ``stale_after=None`` (the historical single-campaign
        default) treats *every* running row as a crashed claim;
        concurrent campaigns pass a window in seconds so rows whose
        owner heartbeat within the window are left alone.
        """
        with self._lock:
            return self._db.execute(
                f"SELECT * FROM results WHERE sweep = ? AND {_RUNNABLE} "
                "ORDER BY idx, point_id, seed",
                (sweep, retries, stale_after, stale_after or 0.0),
            ).fetchall()

    def claim(
        self,
        sweep: str,
        keys: list[tuple[str, int]],
        retries: int = 0,
        stale_after: float | None = None,
        owner: str | None = None,
    ) -> list[tuple[str, int]]:
        """Atomically take ownership of rows; returns the keys actually won.

        Each key is claimed with a conditional ``UPDATE`` that only fires
        while the row is still runnable (same predicate as
        :meth:`runnable`), so when several workers race for one row the
        rowcount names exactly one winner — the losers simply get a
        shorter list back and must not run those keys.  Claiming
        increments the attempt count, records ``owner`` on the lease, and
        stamps ``updated_at``, which doubles as the claim's first
        heartbeat.  Both the stamp and the staleness cutoff come from the
        SQL clock (:data:`_NOW`), so a heartbeat that landed while this
        claim waited for the write lock is never mistaken for stale.
        """
        claimed: list[tuple[str, int]] = []
        with self._lock, self._db:
            for pid, seed in keys:
                cursor = self._db.execute(
                    "UPDATE results SET status = 'running', "
                    f"attempts = attempts + 1, owner = ?, updated_at = {_NOW} "
                    f"WHERE sweep = ? AND point_id = ? AND seed = ? AND {_RUNNABLE}",
                    (owner, sweep, pid, seed,
                     retries, stale_after, stale_after or 0.0),
                )
                if cursor.rowcount:
                    claimed.append((pid, seed))
        return claimed

    def touch(
        self,
        sweep: str,
        keys: list[tuple[str, int]],
        owner: str | None = None,
    ) -> int:
        """Heartbeat: refresh ``updated_at`` on still-running claims.

        A worker grinding through a slow point touches its rows
        periodically so a concurrent resume (using a ``stale_after``
        window) cannot mistake them for a crashed claim and steal them.
        Rows that left ``running`` (the worker committed, or someone did
        steal them) are deliberately not revived, and with ``owner``
        given only this worker's own leases are refreshed — a worker
        whose row was reclaimed must not keep the thief's lease warm.
        Returns how many leases were actually refreshed (a shortfall
        tells the worker it lost rows).
        """
        with self._lock, self._db:
            before = self._db.total_changes
            self._db.executemany(
                f"UPDATE results SET updated_at = {_NOW} WHERE sweep = ? "
                "AND point_id = ? AND seed = ? AND status = 'running' "
                f"AND {_OWNED}",
                [(sweep, pid, seed, owner, owner) for pid, seed in keys],
            )
            return self._db.total_changes - before

    def running(
        self, sweep: str, stale_after: float | None = None
    ) -> list[sqlite3.Row]:
        """Rows currently claimed; with ``stale_after``, only live claims."""
        with self._lock:
            return self._db.execute(
                "SELECT * FROM results WHERE sweep = ? AND status = 'running' "
                f"AND (? IS NULL OR updated_at >= {_NOW} - ?) "
                "ORDER BY idx, point_id, seed",
                (sweep, stale_after, stale_after or 0.0),
            ).fetchall()

    def mark_running(self, sweep: str, keys: list[tuple[str, int]]) -> None:
        """Claim rows for this attempt (increments their attempt count).

        Unconditional — single-campaign callers that already hold the
        rows via :meth:`runnable` use this; anything that might race
        another worker must use :meth:`claim` instead.
        """
        with self._lock, self._db:
            self._db.executemany(
                "UPDATE results SET status = 'running', "
                f"attempts = attempts + 1, updated_at = {_NOW} "
                "WHERE sweep = ? AND point_id = ? AND seed = ?",
                [(sweep, pid, seed) for pid, seed in keys],
            )

    def mark_done(
        self,
        sweep: str,
        key: tuple[str, int],
        stats: dict,
        config: dict | None = None,
        wall_seconds: float = 0.0,
        code_version: str | None = None,
        owner: str | None = None,
    ) -> bool:
        """Record a completed simulation's stats digest.

        With ``owner`` given the commit only lands while this worker
        still holds the lease; a worker whose row was reclaimed gets
        ``False`` back and must treat the result as lost (the reclaimer
        re-simulates and commits instead — exactly once either way).
        Each landed commit increments the row's ``commits`` counter.
        """
        with self._lock, self._db:
            cursor = self._db.execute(
                "UPDATE results SET status = 'done', stats = ?, config = ?, "
                "error = NULL, wall_seconds = ?, code_version = ?, "
                f"commits = commits + 1, owner = NULL, updated_at = {_NOW} "
                "WHERE sweep = ? AND point_id = ? AND seed = ? "
                f"AND {_OWNED}",
                (
                    json.dumps(stats, sort_keys=True),
                    json.dumps(config, sort_keys=True, default=str)
                    if config else None,
                    wall_seconds,
                    code_version,
                    sweep,
                    key[0],
                    key[1],
                    owner,
                    owner,
                ),
            )
            return bool(cursor.rowcount)

    def mark_failed(
        self,
        sweep: str,
        key: tuple[str, int],
        error: str,
        owner: str | None = None,
    ) -> bool:
        """Record a failed attempt (the exception text, truncated sanely).

        Owner-conditional like :meth:`mark_done`: a reclaimed lease's
        late failure report is dropped (returns ``False``) instead of
        clobbering the reclaiming worker's live attempt.
        """
        with self._lock, self._db:
            cursor = self._db.execute(
                "UPDATE results SET status = 'failed', error = ?, "
                f"owner = NULL, updated_at = {_NOW} "
                "WHERE sweep = ? AND point_id = ? AND seed = ? "
                f"AND {_OWNED}",
                (error[:2000], sweep, key[0], key[1], owner, owner),
            )
            return bool(cursor.rowcount)

    def release(
        self,
        sweep: str,
        keys: list[tuple[str, int]],
        owner: str | None = None,
    ) -> int:
        """Hand still-held, not-yet-started leases back to the pool.

        The work-stealing primitive: a worker that claimed a chunk but
        sees the grid draining returns its unstarted rows to ``pending``
        so idle peers can claim them.  The claim's attempt increment is
        undone — a released row was never actually attempted.  Only rows
        this owner still holds are touched; returns how many came back.
        """
        with self._lock, self._db:
            before = self._db.total_changes
            self._db.executemany(
                "UPDATE results SET status = 'pending', "
                "attempts = attempts - 1, owner = NULL, "
                f"updated_at = {_NOW} "
                "WHERE sweep = ? AND point_id = ? AND seed = ? "
                f"AND status = 'running' AND {_OWNED}",
                [(sweep, pid, seed, owner, owner) for pid, seed in keys],
            )
            return self._db.total_changes - before

    # ------------------------------------------------------------------
    def rows(self, sweep: str, role: str | None = None) -> list[sqlite3.Row]:
        """Every row of a sweep (optionally one role), in campaign order."""
        with self._lock:
            if role is None:
                return self._db.execute(
                    "SELECT * FROM results WHERE sweep = ? "
                    "ORDER BY idx, point_id, seed",
                    (sweep,),
                ).fetchall()
            return self._db.execute(
                "SELECT * FROM results WHERE sweep = ? AND role = ? "
                "ORDER BY idx, point_id, seed",
                (sweep, role),
            ).fetchall()

    def counts(self, sweep: str) -> dict[str, int]:
        """Row count per status (every status present, zeros included)."""
        out = {status: 0 for status in STATUSES}
        with self._lock:
            for status, n in self._db.execute(
                "SELECT status, COUNT(*) FROM results WHERE sweep = ? "
                "GROUP BY status",
                (sweep,),
            ):
                out[status] = n
        return out

    def commit_stats(self, sweep: str) -> dict[str, int]:
        """The exactly-once ledger for a sweep, as checkable numbers.

        ``done`` rows each received exactly one :meth:`mark_done` iff
        ``done == commits`` and ``max_commits <= 1`` — the invariant the
        distributed CI job greps for after killing and resuming workers.
        """
        with self._lock:
            done, commits, max_commits = self._db.execute(
                "SELECT COUNT(*), COALESCE(SUM(commits), 0), "
                "COALESCE(MAX(commits), 0) "
                "FROM results WHERE sweep = ? AND status = 'done'",
                (sweep,),
            ).fetchone()
        return {"done": done, "commits": commits, "max_commits": max_commits}

    def sweeps(self) -> list[str]:
        """Names of every sweep stored in this database."""
        with self._lock:
            return [
                name
                for (name,) in self._db.execute(
                    "SELECT DISTINCT sweep FROM results ORDER BY sweep"
                )
            ]

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._db.execute("SELECT COUNT(*) FROM results").fetchone()
        return n

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r}, rows={len(self)})"
