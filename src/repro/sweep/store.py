"""Persistent SQLite results store backing sweep campaigns.

One row per ``(sweep, point_id, seed)`` — the full resolved recipe, the
resolved :class:`~repro.core.MachineConfig`, the
:class:`~repro.core.SimStats` digest, a status
(``pending``/``running``/``done``/``failed``), the attempt count, wall
time and code version.  The store is what makes campaigns *resumable*:
re-launching an interrupted sweep re-inserts its rows with ``INSERT OR
IGNORE`` (done rows keep their results), asks :meth:`ResultStore.runnable`
for what is left, and simulates only that.

A single database file can hold many sweeps (rows are keyed by sweep
name); the default location is ``<spec>.db`` next to the spec file, so a
campaign and its results travel together.

Concurrency model (DESIGN.md §5g): the store is safe to share between
threads of one process *and* between processes holding their own
:class:`ResultStore` on the same path.  One connection per store, opened
with ``check_same_thread=False`` and serialized behind an internal lock;
WAL journaling plus a ``busy_timeout`` make cross-process writers queue
instead of raising ``database is locked``; and ownership of a row is
taken through :meth:`claim` — a conditional single-statement ``UPDATE``
whose rowcount decides the winner — so two workers can never both run the
same ``(point, seed)``.  Live claims advertise themselves through
``updated_at`` heartbeats (:meth:`touch`); a claim only becomes stealable
again once its heartbeat is older than the caller's ``stale_after``
window.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path

import json

#: the legal row states, in lifecycle order
STATUSES = ("pending", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    sweep        TEXT    NOT NULL,
    point_id     TEXT    NOT NULL,
    seed         INTEGER NOT NULL,
    role         TEXT    NOT NULL DEFAULT 'point',
    idx          INTEGER NOT NULL DEFAULT 0,
    workload     TEXT    NOT NULL,
    length       INTEGER NOT NULL,
    params       TEXT    NOT NULL,
    config       TEXT,
    status       TEXT    NOT NULL DEFAULT 'pending',
    attempts     INTEGER NOT NULL DEFAULT 0,
    stats        TEXT,
    error        TEXT,
    wall_seconds REAL    NOT NULL DEFAULT 0.0,
    code_version TEXT,
    updated_at   REAL    NOT NULL DEFAULT 0.0,
    PRIMARY KEY (sweep, point_id, seed)
);
CREATE INDEX IF NOT EXISTS idx_results_status ON results (sweep, status);
"""

#: SQL fragment selecting rows still owed a simulation; parameters are
#: (retries, stale_after, stale_cutoff) in that order
_RUNNABLE = (
    "(status = 'pending'"
    " OR (status = 'failed' AND attempts <= ?)"
    " OR (status = 'running' AND (? IS NULL OR updated_at < ?)))"
)


class ResultStore:
    """A sweep results database (see the module docstring for the model)."""

    def __init__(self, path: str | Path, busy_timeout: float = 30.0) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        #: serializes every use of the shared connection; RLock so helper
        #: methods can call each other while held
        self._lock = threading.RLock()
        self._db = sqlite3.connect(
            self.path, timeout=busy_timeout, check_same_thread=False
        )
        self._db.row_factory = sqlite3.Row
        with self._lock:
            try:
                # WAL lets readers proceed while a writer commits; harmless
                # to request on every open (a no-op once set), and some
                # filesystems refuse it — plain rollback journal then
                self._db.execute("PRAGMA journal_mode=WAL")
            except sqlite3.DatabaseError:
                pass
            self._db.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
            self._db.executescript(_SCHEMA)
            self._db.commit()

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def ensure(self, sweep: str, rows: list[dict]) -> int:
        """Insert missing rows as ``pending``; existing rows are untouched.

        Each row dict needs ``point_id``, ``seed``, ``workload``,
        ``length``, ``params`` (a JSON-serializable recipe) and optionally
        ``role``/``idx``.  Returns how many rows were newly inserted.
        """
        with self._lock:
            before = self._db.total_changes
            with self._db:  # one transaction for the whole batch
                self._db.executemany(
                    "INSERT OR IGNORE INTO results "
                    "(sweep, point_id, seed, role, idx, workload, length,"
                    " params, status, updated_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, 'pending', ?)",
                    [
                        (
                            sweep,
                            row["point_id"],
                            row["seed"],
                            row.get("role", "point"),
                            row.get("idx", 0),
                            row["workload"],
                            row["length"],
                            json.dumps(row["params"], sort_keys=True, default=str),
                            time.time(),
                        )
                        for row in rows
                    ],
                )
            return self._db.total_changes - before

    def runnable(
        self, sweep: str, retries: int = 0, stale_after: float | None = None
    ) -> list[sqlite3.Row]:
        """Rows still owed a simulation, in campaign (idx, seed) order.

        ``pending`` rows, ``failed`` rows with retry budget left
        (``attempts <= retries``, i.e. ``retries`` extra attempts after
        the first failure), and ``running`` rows whose claim has gone
        stale.  ``stale_after=None`` (the historical single-campaign
        default) treats *every* running row as a crashed claim;
        concurrent campaigns pass a window in seconds so rows whose
        owner heartbeat within the window are left alone.
        """
        now = time.time()
        with self._lock:
            return self._db.execute(
                f"SELECT * FROM results WHERE sweep = ? AND {_RUNNABLE} "
                "ORDER BY idx, point_id, seed",
                (sweep, retries, stale_after, now - (stale_after or 0.0)),
            ).fetchall()

    def claim(
        self,
        sweep: str,
        keys: list[tuple[str, int]],
        retries: int = 0,
        stale_after: float | None = None,
    ) -> list[tuple[str, int]]:
        """Atomically take ownership of rows; returns the keys actually won.

        Each key is claimed with a conditional ``UPDATE`` that only fires
        while the row is still runnable (same predicate as
        :meth:`runnable`), so when several workers race for one row the
        rowcount names exactly one winner — the losers simply get a
        shorter list back and must not run those keys.  Claiming
        increments the attempt count and stamps ``updated_at``, which
        doubles as the claim's first heartbeat.
        """
        claimed: list[tuple[str, int]] = []
        with self._lock, self._db:
            for pid, seed in keys:
                now = time.time()
                cursor = self._db.execute(
                    "UPDATE results SET status = 'running', "
                    "attempts = attempts + 1, updated_at = ? "
                    f"WHERE sweep = ? AND point_id = ? AND seed = ? AND {_RUNNABLE}",
                    (now, sweep, pid, seed,
                     retries, stale_after, now - (stale_after or 0.0)),
                )
                if cursor.rowcount:
                    claimed.append((pid, seed))
        return claimed

    def touch(self, sweep: str, keys: list[tuple[str, int]]) -> None:
        """Heartbeat: refresh ``updated_at`` on still-running claims.

        A worker grinding through a slow point touches its rows
        periodically so a concurrent resume (using a ``stale_after``
        window) cannot mistake them for a crashed claim and steal them.
        Rows that left ``running`` (the worker committed, or someone did
        steal them) are deliberately not revived.
        """
        with self._lock, self._db:
            self._db.executemany(
                "UPDATE results SET updated_at = ? WHERE sweep = ? "
                "AND point_id = ? AND seed = ? AND status = 'running'",
                [(time.time(), sweep, pid, seed) for pid, seed in keys],
            )

    def running(
        self, sweep: str, stale_after: float | None = None
    ) -> list[sqlite3.Row]:
        """Rows currently claimed; with ``stale_after``, only live claims."""
        now = time.time()
        with self._lock:
            return self._db.execute(
                "SELECT * FROM results WHERE sweep = ? AND status = 'running' "
                "AND (? IS NULL OR updated_at >= ?) "
                "ORDER BY idx, point_id, seed",
                (sweep, stale_after, now - (stale_after or 0.0)),
            ).fetchall()

    def mark_running(self, sweep: str, keys: list[tuple[str, int]]) -> None:
        """Claim rows for this attempt (increments their attempt count).

        Unconditional — single-campaign callers that already hold the
        rows via :meth:`runnable` use this; anything that might race
        another worker must use :meth:`claim` instead.
        """
        with self._lock, self._db:
            self._db.executemany(
                "UPDATE results SET status = 'running', "
                "attempts = attempts + 1, updated_at = ? "
                "WHERE sweep = ? AND point_id = ? AND seed = ?",
                [(time.time(), sweep, pid, seed) for pid, seed in keys],
            )

    def mark_done(
        self,
        sweep: str,
        key: tuple[str, int],
        stats: dict,
        config: dict | None = None,
        wall_seconds: float = 0.0,
        code_version: str | None = None,
    ) -> None:
        """Record a completed simulation's stats digest."""
        with self._lock, self._db:
            self._db.execute(
                "UPDATE results SET status = 'done', stats = ?, config = ?, "
                "error = NULL, wall_seconds = ?, code_version = ?, "
                "updated_at = ? "
                "WHERE sweep = ? AND point_id = ? AND seed = ?",
                (
                    json.dumps(stats, sort_keys=True),
                    json.dumps(config, sort_keys=True, default=str)
                    if config else None,
                    wall_seconds,
                    code_version,
                    time.time(),
                    sweep,
                    key[0],
                    key[1],
                ),
            )

    def mark_failed(self, sweep: str, key: tuple[str, int], error: str) -> None:
        """Record a failed attempt (the exception text, truncated sanely)."""
        with self._lock, self._db:
            self._db.execute(
                "UPDATE results SET status = 'failed', error = ?, "
                "updated_at = ? "
                "WHERE sweep = ? AND point_id = ? AND seed = ?",
                (error[:2000], time.time(), sweep, key[0], key[1]),
            )

    # ------------------------------------------------------------------
    def rows(self, sweep: str, role: str | None = None) -> list[sqlite3.Row]:
        """Every row of a sweep (optionally one role), in campaign order."""
        with self._lock:
            if role is None:
                return self._db.execute(
                    "SELECT * FROM results WHERE sweep = ? "
                    "ORDER BY idx, point_id, seed",
                    (sweep,),
                ).fetchall()
            return self._db.execute(
                "SELECT * FROM results WHERE sweep = ? AND role = ? "
                "ORDER BY idx, point_id, seed",
                (sweep, role),
            ).fetchall()

    def counts(self, sweep: str) -> dict[str, int]:
        """Row count per status (every status present, zeros included)."""
        out = {status: 0 for status in STATUSES}
        with self._lock:
            for status, n in self._db.execute(
                "SELECT status, COUNT(*) FROM results WHERE sweep = ? "
                "GROUP BY status",
                (sweep,),
            ):
                out[status] = n
        return out

    def sweeps(self) -> list[str]:
        """Names of every sweep stored in this database."""
        with self._lock:
            return [
                name
                for (name,) in self._db.execute(
                    "SELECT DISTINCT sweep FROM results ORDER BY sweep"
                )
            ]

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._db.execute("SELECT COUNT(*) FROM results").fetchone()
        return n

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r}, rows={len(self)})"
