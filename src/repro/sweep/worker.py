"""Standalone sweep worker: ``python -m repro.sweep.worker``.

One worker process in a distributed campaign (``--dispatch workers``).
It opens the shared :class:`~repro.sweep.store.ResultStore`, then runs
:func:`~repro.sweep.drain.drain_store` under its own lease owner token:
lease a chunk of ``(point, seed)`` rows, heartbeat them while they
simulate, commit owner-conditionally, repeat until the sweep has nothing
left to run.  Workers need no spec file — every row carries its full
recipe in ``params``, from which
:func:`~repro.sweep.spec.run_spec_for` rebuilds the
:class:`~repro.harness.runner.RunSpec`.

The coordinator (:class:`repro.dispatch.WorkerDispatcher`) spawns these
processes and passes every execution setting explicitly, so a worker's
behaviour never depends on inherited ``REPRO_*`` environment variables.
On success the last stdout line is a JSON counter object (simulated /
retried / lost / shed / checkpoint traffic) the coordinator folds into
the campaign summary.  A worker killed mid-chunk loses at most its
current per-point group of uncommitted results; the shared
:class:`~repro.harness.cache.ResultCache` usually remembers even those,
so the reclaiming worker's retry is a cache hit, not a re-simulation.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.harness.policy import ExecutionPolicy
from repro.sweep.drain import drain_store, worker_token
from repro.sweep.store import ResultStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep.worker",
        description="Lease and simulate rows of a sweep campaign.",
    )
    parser.add_argument("--db", required=True, help="shared results database")
    parser.add_argument("--sweep", required=True, help="sweep name in the db")
    parser.add_argument(
        "--worker-id", default=None,
        help="stable worker name (lease owner tokens derive from it)",
    )
    parser.add_argument(
        "--peers", type=int, default=1,
        help="total workers sharing the store (enables tail work-stealing)",
    )
    parser.add_argument("--jobs", default=None, help="processes per chunk")
    parser.add_argument("--lanes", default=None, help="seed lanes per lease")
    parser.add_argument(
        "--retries", type=int, default=None,
        help="extra attempts per failed row",
    )
    parser.add_argument(
        "--chunk", type=int, default=None, help="rows per commit batch"
    )
    parser.add_argument(
        "--stale-after", type=float, default=None,
        help="seconds before a silent claim counts as crashed",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=None,
        help="seconds between lease touches while simulating",
    )
    parser.add_argument("--cache-dir", default=None, help="result cache dir")
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, help="warmup checkpoint dir"
    )
    parser.add_argument(
        "--warmup", type=int, default=0,
        help="warmup instructions per reconstructed spec",
    )
    parser.add_argument(
        "--sample", type=int, default=None,
        help="measured-interval length per reconstructed spec",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    policy = ExecutionPolicy(
        jobs=args.jobs if args.jobs is not None else 1,
        lanes=args.lanes,
        retries=args.retries,
        chunk=args.chunk,
        stale_after=args.stale_after,
        heartbeat=args.heartbeat,
        cache=False if args.no_cache else args.cache_dir,
        checkpoints=args.checkpoint_dir,
    )
    owner = worker_token(args.worker_id)
    echo = None if args.quiet else (
        lambda *parts: print(
            f"[{args.worker_id or owner}]", *parts, file=sys.stderr, flush=True
        )
    )
    with ResultStore(args.db) as store:
        counters = drain_store(
            store,
            args.sweep,
            policy,
            owner=owner,
            peers=max(1, args.peers),
            warmup=args.warmup,
            sample=args.sample,
            echo=echo,
        )
    # the coordinator parses this line; keep it last and keep it JSON
    print(json.dumps({"worker": args.worker_id or owner, **counters}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
