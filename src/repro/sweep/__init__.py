"""Declarative design-space exploration (``repro.sweep``).

The paper's conclusions are all sweeps — spawn latency (Fig. 2),
store-buffer size (§5.3), fetch policy (Fig. 4), predictor choice (§5.4)
— and this package turns such campaigns into first-class, file-backed
objects instead of hand-coded experiment functions:

* :mod:`~repro.sweep.spec` — declarative :class:`SweepSpec` files (TOML/
  JSON under ``sweeps/``) with grid/random expansion and constraints,
* :mod:`~repro.sweep.store` — a persistent SQLite :class:`ResultStore`
  with one row per (point, seed), giving campaigns crash resumability,
* :mod:`~repro.sweep.execute` — the retrying, chunk-committing runner,
* :mod:`~repro.sweep.stats` — multi-seed means/geomeans with bootstrap
  confidence intervals,
* :mod:`~repro.sweep.report` — tables, per-axis marginals, Pareto
  frontier and CSV/JSONL export.

CLI: ``python -m repro sweep run|status|report|resume <spec>``.
"""

from repro.sweep.drain import drain_store, worker_token
from repro.sweep.execute import (
    CampaignSummary,
    campaign_rows,
    default_db_path,
    run_sweep,
)
from repro.sweep.report import (
    axis_marginals,
    axis_progress,
    best_point,
    export_jsonl,
    format_markdown,
    full_report,
    pareto_frontier,
    pareto_result,
    sweep_result,
)
from repro.sweep.spec import (
    PRESETS,
    SweepPoint,
    SweepSpec,
    SweepSpecError,
    load_spec,
    point_id,
    run_spec_for,
)
from repro.sweep.stats import PointAggregate, aggregate, bootstrap_ci
from repro.sweep.store import ResultStore

__all__ = [
    "CampaignSummary",
    "PRESETS",
    "PointAggregate",
    "ResultStore",
    "SweepPoint",
    "SweepSpec",
    "SweepSpecError",
    "aggregate",
    "axis_marginals",
    "axis_progress",
    "best_point",
    "bootstrap_ci",
    "campaign_rows",
    "default_db_path",
    "drain_store",
    "export_jsonl",
    "format_markdown",
    "full_report",
    "load_spec",
    "pareto_frontier",
    "pareto_result",
    "point_id",
    "run_spec_for",
    "run_sweep",
    "sweep_result",
    "worker_token",
]
