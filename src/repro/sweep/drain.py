"""The claim → simulate → commit engine every dispatch mode shares.

:func:`drain_store` is the loop a sweep participant runs against a
:class:`~repro.sweep.store.ResultStore`, whether it is the only worker
(``dispatch="local"``/``"pool"`` drain in the coordinating process) or
one of many (``dispatch="workers"`` runs it inside each
``repro.sweep.worker`` subprocess):

1. snapshot the runnable rows, take a chunk, and lease it through
   :meth:`~repro.sweep.store.ResultStore.claim` under this worker's
   owner token;
2. keep the lease warm with a :class:`_Heartbeat` thread while the chunk
   simulates through :func:`~repro.harness.parallel.run_simulations`
   (``on_error="collect"``: a crashing point marks its row failed
   instead of killing the chunk);
3. commit each outcome owner-conditionally — a commit that misses
   (``mark_done`` returns ``False``) means the lease was reclaimed and
   somebody else owns the row now, so the result is dropped, not
   double-committed;
4. loop until nothing is runnable and no live peer holds rows we are
   waiting on.

Multi-worker refinements (``peers > 1``):

* **Fair tail chunks.**  When fewer than ``peers × chunk`` rows remain,
  each snapshot takes only ``ceil(remaining / peers)`` rows, so the last
  chunks spread across workers instead of one worker hoarding the tail.
* **Work shedding.**  A claimed chunk is simulated in per-point groups;
  between groups the worker checks whether the pool of claimable rows
  has run dry, and if so releases its own unstarted rows
  (:meth:`~repro.sweep.store.ResultStore.release`) back to ``pending``
  so idle peers steal them
  instead of waiting for the straggler.  Results committed per group
  keep the loss bound of a SIGKILL at one group, and the
  :class:`~repro.harness.cache.ResultCache` (shared by every worker)
  remembers even those simulations.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time

from repro.harness.cache import code_version
from repro.harness.parallel import SimulationError, run_simulations
from repro.harness.policy import ExecutionPolicy
from repro.sweep.spec import run_spec_for
from repro.sweep.store import ResultStore


def worker_token(worker_id: str | None = None) -> str:
    """A process-unique lease owner token (stable for the process)."""
    base = worker_id if worker_id else f"pid{os.getpid()}"
    return f"{base}.{os.urandom(3).hex()}"


class _Heartbeat:
    """Background thread refreshing ``updated_at`` on claimed rows.

    Runs while a chunk simulates (which can dwarf any fixed staleness
    window on big points), so concurrent campaigns using a ``stale_after``
    window see the claim as live.  ``stop()`` is idempotent and joins the
    thread; the final touch races the chunk's own commit harmlessly —
    :meth:`~repro.sweep.store.ResultStore.touch` only refreshes rows
    still ``running`` (and, with an owner token, only rows this worker
    still holds — a stolen row's new lease is never kept warm by the
    loser).
    """

    def __init__(
        self,
        store: ResultStore,
        sweep: str,
        keys: list[tuple[str, int]],
        interval: float,
        owner: str | None = None,
    ) -> None:
        self._store = store
        self._sweep = sweep
        self._keys = keys
        self._interval = interval
        self._owner = owner
        self._done = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._done.wait(self._interval):
            self._store.touch(self._sweep, self._keys, owner=self._owner)

    def stop(self) -> None:
        self._done.set()
        self._thread.join()


def drain_store(
    store: ResultStore,
    sweep: str,
    policy: ExecutionPolicy | None = None,
    *,
    mine: set | None = None,
    owner: str | None = None,
    peers: int = 1,
    warmup: int = 0,
    sample: int | None = None,
    echo=None,
    progress=None,
) -> dict:
    """Drain a sweep's runnable rows; returns this worker's counters.

    Args:
        store: The shared results store.
        sweep: Sweep name (rows are keyed by it).
        policy: Execution policy; ``jobs``/``lanes``/``cache``/
            ``checkpoints``/``retries``/``chunk``/``stale_after``/
            ``heartbeat`` are consumed here.
        mine: Restrict to these ``(point_id, seed)`` keys (``None`` =
            every row of the sweep).  The coordinator passes its
            expansion so a truncated campaign ignores foreign rows.
        owner: Lease owner token (``None`` = owner-less legacy leases).
        peers: How many workers share the store; ``> 1`` enables fair
            tail chunks and work shedding.
        warmup/sample: The campaign's interval protocol, forwarded into
            every reconstructed :class:`~repro.harness.runner.RunSpec`.
        echo: Optional ``print``-like progress callback.
        progress: Per-task progress callback (see
            :func:`~repro.harness.parallel.run_simulations`).

    Returns:
        Counter dict: ``simulated`` (tasks dispatched), ``retried``
        (dispatches of previously-failed rows), ``lost`` (results whose
        lease was reclaimed before the commit landed), ``shed`` (rows
        released for peers to steal), ``ckpt_enabled``/``ckpt_hits``/
        ``ckpt_stores`` (warmup checkpoint traffic).
    """
    policy = policy if policy is not None else ExecutionPolicy()
    say = echo if echo is not None else (lambda *_: None)
    retries = policy.retries if policy.retries is not None else 0
    stale_after = policy.stale_after
    heartbeat = policy.heartbeat
    jobs = policy.resolved_jobs()
    chunk = policy.chunk if policy.chunk is not None else max(8, 4 * jobs)
    cache_obj = policy.resolved_cache()
    ckpt_store = policy.resolved_checkpoints() if warmup else None
    #: how each chunk reaches run_simulations — resolved once, no shims
    run_policy = ExecutionPolicy(
        jobs=jobs,
        lanes=policy.lanes,
        cache=cache_obj if cache_obj is not None else False,
        checkpoints=ckpt_store if ckpt_store is not None else False,
    )
    counters = {
        "simulated": 0, "retried": 0, "lost": 0, "shed": 0,
        "ckpt_enabled": int(ckpt_store is not None),
        "ckpt_hits": 0, "ckpt_stores": 0,
    }

    def claimable(rows) -> list:
        if mine is None:
            return list(rows)
        return [r for r in rows if (r["point_id"], r["seed"]) in mine]

    def pool_is_dry() -> bool:
        return not claimable(
            store.runnable(sweep, retries, stale_after=stale_after)
        )

    def commit(group, outcomes) -> None:
        version = code_version()
        for (key, row, run_spec), outcome in zip(group, outcomes):
            if isinstance(outcome, SimulationError):
                if store.mark_failed(sweep, key, str(outcome), owner=owner):
                    say(f"{sweep}: FAILED {key[0]} seed {key[1]}: {outcome}")
                else:
                    counters["lost"] += 1
                continue
            try:
                config = dataclasses.asdict(run_spec.config_factory())
            except Exception:
                config = None
            landed = store.mark_done(
                sweep,
                key,
                outcome.to_dict(),
                config=config,
                wall_seconds=outcome.wall_seconds,
                code_version=version,
                owner=owner,
            )
            if not landed:
                counters["lost"] += 1

    def simulate(group) -> None:
        tasks = [
            (row["workload"], run_spec, row["length"], row["seed"])
            for _, row, run_spec in group
        ]
        counters["simulated"] += len(tasks)
        counters["retried"] += sum(
            1 for _, row, _ in group if row["attempts"] > 0
        )
        outcomes = run_simulations(
            tasks, on_error="collect", progress=progress, policy=run_policy
        )
        commit(group, outcomes)

    while True:
        todo = claimable(
            store.runnable(sweep, retries, stale_after=stale_after)
        )
        if not todo:
            if stale_after is not None and claimable(
                store.running(sweep, stale_after=stale_after)
            ):
                # a live peer owns rows we need: wait for it to commit
                # them (or for its heartbeat to go stale, at which point
                # runnable() hands them back to us)
                time.sleep(min(0.2, stale_after / 4))
                continue
            break
        say(f"{sweep}: {len(todo)} rows to simulate")
        take = chunk
        if peers > 1 and len(todo) <= peers * chunk:
            # tail of the grid: split what's left fairly instead of one
            # worker walking off with everything
            take = max(1, -(-len(todo) // peers))
        for start in range(0, len(todo), take):
            batch = todo[start : start + take]
            candidates = []
            # one RunSpec object per design point within the chunk: seed
            # replicates of a point then share their spec identity, which
            # is what lets the lane batcher coalesce them into one lease
            spec_memo: dict[str, object] = {}
            for row in batch:
                key = (row["point_id"], row["seed"])
                params = json.loads(row["params"])
                try:
                    run_spec = spec_memo.get(row["point_id"])
                    if run_spec is None:
                        run_spec = run_spec_for(
                            params,
                            name=row["point_id"][:8],
                            warmup=warmup,
                            sample=sample,
                        )
                        spec_memo[row["point_id"]] = run_spec
                except Exception as exc:  # bad recipe (unknown predictor, ...)
                    if store.claim(
                        sweep, [key], retries,
                        stale_after=stale_after, owner=owner,
                    ):
                        store.mark_failed(
                            sweep, key, f"{type(exc).__name__}: {exc}",
                            owner=owner,
                        )
                    continue
                candidates.append((key, row, run_spec))
            if not candidates:
                continue
            claimed = set(
                store.claim(
                    sweep,
                    [key for key, _, _ in candidates],
                    retries,
                    stale_after=stale_after,
                    owner=owner,
                )
            )
            held = [c for c in candidates if c[0] in claimed]
            if not held:
                continue  # every row lost to a concurrent worker
            beat = (
                _Heartbeat(
                    store, sweep, sorted(claimed), heartbeat, owner=owner
                )
                if heartbeat is not None
                else None
            )
            try:
                if peers <= 1:
                    simulate(held)
                else:
                    # per-point groups: commit as each finishes, and shed
                    # unstarted groups once idle peers have nothing left
                    # to claim
                    groups: list[list] = []
                    by_point: dict[str, list] = {}
                    for cand in held:
                        group = by_point.get(cand[1]["point_id"])
                        if group is None:
                            group = by_point[cand[1]["point_id"]] = []
                            groups.append(group)
                        group.append(cand)
                    for gi, group in enumerate(groups):
                        if gi and pool_is_dry():
                            rest = [
                                key
                                for g in groups[gi:]
                                for (key, _, _) in g
                            ]
                            counters["shed"] += store.release(
                                sweep, rest, owner=owner
                            )
                            break
                        simulate(group)
            finally:
                if beat is not None:
                    beat.stop()

    if ckpt_store is not None:
        counters["ckpt_hits"] = ckpt_store.hits
        counters["ckpt_stores"] = ckpt_store.stores
    return counters
