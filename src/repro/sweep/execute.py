"""Resumable execution of sweep campaigns.

:func:`run_sweep` drives a :class:`~repro.sweep.spec.SweepSpec` to
completion against a :class:`~repro.sweep.store.ResultStore`:

1. expand the spec into points, replicate over seeds, pair every
   ``(workload, length, seed)`` with a baseline (denominator) run, and
   ``INSERT OR IGNORE`` the rows — done rows from a previous launch keep
   their results, which is the whole resume story;
2. ask the store for runnable rows and fan them out through
   :func:`~repro.harness.parallel.run_simulations` in **chunks**, with
   ``on_error="collect"`` so one crashing worker marks its row failed
   instead of killing the pool, committing each chunk's outcomes before
   starting the next — an interrupt loses at most one chunk of marks (and
   the :class:`~repro.harness.cache.ResultCache`, when enabled, still
   remembers even those simulations);
3. loop until nothing is runnable: failed rows are retried while their
   attempt budget lasts, then stay ``failed`` — the campaign finishes with
   a partial-results summary rather than an abort.

Campaigns may also run *concurrently* against one store (several
processes, or the campaign server's worker threads): rows are then taken
through :meth:`~repro.sweep.store.ResultStore.claim` — a conditional
update that names exactly one winner per row — a ``stale_after`` window
keeps live claims from being stolen, and a heartbeat thread refreshes
``updated_at`` on claimed rows while their chunk simulates, so a slow
point is distinguishable from a crashed worker.

*Where* the simulations execute is an
:class:`~repro.harness.policy.ExecutionPolicy` decision: ``dispatch=
"local"`` drains serially in this process, ``"pool"`` fans chunks over a
process pool (the historical ``jobs > 1`` path), and ``"workers"``
spawns standalone ``repro.sweep.worker`` processes that lease rows
directly from the store (see :mod:`repro.dispatch` and
:mod:`repro.sweep.drain`, which owns the shared claim → simulate →
commit loop).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.harness.policy import UNSET, ExecutionPolicy
from repro.sweep.drain import _Heartbeat, drain_store  # noqa: F401  (re-export)
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore


def default_db_path(spec_path: str | Path) -> Path:
    """Where a spec's results live by default: ``<spec>.db`` next to it."""
    return Path(spec_path).with_suffix(".db")


@dataclasses.dataclass
class CampaignSummary:
    """Outcome of one :func:`run_sweep` invocation."""

    sweep: str
    total: int        #: rows this campaign covers (points × seeds + baselines)
    done: int         #: rows done after this invocation
    failed: int       #: rows failed with their retry budget exhausted
    simulated: int    #: tasks dispatched this invocation (0 on a no-op resume)
    skipped: int      #: rows already done when this invocation started
    retried: int      #: failed-row retry dispatches among ``simulated``

    @property
    def complete(self) -> bool:
        return self.done == self.total

    def format(self) -> str:
        status = "complete" if self.complete else (
            f"partial ({self.failed} failed)" if self.failed else "incomplete"
        )
        return (
            f"sweep {self.sweep}: {self.done}/{self.total} rows done, "
            f"{self.simulated} simulated ({self.retried} retries), "
            f"{self.skipped} already done — {status}"
        )


def campaign_rows(spec: SweepSpec, max_points: int | None = None) -> list[dict]:
    """The store rows a spec expands to (points × seeds, plus baselines)."""
    points = spec.expand()
    if max_points is not None:
        points = points[:max_points]
    rows: list[dict] = []
    for idx, point in enumerate(points):
        for seed in spec.seeds:
            rows.append({
                "point_id": point.point_id,
                "seed": seed,
                "role": "point",
                "idx": idx,
                "workload": point.workload,
                "length": point.length,
                "params": point.params,
            })
    for workload, length in dict.fromkeys((p.workload, p.length) for p in points):
        base = spec.baseline_point(workload, length)
        for seed in spec.seeds:
            rows.append({
                "point_id": base.point_id,
                "seed": seed,
                "role": "baseline",
                "idx": -1,
                "workload": workload,
                "length": length,
                "params": base.params,
            })
    return rows


def run_sweep(
    spec: SweepSpec,
    store: ResultStore,
    jobs=UNSET,
    cache=UNSET,
    retries=UNSET,
    max_points: int | None = None,
    chunk=UNSET,
    checkpoints=UNSET,
    echo=None,
    stale_after=UNSET,
    heartbeat=UNSET,
    progress=None,
    lanes=UNSET,
    *,
    policy: ExecutionPolicy | None = None,
    dispatch=None,
    workers: int | None = None,
) -> CampaignSummary:
    """Run (or resume) a sweep campaign; see the module docstring.

    Args:
        spec: The campaign description.
        store: The persistent results store (rows keyed by ``spec.name``).
        policy: An :class:`~repro.harness.policy.ExecutionPolicy` — the
            preferred spelling for every execution setting below.
            ``retries`` defaults to ``spec.retries`` when the policy
            leaves it unset.
        dispatch: Where simulations execute: ``"local"`` (serial, this
            process), ``"pool"`` (process pool, this process),
            ``"workers"`` (standalone worker subprocesses leasing rows
            from the store), ``"auto"`` (pool iff jobs resolve > 1), or
            a ready :class:`~repro.dispatch.Dispatcher` instance.
            Overrides ``policy.dispatch``.
        workers: Worker-process count for ``dispatch="workers"``
            (overrides ``policy.workers``; then ``$REPRO_WORKERS``,
            then 2).
        max_points: Truncate the expansion to its first N points.
        echo: Optional ``print``-like progress callback.
        progress: Optional callback receiving per-task progress dicts
            (see :func:`~repro.harness.parallel.run_simulations`).
        jobs: Deprecated — worker processes per chunk (``policy.jobs``).
        lanes: Deprecated — seed replicates coalesced per batched
            simulation lease (``policy.lanes``; ``"auto"`` batches each
            (point × seeds) replicate group into one lane-batched run).
            Grouping never changes results — rows are still claimed,
            cached and committed per seed.
        cache: Deprecated — result cache (``policy.cache``); strongly
            recommended for campaigns — it de-duplicates baselines across
            sweeps and makes interrupted chunks free to recompute.
        retries: Deprecated — extra attempts per failed row
            (``policy.retries``).
        chunk: Deprecated — tasks per commit batch (``policy.chunk``;
            default scales with ``jobs``); smaller chunks tighten the
            resume granularity.
        checkpoints: Deprecated — warmup-checkpoint store for campaigns
            with ``spec.warmup`` set (``policy.checkpoints``): the first
            point pays the functional fast-forward, every later point
            sharing its architectural axes restores it.  Hit/store
            counts are echoed with the summary.
        stale_after: Deprecated — seconds after which a ``running``
            claim with no heartbeat counts as crashed and may be
            re-claimed (``policy.stale_after``).  ``None`` (the
            single-campaign default) keeps the historical behaviour —
            every running row is presumed stale — which is correct for
            resuming after a crash but unsafe when campaigns share a
            store; concurrent callers must pass a window (and should run
            with ``heartbeat`` well under it).  The ``workers`` dispatch
            mode always applies a window (default 60 s).
        heartbeat: Deprecated — seconds between ``updated_at`` touches
            on claimed rows while a chunk simulates
            (``policy.heartbeat``; ``None`` = no heartbeat).
    """
    from repro.dispatch import get_dispatcher

    policy = ExecutionPolicy.coalesce(
        policy, "run_sweep",
        jobs=jobs, cache=cache, retries=retries, chunk=chunk,
        checkpoints=checkpoints, stale_after=stale_after,
        heartbeat=heartbeat, lanes=lanes,
    )
    policy = policy.merged(dispatch=dispatch, workers=workers)
    if policy.retries is None:
        policy = policy.merged(retries=spec.retries)

    say = echo if echo is not None else (lambda *_: None)
    rows = campaign_rows(spec, max_points)
    inserted = store.ensure(spec.name, rows)
    mine = {(r["point_id"], r["seed"]) for r in rows}
    say(f"{spec.name}: {len(rows)} rows ({inserted} new)")

    initially_done = sum(
        1
        for r in store.rows(spec.name)
        if (r["point_id"], r["seed"]) in mine and r["status"] == "done"
    )

    dispatcher = get_dispatcher(policy)
    counters = dispatcher.run(
        store,
        spec.name,
        policy,
        mine=mine,
        warmup=spec.warmup,
        sample=spec.sample,
        echo=say,
        progress=progress,
    )

    final = store.rows(spec.name)
    done = sum(
        1 for r in final if (r["point_id"], r["seed"]) in mine and r["status"] == "done"
    )
    failed = sum(
        1
        for r in final
        if (r["point_id"], r["seed"]) in mine and r["status"] == "failed"
    )
    summary = CampaignSummary(
        sweep=spec.name,
        total=len(mine),
        done=done,
        failed=failed,
        simulated=counters.get("simulated", 0),
        skipped=initially_done,
        retried=counters.get("retried", 0),
    )
    if counters.get("ckpt_enabled"):
        # serial local campaigns report exact in-process traffic; pooled
        # and distributed ones aggregate what their workers reported
        say(
            f"{spec.name}: warmup checkpoints: "
            f"{counters.get('ckpt_hits', 0)} restored, "
            f"{counters.get('ckpt_stores', 0)} stored"
        )
    say(summary.format())
    return summary
