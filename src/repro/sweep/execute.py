"""Resumable execution of sweep campaigns.

:func:`run_sweep` drives a :class:`~repro.sweep.spec.SweepSpec` to
completion against a :class:`~repro.sweep.store.ResultStore`:

1. expand the spec into points, replicate over seeds, pair every
   ``(workload, length, seed)`` with a baseline (denominator) run, and
   ``INSERT OR IGNORE`` the rows — done rows from a previous launch keep
   their results, which is the whole resume story;
2. ask the store for runnable rows and fan them out through
   :func:`~repro.harness.parallel.run_simulations` in **chunks**, with
   ``on_error="collect"`` so one crashing worker marks its row failed
   instead of killing the pool, committing each chunk's outcomes before
   starting the next — an interrupt loses at most one chunk of marks (and
   the :class:`~repro.harness.cache.ResultCache`, when enabled, still
   remembers even those simulations);
3. loop until nothing is runnable: failed rows are retried while their
   attempt budget lasts, then stay ``failed`` — the campaign finishes with
   a partial-results summary rather than an abort.

Campaigns may also run *concurrently* against one store (several
processes, or the campaign server's worker threads): rows are then taken
through :meth:`~repro.sweep.store.ResultStore.claim` — a conditional
update that names exactly one winner per row — a ``stale_after`` window
keeps live claims from being stolen, and a :class:`_Heartbeat` thread
refreshes ``updated_at`` on claimed rows while their chunk simulates, so
a slow point is distinguishable from a crashed worker.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from pathlib import Path

from repro.harness.cache import code_version
from repro.harness.parallel import (
    SimulationError,
    resolve_jobs,
    run_simulations,
)
from repro.sweep.spec import SweepSpec, run_spec_for
from repro.sweep.store import ResultStore


def default_db_path(spec_path: str | Path) -> Path:
    """Where a spec's results live by default: ``<spec>.db`` next to it."""
    return Path(spec_path).with_suffix(".db")


class _Heartbeat:
    """Background thread refreshing ``updated_at`` on claimed rows.

    Runs while a chunk simulates (which can dwarf any fixed staleness
    window on big points), so concurrent campaigns using a ``stale_after``
    window see the claim as live.  ``stop()`` is idempotent and joins the
    thread; the final touch races the chunk's own commit harmlessly —
    :meth:`~repro.sweep.store.ResultStore.touch` only refreshes rows
    still ``running``.
    """

    def __init__(
        self,
        store: ResultStore,
        sweep: str,
        keys: list[tuple[str, int]],
        interval: float,
    ) -> None:
        self._store = store
        self._sweep = sweep
        self._keys = keys
        self._interval = interval
        self._done = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._done.wait(self._interval):
            self._store.touch(self._sweep, self._keys)

    def stop(self) -> None:
        self._done.set()
        self._thread.join()


@dataclasses.dataclass
class CampaignSummary:
    """Outcome of one :func:`run_sweep` invocation."""

    sweep: str
    total: int        #: rows this campaign covers (points × seeds + baselines)
    done: int         #: rows done after this invocation
    failed: int       #: rows failed with their retry budget exhausted
    simulated: int    #: tasks dispatched this invocation (0 on a no-op resume)
    skipped: int      #: rows already done when this invocation started
    retried: int      #: failed-row retry dispatches among ``simulated``

    @property
    def complete(self) -> bool:
        return self.done == self.total

    def format(self) -> str:
        status = "complete" if self.complete else (
            f"partial ({self.failed} failed)" if self.failed else "incomplete"
        )
        return (
            f"sweep {self.sweep}: {self.done}/{self.total} rows done, "
            f"{self.simulated} simulated ({self.retried} retries), "
            f"{self.skipped} already done — {status}"
        )


def campaign_rows(spec: SweepSpec, max_points: int | None = None) -> list[dict]:
    """The store rows a spec expands to (points × seeds, plus baselines)."""
    points = spec.expand()
    if max_points is not None:
        points = points[:max_points]
    rows: list[dict] = []
    for idx, point in enumerate(points):
        for seed in spec.seeds:
            rows.append({
                "point_id": point.point_id,
                "seed": seed,
                "role": "point",
                "idx": idx,
                "workload": point.workload,
                "length": point.length,
                "params": point.params,
            })
    for workload, length in dict.fromkeys((p.workload, p.length) for p in points):
        base = spec.baseline_point(workload, length)
        for seed in spec.seeds:
            rows.append({
                "point_id": base.point_id,
                "seed": seed,
                "role": "baseline",
                "idx": -1,
                "workload": workload,
                "length": length,
                "params": base.params,
            })
    return rows


def run_sweep(
    spec: SweepSpec,
    store: ResultStore,
    jobs: int | None = None,
    cache=None,
    retries: int | None = None,
    max_points: int | None = None,
    chunk: int | None = None,
    checkpoints=None,
    echo=None,
    stale_after: float | None = None,
    heartbeat: float | None = None,
    progress=None,
    lanes=None,
) -> CampaignSummary:
    """Run (or resume) a sweep campaign; see the module docstring.

    Args:
        spec: The campaign description.
        store: The persistent results store (rows keyed by ``spec.name``).
        jobs: Worker processes per chunk (see
            :func:`~repro.harness.parallel.resolve_jobs`).
        lanes: Seed replicates coalesced per batched simulation lease
            (see :func:`~repro.harness.parallel.resolve_lanes`;
            ``"auto"`` batches each (point × seeds) replicate group into
            one lane-batched run).  Grouping never changes results — rows
            are still claimed, cached and committed per seed.
        cache: Result cache (see
            :func:`~repro.harness.parallel.resolve_cache`); strongly
            recommended for campaigns — it de-duplicates baselines across
            sweeps and makes interrupted chunks free to recompute.
        retries: Extra attempts per failed row (default: ``spec.retries``).
        max_points: Truncate the expansion to its first N points.
        chunk: Tasks per commit batch (default scales with ``jobs``);
            smaller chunks tighten the resume granularity.
        checkpoints: Warmup-checkpoint store for campaigns with
            ``spec.warmup`` set (see
            :func:`~repro.harness.checkpoint.resolve_checkpoints`): the
            first point pays the functional fast-forward, every later
            point sharing its architectural axes restores it.  Hit/store
            counts are echoed with the summary.
        echo: Optional ``print``-like progress callback.
        stale_after: Seconds after which a ``running`` claim with no
            heartbeat counts as crashed and may be re-claimed.  ``None``
            (the single-campaign default) keeps the historical behaviour
            — every running row is presumed stale — which is correct for
            resuming after a crash but unsafe when campaigns share a
            store; concurrent callers must pass a window (and should run
            with ``heartbeat`` well under it).  When rows this campaign
            needs are claimed by another live worker, the loop waits for
            them instead of re-simulating.
        heartbeat: Seconds between ``updated_at`` touches on claimed
            rows while a chunk simulates (``None`` = no heartbeat).
        progress: Optional callback receiving per-task progress dicts
            (see :func:`~repro.harness.parallel.run_simulations`).
    """
    from repro.harness.checkpoint import resolve_checkpoints

    say = echo if echo is not None else (lambda *_: None)
    if retries is None:
        retries = spec.retries
    ckpt_store = resolve_checkpoints(checkpoints) if spec.warmup else None
    rows = campaign_rows(spec, max_points)
    inserted = store.ensure(spec.name, rows)
    mine = {(r["point_id"], r["seed"]) for r in rows}
    say(f"{spec.name}: {len(rows)} rows ({inserted} new)")

    if chunk is None:
        chunk = max(8, 4 * resolve_jobs(jobs))

    simulated = retried = 0
    initially_done = sum(
        1
        for r in store.rows(spec.name)
        if (r["point_id"], r["seed"]) in mine and r["status"] == "done"
    )

    while True:
        todo = [
            r
            for r in store.runnable(spec.name, retries, stale_after=stale_after)
            if (r["point_id"], r["seed"]) in mine
        ]
        if not todo:
            if stale_after is not None and any(
                (r["point_id"], r["seed"]) in mine
                for r in store.running(spec.name, stale_after=stale_after)
            ):
                # another live campaign owns rows we need: wait for it to
                # commit them (or for its heartbeat to go stale, at which
                # point runnable() hands them back to us)
                time.sleep(min(0.2, stale_after / 4))
                continue
            break
        say(f"{spec.name}: {len(todo)} rows to simulate")
        for start in range(0, len(todo), chunk):
            batch = todo[start : start + chunk]
            candidates = []
            # one RunSpec object per design point within the chunk: seed
            # replicates of a point then share their spec identity, which
            # is what lets the lane batcher coalesce them into one lease
            spec_memo: dict[str, object] = {}
            for row in batch:
                key = (row["point_id"], row["seed"])
                params = json.loads(row["params"])
                try:
                    run_spec = spec_memo.get(row["point_id"])
                    if run_spec is None:
                        run_spec = run_spec_for(
                            params,
                            name=row["point_id"][:8],
                            warmup=spec.warmup,
                            sample=spec.sample,
                        )
                        spec_memo[row["point_id"]] = run_spec
                except Exception as exc:  # bad recipe (unknown predictor, ...)
                    if store.claim(
                        spec.name, [key], retries, stale_after=stale_after
                    ):
                        store.mark_failed(
                            spec.name, key, f"{type(exc).__name__}: {exc}"
                        )
                    continue
                candidates.append((key, row, run_spec))
            if not candidates:
                continue
            claimed = set(
                store.claim(
                    spec.name,
                    [key for key, _, _ in candidates],
                    retries,
                    stale_after=stale_after,
                )
            )
            buildable = [c for c in candidates if c[0] in claimed]
            if not buildable:
                continue  # every row lost to a concurrent campaign
            tasks = [
                (row["workload"], run_spec, row["length"], row["seed"])
                for _, row, run_spec in buildable
            ]
            simulated += len(tasks)
            retried += sum(1 for _, row, _ in buildable if row["attempts"] > 0)
            beat = (
                _Heartbeat(store, spec.name, sorted(claimed), heartbeat)
                if heartbeat is not None
                else None
            )
            try:
                outcomes = run_simulations(
                    tasks, jobs=jobs, cache=cache, on_error="collect",
                    checkpoints=ckpt_store if ckpt_store is not None else False,
                    progress=progress, lanes=lanes,
                )
            finally:
                if beat is not None:
                    beat.stop()
            version = code_version()
            for (key, row, run_spec), outcome in zip(buildable, outcomes):
                if isinstance(outcome, SimulationError):
                    store.mark_failed(spec.name, key, str(outcome))
                    say(f"{spec.name}: FAILED {key[0]} seed {key[1]}: {outcome}")
                else:
                    try:
                        config = dataclasses.asdict(run_spec.config_factory())
                    except Exception:
                        config = None
                    store.mark_done(
                        spec.name,
                        key,
                        outcome.to_dict(),
                        config=config,
                        wall_seconds=outcome.wall_seconds,
                        code_version=version,
                    )

    final = store.rows(spec.name)
    done = sum(
        1 for r in final if (r["point_id"], r["seed"]) in mine and r["status"] == "done"
    )
    failed = sum(
        1
        for r in final
        if (r["point_id"], r["seed"]) in mine and r["status"] == "failed"
    )
    summary = CampaignSummary(
        sweep=spec.name,
        total=len(mine),
        done=done,
        failed=failed,
        simulated=simulated,
        skipped=initially_done,
        retried=retried,
    )
    if ckpt_store is not None:
        # in-process traffic only: with jobs > 1 the workers hold their
        # own counters, so run serial campaigns to audit checkpoint reuse
        say(
            f"{spec.name}: warmup checkpoints: {ckpt_store.hits} restored, "
            f"{ckpt_store.stores} stored"
        )
    say(summary.format())
    return summary
