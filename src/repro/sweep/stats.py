"""Multi-seed statistics for sweep campaigns.

EXPERIMENTS.md warns that "per-benchmark numbers wobble with trace
length"; the same is true across dynamic-stream seeds.  This module turns
a point's seed replicates into defensible numbers: mean and geometric-mean
percent speedups, a percentile-bootstrap confidence interval over the
replicates, and a significance flag for points whose interval straddles
zero (the paper-honest way to say "this speedup might be noise").

Everything here is deterministic: the bootstrap RNG is seeded by
constant, so an interrupted-and-resumed campaign reports byte-identical
aggregates to an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import json
import random
from statistics import fmean

from repro.harness.metrics import geomean_speedup, percent_speedup

#: bootstrap resample count; plenty for 2-digit CI stability at small n
BOOTSTRAP_RESAMPLES = 2000


def bootstrap_ci(
    values: list[float],
    resamples: int = BOOTSTRAP_RESAMPLES,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for the mean of ``values``.

    Resamples the replicates with replacement ``resamples`` times using a
    deterministic RNG and returns the central ``confidence`` mass of the
    resampled means (the ``(1-confidence)/2`` and ``(1+confidence)/2``
    percentiles).  ``confidence`` must lie in the open interval (0, 1);
    the default 0.95 matches the repo's historical hard-coded 95% level,
    while search promotion varies it per :class:`~repro.search.SearchSpec`.
    A single replicate yields a degenerate (v, v) interval — no spread
    information exists.
    """
    if not values:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), not {confidence!r}")
    if len(values) == 1:
        return (values[0], values[0])
    alpha = 1.0 - confidence
    rng = random.Random(seed)
    k = len(values)
    means = sorted(fmean(rng.choices(values, k=k)) for _ in range(resamples))
    lo_idx = int((alpha / 2) * resamples)
    hi_idx = min(resamples - 1, int((1 - alpha / 2) * resamples))
    return (means[lo_idx], means[hi_idx])


@dataclasses.dataclass
class PointAggregate:
    """One design point's seed replicates, folded into statistics.

    ``speedups`` holds the per-seed percent speedups versus the paired
    baseline run (same workload, length and seed).  ``geomean`` is None
    when any replicate implies a non-positive ratio (≤ -100%), where a
    geometric mean is undefined.
    """

    point_id: str
    idx: int
    workload: str
    length: int
    params: dict
    config: dict
    seeds: list[int]
    speedups: list[float]
    n_failed: int
    mean: float | None = None
    geomean: float | None = None
    ci_lo: float | None = None
    ci_hi: float | None = None
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.speedups:
            self.mean = fmean(self.speedups)
            try:
                self.geomean = geomean_speedup(self.speedups)
            except ValueError:
                self.geomean = None
            self.ci_lo, self.ci_hi = bootstrap_ci(
                self.speedups, confidence=self.confidence
            )

    @property
    def n_seeds(self) -> int:
        return len(self.speedups)

    def label(self) -> str:
        """Compact human-readable tag used in summaries."""
        parts = [f"{k}={v}" for k, v in self.params.items()]
        return f"{self.workload}@{self.length} " + " ".join(parts)

    @property
    def straddles_zero(self) -> bool:
        """True when the CI contains zero — the speedup may be noise."""
        if self.ci_lo is None or self.ci_hi is None:
            return False
        return self.ci_lo <= 0.0 <= self.ci_hi

    @property
    def failed(self) -> bool:
        """True when no replicate completed at all."""
        return not self.speedups

    # knobs the Pareto frontier trades speedup against ------------------
    @property
    def contexts_used(self) -> int:
        return int(self.config.get("num_contexts", 1)) if self.config else 1

    @property
    def store_buffer_entries(self) -> float:
        """Entries, with unbounded mapped to +inf for minimization."""
        if not self.config:
            return float("inf")
        value = self.config.get("store_buffer_entries")
        return float("inf") if value is None else float(value)


def aggregate(rows, confidence: float = 0.95) -> list[PointAggregate]:
    """Fold store rows (points + baselines) into per-point aggregates.

    ``rows`` is the output of :meth:`ResultStore.rows`: ``done`` baseline
    rows index the denominators; each point's ``done`` replicates whose
    ``(workload, length, seed)`` has a baseline become speedups, while
    ``failed`` replicates are counted so graceful degradation stays
    visible in the report.  ``confidence`` sets the bootstrap CI level on
    every aggregate (search promotion varies it; reports keep 0.95).
    """
    baselines: dict[tuple[str, int, int], float] = {}
    for row in rows:
        if row["role"] == "baseline" and row["status"] == "done":
            stats = json.loads(row["stats"])
            cycles = stats.get("cycles", 0)
            useful = stats.get("useful_instructions", 0)
            if cycles > 0:
                baselines[(row["workload"], row["length"], row["seed"])] = (
                    useful / cycles
                )

    grouped: dict[str, list] = {}
    for row in rows:
        if row["role"] == "point":
            grouped.setdefault(row["point_id"], []).append(row)

    out: list[PointAggregate] = []
    for pid, group in grouped.items():
        group.sort(key=lambda r: r["seed"])
        seeds: list[int] = []
        speedups: list[float] = []
        n_failed = 0
        config: dict = {}
        for row in group:
            if row["status"] == "done":
                stats = json.loads(row["stats"])
                cycles = stats.get("cycles", 0)
                ipc = stats.get("useful_instructions", 0) / cycles if cycles else 0.0
                base = baselines.get((row["workload"], row["length"], row["seed"]))
                if base is None:
                    n_failed += 1  # denominator missing: unusable replicate
                    continue
                seeds.append(row["seed"])
                speedups.append(percent_speedup(ipc, base))
                if not config and row["config"]:
                    config = json.loads(row["config"])
            elif row["status"] == "failed":
                n_failed += 1
        first = group[0]
        out.append(
            PointAggregate(
                point_id=pid,
                idx=first["idx"],
                workload=first["workload"],
                length=first["length"],
                params=json.loads(first["params"]),
                config=config,
                seeds=seeds,
                speedups=speedups,
                n_failed=n_failed,
                confidence=confidence,
            )
        )
    out.sort(key=lambda a: (a.idx, a.point_id))
    return out
