"""String-keyed component registries.

Experiments, the CLI, benchmarks and the result cache all need to name a
value predictor or load selector; before this module each of them kept its
own name->class dict (and the cache a parallel describe-function).  A
:class:`Registry` gives every component family one canonical spelling:

* ``create(name, **kw)`` — construct an instance now,
* ``factory(name, **kw)`` — return a *picklable, cache-describable*
  factory (the class itself, or a :func:`functools.partial` over it),
* ``resolve(spec, **kw)`` — accept a registered name *or* an existing
  factory callable, so APIs can take either form in one argument.

Factories rather than instances travel through the run pipeline because a
simulation must construct fresh predictor state per run (worker processes
pickle the factory, and the result cache serializes its class + keywords).
"""

from __future__ import annotations

import functools
from typing import Any, Callable


class Registry:
    """An immutable name -> component-class mapping for one family."""

    def __init__(self, kind: str, entries: dict[str, type]) -> None:
        self.kind = kind
        self._entries = dict(entries)

    def names(self) -> tuple[str, ...]:
        """Registered names, in registration (presentation) order."""
        return tuple(self._entries)

    def get(self, name: str) -> type:
        """The class registered under ``name``."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self._entries)
            raise KeyError(
                f"unknown {self.kind} {name!r} (registered: {known})"
            ) from None

    def create(self, name: str, **kwargs: Any) -> Any:
        """Construct a fresh instance of the named component."""
        return self.get(name)(**kwargs)

    def factory(self, name: str, **kwargs: Any) -> Callable[[], Any]:
        """A zero-argument factory for the named component.

        Returns the class itself when no keywords are given (the form the
        result cache describes most compactly) and a
        :func:`functools.partial` otherwise; both pickle cleanly for the
        process pool and serialize via ``cache.describe_factory``.
        """
        cls = self.get(name)
        if not kwargs:
            return cls
        return functools.partial(cls, **kwargs)

    def resolve(
        self, spec: str | Callable[[], Any], **kwargs: Any
    ) -> Callable[[], Any]:
        """Turn a name-or-factory into a factory.

        Strings go through :meth:`factory`; callables pass straight
        through (keywords are rejected there — the caller already built
        the factory it wanted).
        """
        if isinstance(spec, str):
            return self.factory(spec, **kwargs)
        if kwargs:
            raise TypeError(
                f"keyword overrides only apply to registered names, "
                f"not to a ready-made {self.kind} factory"
            )
        if not callable(spec):
            raise TypeError(
                f"{self.kind} spec must be a registered name or a "
                f"factory callable, got {type(spec).__name__}"
            )
        return spec
