"""Top-level alias for the execution-model registry.

``repro.modes`` is the public spelling; the implementation lives in
:mod:`repro.core.modes` next to the engine it parameterizes.
"""

from __future__ import annotations

from repro.core.modes import (
    MODELS,
    BaselineModel,
    ExecutionModel,
    MtvpModel,
    SmtModel,
    SpawnOnlyModel,
    SpmtModel,
    StvpModel,
    get,
    names,
    resolve_model,
)

__all__ = [
    "BaselineModel",
    "ExecutionModel",
    "MODELS",
    "MtvpModel",
    "SmtModel",
    "SpawnOnlyModel",
    "SpmtModel",
    "StvpModel",
    "get",
    "names",
    "resolve_model",
]
