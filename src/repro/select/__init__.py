"""Load selectors (criticality predictors) from Section 5.1.

A value prediction is only *used* when a selector decides the load is worth
predicting, and in which mode.  The paper studies:

* a **cache-level oracle**: L3 misses are profitable for multithreaded
  value prediction, L1 misses for single-threaded value prediction,
* **ILP-pred**: a per-PC forward-progress tracker that "allows value
  predictions of a certain type only if the average forward progress
  (measured in issued instructions) of that type is greater than the
  forward progress when no value prediction is made", with the division
  approximated by a shift,
* (an "always" selector is provided as the no-policy baseline.)
"""

from repro.registry import Registry
from repro.select.selectors import (
    AlwaysSelector,
    IlpCommitSelector,
    IlpPredSelector,
    LoadSelector,
    MissOracleSelector,
    PredictionKind,
)

#: canonical name -> class registry; ``repro.select.create("ilp-pred")``.
REGISTRY = Registry(
    "load selector",
    {
        "always": AlwaysSelector,
        "ilp-pred": IlpPredSelector,
        "ilp-commit": IlpCommitSelector,
        "miss-oracle": MissOracleSelector,
    },
)
names = REGISTRY.names
get = REGISTRY.get
create = REGISTRY.create
factory = REGISTRY.factory
resolve = REGISTRY.resolve

__all__ = [
    "AlwaysSelector",
    "IlpCommitSelector",
    "IlpPredSelector",
    "LoadSelector",
    "MissOracleSelector",
    "PredictionKind",
    "REGISTRY",
    "create",
    "factory",
    "get",
    "names",
    "resolve",
]
