"""Selector implementations deciding whether/how to use a value prediction."""

from __future__ import annotations

import enum

from repro.isa import Instruction
from repro.memory import MemLevel


class PredictionKind(enum.IntEnum):
    """Outcome classes tracked by ILP-pred and returned by selectors."""

    NONE = 0
    STVP = 1
    MTVP = 2


class LoadSelector:
    """Base class for load selectors.

    The engine calls :meth:`choose` at the queue stage of every confident
    load prediction, passing what the machine knows at that point, and
    reports measured forward progress back through :meth:`record` when the
    prediction (or an unpredicted long-latency load) resolves.
    """

    def choose(
        self,
        inst: Instruction,
        spawn_available: bool,
        expected_level: MemLevel | None = None,
    ) -> PredictionKind:
        """Pick a prediction mode for this load.

        Args:
            inst: The load about to be (potentially) predicted.
            spawn_available: True when a free hardware context exists, so a
                multithreaded prediction is possible right now.
            expected_level: The cache level the load is known/expected to
                hit, for selectors with oracle miss knowledge.  ``None``
                when unknown.
        """
        raise NotImplementedError

    def record(
        self,
        pc: int,
        kind: PredictionKind,
        instructions: int,
        cycles: int,
        committed: int | None = None,
    ) -> None:
        """Report forward progress observed for a resolved episode.

        Args:
            pc: Static PC of the load.
            kind: Which mode the episode ran under (NONE episodes are
                unpredicted loads whose shadow the engine measured).
            instructions: Instructions fetched processor-wide between
                prediction and confirmation.
            cycles: Elapsed cycles for the episode.
            committed: Usefully committed instructions for the episode
                (confirmed speculative work only), when the engine can
                attribute them; selectors gauging progress by commit
                (Section 5.1's third predictor) use this instead.
        """

    def snapshot(self) -> dict:
        """Serialize selector state to a versioned picklable dict."""
        return {
            "version": 1,
            "kind": type(self).__name__,
            "state": self._snapshot_state(),
        }

    def restore(self, data: dict) -> None:
        """Restore from a :meth:`snapshot` payload of the same kind."""
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported LoadSelector snapshot version: "
                f"{data.get('version')!r}"
            )
        if data.get("kind") != type(self).__name__:
            raise ValueError(
                f"selector snapshot is for {data.get('kind')!r}, "
                f"not {type(self).__name__}"
            )
        self._restore_state(data["state"])

    def _snapshot_state(self) -> dict:
        """State contents for :meth:`snapshot`; stateless selectors: {}."""
        return {}

    def _restore_state(self, state: dict) -> None:
        """Restore contents captured by :meth:`_snapshot_state`."""


class AlwaysSelector(LoadSelector):
    """Predict every confident load; prefer MTVP whenever a context is free."""

    def choose(
        self,
        inst: Instruction,
        spawn_available: bool,
        expected_level: MemLevel | None = None,
    ) -> PredictionKind:
        return PredictionKind.MTVP if spawn_available else PredictionKind.STVP


class MissOracleSelector(LoadSelector):
    """Cache-level oracle from Section 5.1.

    "It assumes that L3 misses are profitable to perform a multithreaded
    value prediction ... Further, it assumes that L1 misses are profitable
    for single threaded value prediction."  Loads that hit in the L1 are
    not predicted at all.
    """

    def __init__(self, mtvp_level: MemLevel = MemLevel.MEMORY) -> None:
        #: minimum miss depth that justifies spawning a thread
        self.mtvp_level = mtvp_level

    def choose(
        self,
        inst: Instruction,
        spawn_available: bool,
        expected_level: MemLevel | None = None,
    ) -> PredictionKind:
        if expected_level is None or expected_level <= MemLevel.L1:
            return PredictionKind.NONE
        if spawn_available and expected_level >= self.mtvp_level:
            return PredictionKind.MTVP
        return PredictionKind.STVP


class _IlpEntry:
    """Per-PC forward-progress accumulators for each outcome class."""

    __slots__ = (
        "instructions",
        "cycles",
        "samples",
        "episodes",
        "latency",
        "optimistic",
    )

    def __init__(self) -> None:
        self.instructions = [0, 0, 0]
        self.cycles = [0, 0, 0]
        self.samples = [0, 0, 0]
        self.episodes = 0
        #: EWMA of observed episode length ~= the load's latency; this is
        #: the paper's simplified criticality predictor ("merely predict
        #: the latency of the load", Section 3.1).  -1 until first sample.
        self.latency = -1
        #: per-mode count of optimistic (pre-evidence) grants issued since
        #: the mode's last resolved sample; bounds warmup optimism so
        #: long-latency episodes cannot be granted without limit while the
        #: first samples are still in flight
        self.optimistic = [0, 0, 0]


class IlpPredSelector(LoadSelector):
    """The paper's implementable adaptive selector ("ILP-pred").

    Per static load it accumulates (instructions fetched, cycles) for
    episodes run with no prediction, with STVP, and with MTVP.  A mode is
    allowed only when its measured progress *rate* beats the no-prediction
    rate.  Rates use the paper's shift trick: "it is efficiently done in an
    imprecise manner by shifting down the forward progress counter by the
    largest integer power of two in the aggregate cycle count."

    Until a mode has ``warmup`` samples it is allowed optimistically, so
    the table can learn (the paper's counters likewise start permissive).
    Optimism is *bounded*: samples only land when an episode resolves,
    which for a thread spawn is hundreds of cycles after the grant, so an
    unbounded "samples < warmup → allow" rule would keep granting expensive
    speculative work on pure hope for as long as results are in flight.
    At most ``max_optimistic_grants`` grants per mode may be outstanding
    ahead of the evidence; each resolved sample resets the allowance.
    Every ``explore_period``-th episode per PC deliberately makes no
    prediction so the no-prediction baseline keeps fresh samples — without
    that, a PC whose loads always predict confidently would never measure
    what "no value prediction" is worth.
    """

    def __init__(
        self,
        entries: int = 4096,
        warmup: int = 4,
        explore_period: int = 16,
        stvp_min_latency: int = 6,
        mtvp_min_latency: int = 300,
        max_optimistic_grants: int = 16,
    ) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        if explore_period < 2:
            raise ValueError("explore_period must be at least 2")
        if max_optimistic_grants < 1:
            raise ValueError("max_optimistic_grants must be at least 1")
        self._table: dict[int, _IlpEntry] = {}
        self._entries = entries
        self.warmup = warmup
        self.explore_period = explore_period
        self.max_optimistic_grants = max_optimistic_grants
        #: criticality thresholds (Section 3.1: the critical path predictor
        #: is simplified to a latency predictor): a load whose learned
        #: latency cannot repay the recovery/spawn overhead is not worth
        #: that prediction mode — L1 hits are worth neither, only loads
        #: missing well past the L1 are worth a thread spawn
        self.stvp_min_latency = stvp_min_latency
        self.mtvp_min_latency = mtvp_min_latency
        self.decisions = {kind: 0 for kind in PredictionKind}

    def _entry(self, pc: int) -> _IlpEntry:
        # direct-mapped aliasing like the hardware table would have
        key = (pc >> 2) & (self._entries - 1)
        entry = self._table.get(key)
        if entry is None:
            entry = _IlpEntry()
            self._table[key] = entry
        return entry

    @staticmethod
    def _rate(instructions: int, cycles: int) -> int:
        """Shift-approximated instructions-per-cycle, scaled by 2**16."""
        if cycles <= 0:
            return 0
        shift = cycles.bit_length() - 1  # largest power of two in cycles
        return (instructions << 16) >> shift

    def choose(
        self,
        inst: Instruction,
        spawn_available: bool,
        expected_level: MemLevel | None = None,
    ) -> PredictionKind:
        entry = self._entry(inst.pc)
        entry.episodes += 1
        if entry.episodes == 2 or entry.episodes % self.explore_period == 0:
            # baseline refresh: decline so the engine measures a
            # no-prediction episode for this PC.  The episode-2 probe is
            # front-loaded so a baseline exists before the per-mode warmup
            # allowances run out — otherwise the "is NONE ever better?"
            # question stays unanswerable exactly while it matters most.
            self.decisions[PredictionKind.NONE] += 1
            return PredictionKind.NONE

        latency_known = entry.latency >= 0
        # grants made on hope rather than evidence this call, per mode;
        # only the mode actually chosen consumes optimism allowance
        optimism = [False, False, False]

        def allowed(kind: PredictionKind) -> bool:
            # criticality gate: the learned load latency must repay the
            # mode's overhead before forward-progress comparison applies.
            # Until a latency sample exists, a thread spawn is not risked
            # (STVP measures the latency cheaply on the first episodes).
            if not latency_known:
                if kind is PredictionKind.MTVP:
                    return False
                if entry.optimistic[kind] >= self.max_optimistic_grants:
                    return False
                optimism[kind] = True
                return True
            floor = (
                self.mtvp_min_latency
                if kind is PredictionKind.MTVP
                else self.stvp_min_latency
            )
            if entry.latency < floor:
                return False
            if (
                entry.samples[kind] < self.warmup
                or entry.samples[PredictionKind.NONE] < 1
            ):
                # pre-evidence optimism, bounded: in-flight episodes have
                # not sampled yet, so without the cap a slow mode would be
                # granted indefinitely before its first result lands
                if entry.optimistic[kind] >= self.max_optimistic_grants:
                    return False
                optimism[kind] = True
                return True
            # progress-rate comparison, exact via cross-multiplication.
            # (The paper sketches a shift-based approximate divide for the
            # hardware; the comparison itself is what matters, and the
            # shift's up-to-2x rounding would randomly flip close calls in
            # a way real hardware tuning would have ironed out.)
            i_k, c_k = entry.instructions[kind], entry.cycles[kind]
            i_n, c_n = (
                entry.instructions[PredictionKind.NONE],
                entry.cycles[PredictionKind.NONE],
            )
            return i_k * c_n > i_n * c_k

        if spawn_available and allowed(PredictionKind.MTVP):
            if optimism[PredictionKind.MTVP]:
                entry.optimistic[PredictionKind.MTVP] += 1
            self.decisions[PredictionKind.MTVP] += 1
            return PredictionKind.MTVP
        if allowed(PredictionKind.STVP):
            if optimism[PredictionKind.STVP]:
                entry.optimistic[PredictionKind.STVP] += 1
            self.decisions[PredictionKind.STVP] += 1
            return PredictionKind.STVP
        self.decisions[PredictionKind.NONE] += 1
        return PredictionKind.NONE

    def record(
        self,
        pc: int,
        kind: PredictionKind,
        instructions: int,
        cycles: int,
        committed: int | None = None,
    ) -> None:
        if cycles <= 0:
            return
        entry = self._entry(pc)
        entry.instructions[kind] += self._progress(instructions, committed)
        entry.cycles[kind] += cycles
        entry.samples[kind] += 1
        # evidence arrived: refill this mode's optimism allowance
        entry.optimistic[kind] = 0
        # episode length tracks the load's latency; quarter-weight EWMA
        if entry.latency < 0:
            entry.latency = cycles
        else:
            entry.latency += (cycles - entry.latency) >> 2
        # keep the accumulators bounded so old phases age out
        if entry.cycles[kind] > 1 << 24:
            entry.instructions[kind] >>= 1
            entry.cycles[kind] >>= 1
            entry.samples[kind] >>= 1

    @staticmethod
    def _progress(instructions: int, committed: int | None) -> int:
        """Which progress metric an episode contributes (fetched here)."""
        return instructions

    def _snapshot_state(self) -> dict:
        return {
            "table": [
                [
                    key,
                    list(e.instructions),
                    list(e.cycles),
                    list(e.samples),
                    e.episodes,
                    e.latency,
                    list(e.optimistic),
                ]
                for key, e in self._table.items()
            ],
            "decisions": {int(k): v for k, v in self.decisions.items()},
        }

    def _restore_state(self, state: dict) -> None:
        table: dict[int, _IlpEntry] = {}
        for key, instructions, cycles, samples, episodes, latency, optimistic in state[
            "table"
        ]:
            entry = _IlpEntry()
            entry.instructions = list(instructions)
            entry.cycles = list(cycles)
            entry.samples = list(samples)
            entry.episodes = episodes
            entry.latency = latency
            entry.optimistic = list(optimistic)
            table[key] = entry
        self._table = table
        self.decisions = {
            PredictionKind(int(k)): v for k, v in state["decisions"].items()
        }


class IlpCommitSelector(IlpPredSelector):
    """ILP-pred variant gauging progress by *committed* instructions.

    Section 5.1: "We also examined a third type of predictor similar to
    ILP-pred but which gauged forward progress based on committed rather
    than issued instructions.  This predictor was generally comparable to
    ILP-pred."  Where the engine can attribute usefully committed work
    (confirmed speculative commits), this selector scores episodes by that
    instead of raw fetch progress, which discounts speculative work that
    was later thrown away.
    """

    @staticmethod
    def _progress(instructions: int, committed: int | None) -> int:
        return committed if committed is not None else instructions
