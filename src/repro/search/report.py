"""Explore/exploit reporting for search campaigns.

The report answers the question the search was run to answer: *which
point won, by how much, with what statistical backing, and at what
fraction of exhaustive grid cost* — the rung funnel (points in →
promoted → eliminated per fidelity level), the final leaderboard with
bootstrap CIs, and the cost ledger.  Everything renders from a replayed
:class:`~repro.search.controller.SearchSummary`, so reports are
byte-identical whether the campaign ran uninterrupted or was killed and
resumed.
"""

from __future__ import annotations

from repro.search.controller import SearchSummary, run_search
from repro.search.spec import SearchSpec
from repro.sweep.store import ResultStore


def search_result(
    spec: SearchSpec,
    store: ResultStore,
    max_points: int | None = None,
) -> SearchSummary:
    """Replay a search's promotion decisions from store contents
    (read-only; dispatches nothing)."""
    return run_search(
        spec, store, max_points=max_points, execute=False,
        echo=lambda *_: None,
    )


def _params_label(params: dict) -> str:
    return " ".join(f"{k}={v}" for k, v in params.items()) or "(base)"


def _fidelity_label(outcome) -> str:
    sample = "full" if outcome.sample is None else str(outcome.sample)
    tag = f"{outcome.seeds} seeds × {sample}"
    if outcome.warmup:
        tag += f" (+{outcome.warmup} warmup)"
    return tag


def format_search_report(spec: SearchSpec, summary: SearchSummary) -> str:
    """Render the explore/exploit report as markdown-ish text."""
    lines: list[str] = []
    lines.append(f"# search {summary.name}")
    lines.append("")
    lines.append(
        f"objective: {summary.objective} percent speedup, "
        f"{100 * spec.confidence:.0f}% bootstrap CI promotion, "
        f"fraction {spec.fraction}"
    )
    lines.append(
        f"grid: {summary.grid_points} points; "
        f"search work: {summary.units} instructions = "
        f"{100 * summary.cost_fraction:.1f}% of the exhaustive "
        f"{summary.exhaustive_units} (final-rung protocol over the grid)"
    )
    lines.append("")

    lines.append("## rung funnel")
    lines.append("")
    lines.append(
        "| rung | fidelity | points in | promoted | by CI overlap "
        "| eliminated | extra seed rounds | rows done |"
    )
    lines.append("|---|---|---|---|---|---|---|---|")
    for outcome in summary.rungs:
        decision = outcome.decision
        if decision is None:
            lines.append(
                f"| {outcome.index} | {_fidelity_label(outcome)} "
                f"| {outcome.points_in} | — | — | — | — "
                f"| {outcome.rows_done}/{outcome.rows_total} (incomplete) |"
            )
            continue
        lines.append(
            f"| {outcome.index} | {_fidelity_label(outcome)} "
            f"| {outcome.points_in} "
            f"| {len(decision.promoted)} "
            f"| {len(decision.ambiguous)} "
            f"| {len(decision.eliminated)} "
            f"| {outcome.extra_rounds} "
            f"| {outcome.rows_done}/{outcome.rows_total} |"
        )
    lines.append("")

    if summary.leaderboard:
        lines.append("## final leaderboard")
        lines.append("")
        lines.append(
            f"| rank | point | recipe | {summary.objective} % | CI | seeds |"
        )
        lines.append("|---|---|---|---|---|---|")
        for rank, entry in enumerate(summary.leaderboard, start=1):
            ci = (
                f"[{entry['ci_lo']:+.2f}, {entry['ci_hi']:+.2f}]"
                if entry["ci_lo"] is not None
                else "—"
            )
            lines.append(
                f"| {rank} | {entry['point_id']} "
                f"| {entry['workload']}@{entry['length']} "
                f"{_params_label(entry['params'])} "
                f"| {entry['value']:+.2f} | {ci} | {entry['n_seeds']} |"
            )
        lines.append("")

    if summary.winner is not None:
        winner = summary.winner
        ci = (
            f"[{winner['ci_lo']:+.2f}, {winner['ci_hi']:+.2f}]"
            if winner["ci_lo"] is not None
            else "(degenerate)"
        )
        lines.append("## winner")
        lines.append("")
        lines.append(
            f"{winner['point_id']} — {winner['workload']}@{winner['length']} "
            f"{_params_label(winner['params'])}: "
            f"{summary.objective} {winner['value']:+.2f}% {ci} "
            f"over {winner['n_seeds']} seeds, found with "
            f"{100 * summary.cost_fraction:.1f}% of exhaustive grid cost"
        )
    else:
        lines.append("## winner")
        lines.append("")
        lines.append(
            "(none yet — the search has not completed its final rung)"
        )
    return "\n".join(lines) + "\n"


def full_search_report(
    spec: SearchSpec,
    store: ResultStore,
    max_points: int | None = None,
) -> str:
    """Replay and render in one step (the CLI/server entry point)."""
    summary = search_result(spec, store, max_points=max_points)
    return format_search_report(spec, summary)
