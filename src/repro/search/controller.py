"""The successive-halving controller.

:func:`run_search` drives a :class:`~repro.search.spec.SearchSpec` rung
by rung against a shared :class:`~repro.sweep.store.ResultStore`:

1. expand the embedded sweep's grid once; rung 0 runs every point at the
   cheapest fidelity, each later rung runs only the promoted survivors;
2. each rung is an ordinary store sweep named ``{search}:rung{i}`` —
   rows are ``INSERT OR IGNORE``-ensured and drained through the
   configured :class:`~repro.dispatch.Dispatcher`, so rungs inherit the
   whole sweep execution stack: resume, exactly-once owner-conditional
   commits, ``--dispatch workers``, seed-lane batching, the shared
   :class:`~repro.harness.cache.ResultCache` and warmup checkpoints;
3. after a rung drains, its rows are folded by
   :func:`~repro.sweep.stats.aggregate` at the spec's confidence level
   and cut by :func:`~repro.search.promote.promote`; points whose CI
   overlaps the cut get bandit-style *extra seed replicates* (up to
   ``max_extra_seeds`` rounds, allocated to every still-contending
   point) until the overlap resolves or the budget runs out, in which
   case the still-ambiguous points are promoted rather than truncated;
4. the winner is the best point by the objective at the final rung.

Every decision is a pure function of store contents (the bootstrap is
seeded, ranking ties break on grid order), so a controller killed at any
instant resumes to the same promotions and the same winner with zero
re-simulation of committed rows — and ``execute=False`` *replays* those
decisions without dispatching anything, which is how ``search status``
and ``search report`` read a campaign's state.

Rows carry their **original grid index** into every rung, so aggregate
ordering — and therefore tie-breaks — are identical between the search
and the exhaustive reference sweep the fidelity harness compares against.
"""

from __future__ import annotations

import dataclasses

from repro.harness.policy import ExecutionPolicy
from repro.search.promote import (
    PromotionDecision,
    objective_value,
    promote,
    rank_points,
)
from repro.search.spec import SearchSpec
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sweep.stats import PointAggregate, aggregate
from repro.sweep.store import ResultStore


def rung_rows(
    sweep: SweepSpec,
    points: list[SweepPoint],
    seeds,
    index_of: dict[str, int],
) -> list[dict]:
    """Store rows for one rung: each point × seeds, plus the paired
    baselines.  ``idx`` is the point's *original grid* index so every
    rung (and the exhaustive reference) aggregates in the same order."""
    rows: list[dict] = []
    for point in points:
        for seed in seeds:
            rows.append({
                "point_id": point.point_id,
                "seed": seed,
                "role": "point",
                "idx": index_of[point.point_id],
                "workload": point.workload,
                "length": point.length,
                "params": point.params,
            })
    for workload, length in dict.fromkeys((p.workload, p.length) for p in points):
        base = sweep.baseline_point(workload, length)
        for seed in seeds:
            rows.append({
                "point_id": base.point_id,
                "seed": seed,
                "role": "baseline",
                "idx": -1,
                "workload": workload,
                "length": length,
                "params": base.params,
            })
    return rows


def _row_units(row: dict, sample: int | None, warmup: int) -> int:
    """Simulated instructions one store row costs under a rung protocol."""
    measured = sample if sample is not None else row["length"]
    return warmup + measured


@dataclasses.dataclass
class RungOutcome:
    """One rung's execution and promotion record."""

    index: int
    sweep: str                 #: store sweep name ({search}:rung{i})
    seeds: int                 #: base replicate count of the rung
    sample: int | None         #: measured-interval length (None = full)
    warmup: int                #: warmup instructions per row
    points_in: int             #: survivors entering this rung
    decision: PromotionDecision | None
    extra_rounds: int          #: bandit seed rounds spent (store-derived)
    rows_total: int
    rows_done: int
    rows_failed: int
    units: int                 #: scheduled work at this rung (instructions)
    simulated: int             #: tasks dispatched this invocation
    complete: bool             #: no pending/running rows remain

    @property
    def promoted(self) -> list[str]:
        if self.decision is None:
            return []
        return [a.point_id for a in self.decision.promoted]

    def to_dict(self) -> dict:
        out = {
            "index": self.index,
            "sweep": self.sweep,
            "seeds": self.seeds,
            "sample": self.sample,
            "warmup": self.warmup,
            "points_in": self.points_in,
            "extra_rounds": self.extra_rounds,
            "rows_total": self.rows_total,
            "rows_done": self.rows_done,
            "rows_failed": self.rows_failed,
            "units": self.units,
            "simulated": self.simulated,
            "complete": self.complete,
        }
        out["decision"] = self.decision.to_dict() if self.decision else None
        return out


@dataclasses.dataclass
class SearchSummary:
    """Outcome of one :func:`run_search` invocation."""

    name: str
    objective: str
    grid_points: int           #: full (possibly truncated) grid size
    rungs: list[RungOutcome]
    winner: dict | None        #: best final-rung point, with CI
    leaderboard: list[dict]    #: final-rung ranking (objective + CI)
    total: int                 #: rows across every rung
    done: int
    failed: int
    simulated: int             #: tasks dispatched this invocation
    units: int                 #: scheduled search work, instructions
    exhaustive_units: int      #: full grid at final-rung fidelity
    complete: bool

    @property
    def cost_fraction(self) -> float:
        """Search work as a fraction of the exhaustive grid's."""
        if not self.exhaustive_units:
            return 1.0
        return self.units / self.exhaustive_units

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "objective": self.objective,
            "grid_points": self.grid_points,
            "rungs": [r.to_dict() for r in self.rungs],
            "winner": self.winner,
            "leaderboard": self.leaderboard,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "simulated": self.simulated,
            "units": self.units,
            "exhaustive_units": self.exhaustive_units,
            "cost_fraction": self.cost_fraction,
            "complete": self.complete,
        }

    def format(self) -> str:
        status = "complete" if self.complete else "incomplete"
        head = (
            f"search {self.name}: {self.done}/{self.total} rows done, "
            f"{self.simulated} simulated — {status}"
        )
        if self.winner is not None:
            head += (
                f"; winner {self.winner['point_id']} "
                f"({self.objective} {self.winner['value']:+.2f}%) "
                f"at {100 * self.cost_fraction:.0f}% of grid cost"
            )
        return head


def _agg_entry(agg: PointAggregate, objective: str) -> dict:
    return {
        "point_id": agg.point_id,
        "params": agg.params,
        "workload": agg.workload,
        "length": agg.length,
        "objective": objective,
        "value": objective_value(agg, objective),
        "mean": agg.mean,
        "geomean": agg.geomean,
        "ci_lo": agg.ci_lo,
        "ci_hi": agg.ci_hi,
        "n_seeds": agg.n_seeds,
    }


def exhaustive_reference(spec: SearchSpec) -> SweepSpec:
    """The exhaustive sweep a search replaces: the full grid at the
    final rung's fidelity, under the name ``{search}:exhaustive``."""
    final = spec.rungs[-1]
    return dataclasses.replace(
        spec.sweep,
        name=spec.exhaustive_sweep(),
        seeds=tuple(range(final.seeds)),
        sample=final.sample,
        warmup=spec.rung_warmup(len(spec.rungs) - 1),
    )


def exhaustive_units(spec: SearchSpec, max_points: int | None = None) -> int:
    """Scheduled instructions of the exhaustive reference campaign."""
    points = spec.sweep.expand()
    if max_points is not None:
        points = points[:max_points]
    final = spec.rungs[-1]
    warmup = spec.rung_warmup(len(spec.rungs) - 1)
    units = 0
    for point in points:
        units += final.seeds * _row_units(
            {"length": point.length}, final.sample, warmup
        )
    for workload, length in dict.fromkeys((p.workload, p.length) for p in points):
        units += final.seeds * _row_units(
            {"length": length}, final.sample, warmup
        )
    return units


def run_search(
    spec: SearchSpec,
    store: ResultStore,
    *,
    policy: ExecutionPolicy | None = None,
    max_points: int | None = None,
    echo=None,
    progress=None,
    execute: bool = True,
) -> SearchSummary:
    """Run, resume, or replay a search campaign (see module docstring).

    Args:
        spec: The search description.
        store: The shared results store; each rung lives in it as the
            sweep ``{spec.name}:rung{i}``, so a search and its
            exhaustive reference can share one database.
        policy: Execution policy forwarded to the dispatcher for every
            rung drain (``retries`` defaults to the embedded sweep's).
        max_points: Truncate the grid to its first N points.
        echo: Optional ``print``-like progress callback.
        progress: Per-task progress callback (see
            :func:`~repro.harness.parallel.run_simulations`).
        execute: ``False`` replays promotion decisions from existing
            store contents without dispatching anything — the read-only
            mode behind ``search status``/``search report``.  Replay
            stops at the first rung whose rows are missing or unsettled.
    """
    from repro.dispatch import get_dispatcher

    policy = policy if policy is not None else ExecutionPolicy()
    if policy.retries is None:
        policy = policy.merged(retries=spec.sweep.retries)
    say = echo if echo is not None else (lambda *_: None)
    dispatcher = get_dispatcher(policy) if execute else None

    grid = spec.sweep.expand()
    if max_points is not None:
        grid = grid[:max_points]
    index_of = {p.point_id: i for i, p in enumerate(grid)}
    by_id = {p.point_id: p for p in grid}

    points = list(grid)
    outcomes: list[RungOutcome] = []
    final_aggs: list[PointAggregate] = []
    simulated = 0
    units = 0
    totals = {"total": 0, "done": 0, "failed": 0}
    halted = False

    def drain(rung_sweep: str, rows: list[dict], warmup: int, sample) -> int:
        nonlocal simulated
        store.ensure(rung_sweep, rows)
        keys = {(r["point_id"], r["seed"]) for r in rows}
        counters = dispatcher.run(
            store, rung_sweep, policy,
            mine=keys, warmup=warmup, sample=sample,
            echo=say, progress=progress,
        )
        count = counters.get("simulated", 0)
        simulated += count
        return count

    for ri, rung in enumerate(spec.rungs):
        if not points:
            halted = True
            break
        rung_sweep = spec.rung_sweep(ri)
        warmup = spec.rung_warmup(ri)
        sim_before = simulated
        base_rows = rung_rows(
            spec.sweep, points, range(rung.seeds), index_of
        )
        base_keys = {(r["point_id"], r["seed"]) for r in base_rows}
        if execute:
            say(
                f"{rung_sweep}: {len(points)} points × {rung.seeds} seeds"
                + (f", sample {rung.sample}" if rung.sample else ", full length")
            )
            drain(rung_sweep, base_rows, warmup, rung.sample)

        current_ids = {p.point_id for p in points}

        def rung_state():
            rows = store.rows(rung_sweep)
            aggs = [
                a
                for a in aggregate(rows, confidence=spec.confidence)
                if a.point_id in current_ids
            ]
            return rows, aggs

        stored, aggs = rung_state()
        base_status = {
            (r["point_id"], r["seed"]): r["status"] for r in stored
        }
        missing = [k for k in base_keys if k not in base_status]
        settled = all(
            base_status.get(k) in ("done", "failed") for k in base_keys
        )
        if not execute and (missing or not settled):
            # replay hit the frontier of a killed/unstarted controller
            outcomes.append(RungOutcome(
                index=ri, sweep=rung_sweep, seeds=rung.seeds,
                sample=rung.sample, warmup=warmup, points_in=len(points),
                decision=None, extra_rounds=0,
                rows_total=len(stored),
                rows_done=sum(1 for r in stored if r["status"] == "done"),
                rows_failed=sum(1 for r in stored if r["status"] == "failed"),
                units=sum(_row_units(r, rung.sample, warmup) for r in stored),
                simulated=0, complete=False,
            ))
            totals["total"] += len(stored)
            totals["done"] += outcomes[-1].rows_done
            totals["failed"] += outcomes[-1].rows_failed
            units += outcomes[-1].units
            halted = True
            break

        decision = promote(
            aggs, spec.fraction, spec.objective, spec.min_survivors
        )
        # bandit tie-break: extra seed replicates for every contender
        # still in play, until the CI overlap resolves or the budget
        # runs out.  Replay skips this — the aggregate above already
        # includes any extra-seed rows a live controller committed.
        if execute:
            rounds = 0
            while decision.ambiguous and rounds < spec.max_extra_seeds:
                rounds += 1
                extra_seed = rung.seeds - 1 + rounds
                contenders = [
                    by_id[a.point_id] for a in decision.promoted
                ]
                say(
                    f"{rung_sweep}: {len(decision.ambiguous)} ambiguous "
                    f"point(s); allocating seed {extra_seed} to "
                    f"{len(contenders)} contender(s)"
                )
                extra = rung_rows(
                    spec.sweep, contenders, (extra_seed,), index_of
                )
                drain(rung_sweep, extra, warmup, rung.sample)
                _, aggs = rung_state()
                decision = promote(
                    aggs, spec.fraction, spec.objective, spec.min_survivors
                )

        stored, aggs = rung_state()
        max_seed = max(
            (r["seed"] for r in stored if r["role"] == "point"),
            default=rung.seeds - 1,
        )
        rows_done = sum(1 for r in stored if r["status"] == "done")
        rows_failed = sum(1 for r in stored if r["status"] == "failed")
        outcome = RungOutcome(
            index=ri,
            sweep=rung_sweep,
            seeds=rung.seeds,
            sample=rung.sample,
            warmup=warmup,
            points_in=len(points),
            decision=decision,
            extra_rounds=max(0, max_seed - (rung.seeds - 1)),
            rows_total=len(stored),
            rows_done=rows_done,
            rows_failed=rows_failed,
            units=sum(_row_units(r, rung.sample, warmup) for r in stored),
            simulated=simulated - sim_before,
            complete=rows_done + rows_failed == len(stored),
        )
        outcomes.append(outcome)
        units += outcome.units
        totals["total"] += outcome.rows_total
        totals["done"] += outcome.rows_done
        totals["failed"] += outcome.rows_failed
        say(
            f"{rung_sweep}: promoted {len(decision.promoted)}"
            f"/{len(points)} point(s)"
            + (
                f" ({len(decision.ambiguous)} by CI overlap)"
                if decision.ambiguous
                else ""
            )
        )
        final_aggs = aggs
        promoted_ids = {a.point_id for a in decision.promoted}
        points = [p for p in points if p.point_id in promoted_ids]

    ranked = rank_points(final_aggs, spec.objective)
    winner = None
    if ranked and not halted and len(outcomes) == len(spec.rungs):
        winner = _agg_entry(ranked[0], spec.objective)
    leaderboard = [_agg_entry(a, spec.objective) for a in ranked]
    complete = (
        winner is not None
        and all(o.complete for o in outcomes)
    )
    summary = SearchSummary(
        name=spec.name,
        objective=spec.objective,
        grid_points=len(grid),
        rungs=outcomes,
        winner=winner,
        leaderboard=leaderboard,
        total=totals["total"],
        done=totals["done"],
        failed=totals["failed"],
        simulated=simulated,
        units=units,
        exhaustive_units=exhaustive_units(spec, max_points),
        complete=complete,
    )
    say(summary.format())
    return summary
