"""Adaptive design-space search (``repro.search``).

Sweeps answer "what is every point worth?"; searches answer the question
campaigns actually ask — "which configuration wins, and by how much?" —
for a fraction of the grid cost.  A :class:`SearchSpec` extends a
:class:`~repro.sweep.SweepSpec` with *rungs* of increasing fidelity
(longer measured samples, more seed replicates) and a promotion
``fraction``; the successive-halving controller runs every point at the
cheapest rung, promotes the statistically-defensible survivors, and
spends the expensive rungs only on them:

* :mod:`~repro.search.spec` — declarative :class:`SearchSpec` files
  (TOML/JSON under ``sweeps/``) wrapping an embedded sweep spec,
* :mod:`~repro.search.promote` — the CI-based promotion rule: a point
  is eliminated only when its bootstrap-CI upper bound falls below the
  promotion cut; CI-overlapping points are *ambiguous* and tie-break by
  bandit-style extra seed allocation instead of arbitrary truncation,
* :mod:`~repro.search.controller` — the rung loop over the existing
  :class:`~repro.sweep.ResultStore`/:func:`~repro.sweep.drain_store`/
  Dispatcher machinery (inheriting resume, exactly-once commits,
  ``--dispatch workers``, lanes and shared warmup checkpoints),
* :mod:`~repro.search.report` — the explore/exploit report ("best point
  found with X% of exhaustive grid cost"),
* :mod:`~repro.search.fidelity` — the search-vs-exhaustive judge used
  by CI and ``benchmarks/bench_search.py``.

CLI: ``python -m repro search run|resume|status|report <spec>``.
Server: ``POST /searches`` on the campaign server.
"""

from repro.search.controller import (
    RungOutcome,
    SearchSummary,
    exhaustive_reference,
    run_search,
)
from repro.search.fidelity import fidelity_check
from repro.search.promote import PromotionDecision, objective_value, promote
from repro.search.report import (
    format_search_report,
    full_search_report,
    search_result,
)
from repro.search.spec import (
    Rung,
    SearchSpec,
    SearchSpecError,
    load_search_spec,
)

__all__ = [
    "PromotionDecision",
    "Rung",
    "RungOutcome",
    "SearchSpec",
    "SearchSpecError",
    "SearchSummary",
    "exhaustive_reference",
    "fidelity_check",
    "format_search_report",
    "full_search_report",
    "load_search_spec",
    "objective_value",
    "promote",
    "run_search",
    "search_result",
]
