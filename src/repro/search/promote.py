"""The CI-based promotion rule of successive halving.

Classic successive halving keeps the top ``fraction`` of points by the
objective and discards the rest — which silently discards points whose
short-sample estimate is statistically indistinguishable from the cut.
This module makes the cut honest: the promotion *cut* is the bootstrap-CI
lower bound of the weakest rank-survivor, and a below-rank point is
eliminated only when its own CI **upper** bound falls below that cut —
i.e. only when even its optimistic estimate loses to the survivor's
pessimistic one.  Points whose intervals overlap the cut are *ambiguous*:
the controller tie-breaks them with bandit-style extra seed replicates
(shrinking everyone's intervals) and, if the budget runs out first,
carries them forward rather than truncating arbitrarily.

The CIs come from :func:`~repro.sweep.stats.bootstrap_ci` via
:func:`~repro.sweep.stats.aggregate` at the spec's ``confidence`` level,
so every decision is deterministic and replayable from store contents.
"""

from __future__ import annotations

import dataclasses
import math

from repro.sweep.stats import PointAggregate


def objective_value(agg: PointAggregate, objective: str) -> float:
    """The metric a point competes on (falls back mean-ward when the
    geomean is undefined for a ≤ -100% replicate)."""
    if objective == "geomean" and agg.geomean is not None:
        return agg.geomean
    return agg.mean if agg.mean is not None else float("-inf")


def rank_points(
    aggs: list[PointAggregate], objective: str
) -> list[PointAggregate]:
    """Completed aggregates, best objective first; ties break by grid
    order (idx, point_id) so rankings are stable and process-independent."""
    done = [a for a in aggs if not a.failed]
    return sorted(
        done,
        key=lambda a: (-objective_value(a, objective), a.idx, a.point_id),
    )


@dataclasses.dataclass
class PromotionDecision:
    """One rung's verdict over its point aggregates.

    ``survivors`` hold the top ranks (definitely promoted), ``ambiguous``
    the below-rank points whose CI overlaps the cut (tie-break targets),
    ``eliminated`` the points whose CI upper bound lost to the cut, and
    ``failed`` the points with no completed replicate at all.  The next
    rung runs ``survivors + ambiguous`` (once the bandit budget is
    exhausted); ``cut`` is ``None`` when every ranked point survived.
    """

    cut: float | None
    survivors: list[PointAggregate]
    ambiguous: list[PointAggregate]
    eliminated: list[PointAggregate]
    failed: list[PointAggregate]

    @property
    def promoted(self) -> list[PointAggregate]:
        """Survivors plus still-ambiguous points, in rank order."""
        return self.survivors + self.ambiguous

    def to_dict(self) -> dict:
        return {
            "cut": self.cut,
            "survivors": [a.point_id for a in self.survivors],
            "ambiguous": [a.point_id for a in self.ambiguous],
            "eliminated": [a.point_id for a in self.eliminated],
            "failed": [a.point_id for a in self.failed],
        }


def promote(
    aggs: list[PointAggregate],
    fraction: float,
    objective: str = "mean",
    min_survivors: int = 1,
) -> PromotionDecision:
    """Apply the CI-aware successive-halving cut to one rung's points.

    The survivor count is ``max(min_survivors, ceil(fraction * n))``
    over the ``n`` ranked (non-failed) points.  The cut is the CI lower
    bound of the last survivor; a lower-ranked point is eliminated iff
    its CI upper bound is strictly below the cut, else it is ambiguous.
    """
    ranked = rank_points(aggs, objective)
    failed = [a for a in aggs if a.failed]
    if not ranked:
        return PromotionDecision(None, [], [], [], failed)
    k = max(min_survivors, math.ceil(fraction * len(ranked)))
    if k >= len(ranked):
        return PromotionDecision(None, ranked, [], [], failed)
    survivors = ranked[:k]
    cut = survivors[-1].ci_lo
    ambiguous: list[PointAggregate] = []
    eliminated: list[PointAggregate] = []
    for agg in ranked[k:]:
        hi = agg.ci_hi if agg.ci_hi is not None else float("-inf")
        if cut is not None and hi < cut:
            eliminated.append(agg)
        else:
            ambiguous.append(agg)
    return PromotionDecision(cut, survivors, ambiguous, eliminated, failed)
