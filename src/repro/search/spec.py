"""Declarative search specifications.

A :class:`SearchSpec` wraps a :class:`~repro.sweep.spec.SweepSpec` (the
design space, workloads, baseline — everything a sweep already declares)
and adds the successive-halving schedule: an ordered list of
:class:`Rung`\\ s of increasing fidelity, a promotion ``fraction``, the
``objective`` metric points compete on, and the statistical knobs of the
promotion test.  Specs are plain data: they load from TOML or JSON files
(checked-in searches live under ``sweeps/`` next to the sweep specs) and
serialize back to JSON, so a search is reviewable and re-runnable.

TOML layout (see ``sweeps/search_smoke.toml`` for a real one)::

    [search]
    name = "store_buffer_search"
    fraction = 0.25              # survivors per rung (of ranked points)
    objective = "mean"           # or "geomean"
    confidence = 0.95            # CI level of the promotion test
    max_extra_seeds = 2          # bandit tie-break budget per rung

    [[search.rungs]]             # cheap, broad
    seeds = 2
    sample = 500

    [[search.rungs]]             # expensive, final — full protocol
    seeds = 3
    sample = 2000

    [sweep]                      # the embedded SweepSpec, verbatim
    name = "store_buffer_grid"
    workloads = ["crafty"]
    lengths = [2000]

    [base]
    machine = "mtvp"
    threads = 2

    [axes]
    store_buffer_entries = [2, 8, 64, 0]

Rung fidelity must be non-decreasing (seeds and sample alike; a rung
without ``sample`` measures each point's full trace length, which counts
as the highest fidelity).  The final rung defines the protocol the
exhaustive reference sweep would use, which is what the fidelity harness
and the cost accounting compare against.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.sweep.spec import SweepSpec, SweepSpecError


class SearchSpecError(ValueError):
    """A search specification is malformed."""


#: objective metrics a search can rank points by (PointAggregate fields)
OBJECTIVES = ("mean", "geomean")


@dataclasses.dataclass(frozen=True)
class Rung:
    """One fidelity level of the successive-halving schedule.

    Args:
        seeds: Seed replicates per surviving point at this rung (the
            bandit tie-break may add up to ``max_extra_seeds`` more).
        sample: Measured-interval length (``None`` = each point's full
            trace length — the terminal, highest-fidelity protocol).
        warmup: Warmup override for this rung (``None`` = the embedded
            sweep's ``warmup``).
    """

    seeds: int
    sample: int | None = None
    warmup: int | None = None

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise SearchSpecError("a rung needs seeds >= 1")
        if self.sample is not None and self.sample < 1:
            raise SearchSpecError("rung sample must be positive (or unset)")
        if self.warmup is not None and self.warmup < 0:
            raise SearchSpecError("rung warmup must be non-negative")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _fidelity(rung: Rung) -> tuple[float, int]:
    # None sample = full length = highest fidelity
    sample = float("inf") if rung.sample is None else float(rung.sample)
    return (sample, rung.seeds)


@dataclasses.dataclass
class SearchSpec:
    """A declarative successive-halving search over a sweep's grid.

    Args:
        sweep: The embedded design space (grid, workloads, baseline,
            retries — everything :class:`~repro.sweep.spec.SweepSpec`
            declares).  The sweep's own ``seeds``/``sample``/``warmup``
            are *not* used per rung; the rungs override them.
        rungs: Fidelity schedule, cheapest first, non-decreasing.
        name: Search name; rung sweeps are stored as ``{name}:rung{i}``
            in the shared results store.  Defaults to the sweep's name
            plus ``-search``.
        fraction: Fraction of ranked points promoted per rung, in
            (0, 1].  The survivor count is ``max(min_survivors,
            ceil(fraction * n))``.
        objective: ``"mean"`` or ``"geomean"`` percent speedup.
        confidence: Bootstrap-CI level of the promotion test.
        max_extra_seeds: Bandit budget — how many extra seed replicates
            a rung may allocate to CI-overlapping points before carrying
            the still-ambiguous ones forward.
        min_survivors: Floor on survivors per rung (>= 1).
    """

    sweep: SweepSpec
    rungs: tuple = ()
    name: str = ""
    fraction: float = 0.5
    objective: str = "mean"
    confidence: float = 0.95
    max_extra_seeds: int = 2
    min_survivors: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.sweep, SweepSpec):
            raise SearchSpecError("a search needs an embedded sweep spec")
        if not self.name:
            self.name = f"{self.sweep.name}-search"
        rungs = tuple(
            r if isinstance(r, Rung) else Rung(**r) for r in self.rungs
        )
        if not rungs:
            raise SearchSpecError("a search needs at least one rung")
        for prev, nxt in zip(rungs, rungs[1:]):
            if _fidelity(nxt) < _fidelity(prev):
                raise SearchSpecError(
                    "rung fidelity must be non-decreasing "
                    f"(rung {prev.to_dict()} then {nxt.to_dict()})"
                )
        self.rungs = rungs
        if not 0.0 < self.fraction <= 1.0:
            raise SearchSpecError(
                f"fraction must be in (0, 1], not {self.fraction!r}"
            )
        if self.objective not in OBJECTIVES:
            raise SearchSpecError(
                f"objective must be one of {OBJECTIVES}, not {self.objective!r}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise SearchSpecError(
                f"confidence must be in (0, 1), not {self.confidence!r}"
            )
        if self.max_extra_seeds < 0:
            raise SearchSpecError("max_extra_seeds must be non-negative")
        if self.min_survivors < 1:
            raise SearchSpecError("min_survivors must be >= 1")

    # ------------------------------------------------------------------
    def rung_sweep(self, index: int) -> str:
        """The store sweep name holding rung ``index``'s rows."""
        return f"{self.name}:rung{index}"

    def exhaustive_sweep(self) -> str:
        """The store sweep name of the exhaustive reference campaign."""
        return f"{self.name}:exhaustive"

    def rung_warmup(self, index: int) -> int:
        rung = self.rungs[index]
        return rung.warmup if rung.warmup is not None else self.sweep.warmup

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "search": {
                "name": self.name,
                "fraction": self.fraction,
                "objective": self.objective,
                "confidence": self.confidence,
                "max_extra_seeds": self.max_extra_seeds,
                "min_survivors": self.min_survivors,
                "rungs": [r.to_dict() for r in self.rungs],
            },
            "sweep": self.sweep.to_dict(),
        }

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialize to JSON; optionally also write to ``path``."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpec":
        """Build a spec from parsed TOML/JSON data.

        Accepts both the TOML table form (``[search]`` + ``[[search.rungs]]``
        next to the usual ``[sweep]``/``[base]``/``[axes]`` tables) and
        the flat JSON form of :meth:`to_dict`.
        """
        data = dict(data)
        search = dict(data.pop("search", {}))
        if not data:
            raise SearchSpecError(
                "a search spec needs the embedded sweep tables "
                "([sweep]/[base]/[axes], or a 'sweep' object in JSON)"
            )
        known = {f.name for f in dataclasses.fields(cls)} - {"sweep"}
        unknown = set(search) - known
        if unknown:
            raise SearchSpecError(
                f"unknown search field(s) {sorted(unknown)}; "
                f"valid: {sorted(known)}"
            )
        rungs = search.pop("rungs", ())
        try:
            sweep = SweepSpec.from_dict(data)
        except SweepSpecError as exc:
            raise SearchSpecError(f"embedded sweep spec: {exc}") from None
        return cls(sweep=sweep, rungs=rungs, **search)


def load_search_spec(path: str | Path) -> SearchSpec:
    """Load a :class:`SearchSpec` from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if path.suffix == ".toml":
        import tomllib

        data = tomllib.loads(path.read_text())
    else:
        data = json.loads(path.read_text())
    return SearchSpec.from_dict(data)
