"""Search-vs-exhaustive fidelity judging.

Adaptive search is only worth having if it answers the design question
the way the exhaustive grid would.  :func:`fidelity_check` is the
batch-generate → judge → compare harness CI and the benchmark run on a
checked-in small grid:

1. **generate** both answers — run the search to completion, then run
   the exhaustive reference sweep (the full grid at the final rung's
   fidelity) into the *same* store under ``{name}:exhaustive``, so both
   campaigns share the result cache and warmup checkpoints;
2. **judge** each — the search winner from its
   :class:`~repro.search.controller.SearchSummary`, the grid winner by
   ranking the reference sweep's aggregates with the same objective,
   confidence level and tie-break order;
3. **compare** — winner agreement (by ``point_id``), both winners' CIs,
   and the cost fraction: the search's scheduled (point, seed, length)
   work over the exhaustive campaign's.

The returned verdict dict is what ``benchmarks/bench_search.py`` writes
into ``BENCH_search.json`` and what the CI smoke asserts on
(``winner_match`` true, ``cost.fraction`` under its budget).
"""

from __future__ import annotations

from repro.harness.policy import ExecutionPolicy
from repro.search.controller import (
    _agg_entry,
    exhaustive_reference,
    run_search,
)
from repro.search.promote import rank_points
from repro.search.spec import SearchSpec
from repro.sweep.execute import run_sweep
from repro.sweep.stats import aggregate
from repro.sweep.store import ResultStore


def fidelity_check(
    spec: SearchSpec,
    store: ResultStore,
    *,
    policy: ExecutionPolicy | None = None,
    max_points: int | None = None,
    echo=None,
    progress=None,
) -> dict:
    """Run search and exhaustive reference, judge both, compare.

    Returns a verdict dict::

        {
          "search": <SearchSummary.to_dict()>,
          "exhaustive": {"sweep", "total", "done", "failed", "simulated"},
          "search_winner": {...} | None,
          "grid_winner": {...} | None,
          "winner_match": bool,
          "cost": {"search_units", "exhaustive_units", "fraction"},
        }
    """
    search_summary = run_search(
        spec, store,
        policy=policy, max_points=max_points, echo=echo, progress=progress,
    )

    ref_spec = exhaustive_reference(spec)
    ref_summary = run_sweep(
        ref_spec, store,
        policy=policy, max_points=max_points, echo=echo, progress=progress,
    )
    ref_aggs = aggregate(
        store.rows(ref_spec.name), confidence=spec.confidence
    )
    ranked = rank_points(ref_aggs, spec.objective)
    grid_winner = _agg_entry(ranked[0], spec.objective) if ranked else None

    search_winner = search_summary.winner
    winner_match = (
        search_winner is not None
        and grid_winner is not None
        and search_winner["point_id"] == grid_winner["point_id"]
    )
    return {
        "search": search_summary.to_dict(),
        "exhaustive": {
            "sweep": ref_spec.name,
            "total": ref_summary.total,
            "done": ref_summary.done,
            "failed": ref_summary.failed,
            "simulated": ref_summary.simulated,
        },
        "search_winner": search_winner,
        "grid_winner": grid_winner,
        "winner_match": winner_match,
        "cost": {
            "search_units": search_summary.units,
            "exhaustive_units": search_summary.exhaustive_units,
            "fraction": search_summary.cost_fraction,
        },
    }
