"""Stride prefetcher with stream buffers.

Table 1 of the paper specifies a "PC based, 256 entry [table] with 8 stream
buffers" prefetcher described as *very aggressive*, and Section 5.1
highlights that value speculation can mistrain it because loads with the
same PC may train it out of program order.  The implementation has three
cooperating parts:

* a 256-entry direct-mapped **per-PC stride table** — detects per-static-
  load strides; it feeds the mistraining statistics and allocates a stream
  when a confirmed stride is *sparse* (larger than what a dense stream
  would cover),
* a **per-region dense-walk detector** — loop bodies touch the lines of an
  array/struct walk densely but locally out of order (many PCs reading
  different fields), which no PC-indexed table can see; two consecutive
  forward-dense misses in a 16MB region allocate a line-granular stream,
* **8 stream buffers** — each runs up to ``depth`` lines ahead of its
  stream with a per-line fill time; demand hits consume the line and
  extend the stream.

Allocation is filtered: a miss whose successor line is already covered by
an existing buffer does not allocate, so many PCs sharing one walk share
one buffer instead of thrashing the pool.
"""

from __future__ import annotations

from repro.obs import NULL_PROBE


class StreamBuffer:
    """One stream buffer: prefetched lines with fill times.

    ``stride_lines`` is the line-granular step: 1 for dense walks, larger
    for sparse per-PC strides.
    """

    __slots__ = ("tag", "stride_lines", "next_line", "entries", "last_use")

    def __init__(self, tag: int, stride_lines: int, start_line: int) -> None:
        self.tag = tag
        self.stride_lines = stride_lines
        self.next_line = start_line
        #: line number -> fill completion time
        self.entries: dict[int, int] = {}
        self.last_use = 0

    def __repr__(self) -> str:
        return (
            f"StreamBuffer(tag={self.tag:#x}, stride={self.stride_lines}, "
            f"{len(self.entries)} lines)"
        )


class StridePrefetcher:
    """PC-table + dense-region detector driving a pool of stream buffers.

    Args:
        table_entries: Size of the per-PC training table (256 per Table 1).
        num_streams: Number of stream buffers (8 per Table 1).
        depth: How many lines ahead each stream runs.
        line_size: Cache line size in bytes.
        fill_latency: Cycles for a prefetched line to arrive; prefetches
            usually target distant lines, so this sits between L3 and
            memory latency.
        hit_latency: Cycles for a demand load that finds its line ready.
    """

    def __init__(
        self,
        table_entries: int = 256,
        num_streams: int = 8,
        depth: int = 32,
        line_size: int = 64,
        fill_latency: int = 250,
        hit_latency: int = 4,
    ) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(
                f"line_size must be a power of two, got {line_size}"
            )
        self.table_entries = table_entries
        self.num_streams = num_streams
        self.depth = depth
        self.line_size = line_size
        self._line_shift = line_size.bit_length() - 1
        self.fill_latency = fill_latency
        self.hit_latency = hit_latency
        # per-PC: index -> [pc_tag, last_addr, stride, confidence]
        self._table: list[list[int] | None] = [None] * table_entries
        # per-region: region -> [last_line, confidence]
        self._regions: dict[int, list[int]] = {}
        self._streams: list[StreamBuffer] = []
        self.trains = 0
        self.allocations = 0
        self.stream_hits = 0
        self.mistrains = 0
        #: observability hook (see :mod:`repro.obs.probe`)
        self.obs = NULL_PROBE

    # ------------------------------------------------------------------
    # demand lookup
    # ------------------------------------------------------------------
    def lookup(self, addr: int, now: int) -> int | None:
        """Check the stream buffers for the line containing ``addr``.

        Returns the completion time if the line is (or soon will be)
        present, else None.  A hit consumes the line and extends the
        stream.
        """
        line = addr >> self._line_shift
        for sb in self._streams:
            fill_time = sb.entries.pop(line, None)
            if fill_time is None:
                continue
            sb.last_use = now
            self._extend(sb, now)
            self.stream_hits += 1
            if self.obs.enabled:
                self.obs.prefetch_hit(now, line)
            return max(now + self.hit_latency, fill_time)
        return None

    def _extend(self, sb: StreamBuffer, now: int) -> None:
        """Issue prefetches until the buffer again runs ``depth`` ahead.

        Lines the walk skipped (never demanded) are aged out once they
        fall well behind the stream head; otherwise they would pin buffer
        capacity and shrink the effective lookahead a little more every
        iteration.
        """
        if len(sb.entries) >= self.depth:
            span = 2 * self.depth * max(1, abs(sb.stride_lines))
            if sb.stride_lines >= 0:
                # ascending: stale skipped lines trail below the head
                horizon = sb.next_line - span
                stale = [ln for ln in sb.entries if ln < horizon]
            else:
                # descending: the head moves toward smaller line numbers,
                # so the lines the walk left behind sit *above* it
                horizon = sb.next_line + span
                stale = [ln for ln in sb.entries if ln > horizon]
            for line in stale:
                del sb.entries[line]
        issued = 0
        while len(sb.entries) < self.depth:
            line = sb.next_line
            sb.next_line += sb.stride_lines
            if line not in sb.entries:
                sb.entries[line] = now + self.fill_latency
                issued += 1
        if issued and self.obs.enabled:
            self.obs.prefetch_issue(now, sb.tag, issued)

    def _covered(self, line: int) -> bool:
        """True when some buffer already holds or is about to reach ``line``."""
        for sb in self._streams:
            if line in sb.entries:
                return True
            # distance from the frontier to the line, measured along the
            # stream's direction of travel (negative strides walk down)
            if sb.stride_lines >= 0:
                ahead = line - sb.next_line
            else:
                ahead = sb.next_line - line
            if 0 <= ahead < 2 * abs(sb.stride_lines):
                return True
        return False

    def _allocate(self, tag: int, stride_lines: int, start_line: int, now: int) -> None:
        for sb in self._streams:
            if sb.tag == tag:
                # redirect the existing stream
                sb.stride_lines = stride_lines
                sb.entries.clear()
                sb.next_line = start_line
                sb.last_use = now
                self._extend(sb, now)
                return
        sb = StreamBuffer(tag, stride_lines, start_line)
        sb.last_use = now
        if len(self._streams) >= self.num_streams:
            victim = min(self._streams, key=lambda s: s.last_use)
            self._streams.remove(victim)
        self._streams.append(sb)
        self.allocations += 1
        self._extend(sb, now)

    # ------------------------------------------------------------------
    # training (called on L1 misses that also missed the stream buffers)
    # ------------------------------------------------------------------
    def train(self, pc: int, addr: int, now: int) -> None:
        """Observe a stream-filtered L1 demand miss.

        Updates both detectors; a stride that contradicts a previously
        confirmed per-PC stride counts as a mistrain event — the effect
        Section 5.1 attributes to out-of-order / speculative training.
        """
        self.trains += 1
        line = addr >> self._line_shift

        # per-PC stride table
        idx = (pc >> 2) % self.table_entries
        entry = self._table[idx]
        if entry is None or entry[0] != pc:
            self._table[idx] = [pc, addr, 0, 0]
        else:
            stride = addr - entry[1]
            if stride == entry[2] and stride != 0:
                entry[3] = min(entry[3] + 1, 3)
            else:
                if entry[3] >= 2:
                    self.mistrains += 1
                entry[2] = stride
                entry[3] = 1 if stride != 0 else 0
            entry[1] = addr
            if entry[3] >= 3:
                stride_lines = entry[2] >> self._line_shift
                # truly sparse strides are invisible to the dense detector;
                # give them their own buffer unless one covers the path.
                # Both guards are deliberately strict: per-PC training only
                # sees the post-filter miss stream, so a PC whose walk is
                # already covered by a dense stream observes stale, inflated
                # strides — letting those allocate would evict the very
                # buffers doing the work.
                if abs(stride_lines) > 4 * self.depth and not self._covered(
                    line + stride_lines
                ):
                    self._allocate((pc << 1) | 1, stride_lines, line + stride_lines, now)
                    return

        # per-region dense-walk detector
        region = addr >> 24
        reg = self._regions.get(region)
        if reg is None:
            if len(self._regions) > 64:
                self._regions.clear()
            self._regions[region] = [line, 0]
            return
        delta = line - reg[0]
        # a dense walk's misses cluster near the advancing frontier, though
        # locally out of order (different field offsets issue in body
        # order, not address order) — accept anything within the local
        # window of the frontier as walk-consistent
        if -2 * self.depth <= delta <= 2 * self.depth and delta != 0:
            reg[1] = min(reg[1] + 1, 3)
        else:
            reg[1] = 0
        if line > reg[0]:
            reg[0] = line
        if reg[1] < 2:
            return
        tag = region << 1
        for sb in self._streams:
            if sb.tag == tag:
                if reg[0] >= sb.next_line:
                    # the walk ran past the buffer: catch up in place
                    # (clearing would throw away still-useful lines)
                    sb.next_line = reg[0] + 1
                    sb.last_use = now
                self._extend(sb, now)
                return
        if not self._covered(reg[0] + 1):
            self._allocate(tag, 1, reg[0] + 1, now)

    def reset_stats(self) -> None:
        """Zero all counters, keeping streams and training state."""
        self.trains = 0
        self.allocations = 0
        self.stream_hits = 0
        self.mistrains = 0

    def snapshot(self) -> dict:
        """Serialize training tables, streams and counters (versioned)."""
        return {
            "version": 1,
            "table_entries": self.table_entries,
            "table": [None if e is None else list(e) for e in self._table],
            "regions": [[r, list(v)] for r, v in self._regions.items()],
            "streams": [
                {
                    "tag": sb.tag,
                    "stride_lines": sb.stride_lines,
                    "next_line": sb.next_line,
                    "entries": [[ln, t] for ln, t in sb.entries.items()],
                    "last_use": sb.last_use,
                }
                for sb in self._streams
            ],
            "trains": self.trains,
            "allocations": self.allocations,
            "stream_hits": self.stream_hits,
            "mistrains": self.mistrains,
        }

    def restore(self, data: dict) -> None:
        """Restore from a :meth:`snapshot` payload (same table size)."""
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported StridePrefetcher snapshot version: "
                f"{data.get('version')!r}"
            )
        if data["table_entries"] != self.table_entries:
            raise ValueError("StridePrefetcher snapshot table size mismatch")
        self._table = [None if e is None else list(e) for e in data["table"]]
        self._regions = {r: list(v) for r, v in data["regions"]}
        streams = []
        for s in data["streams"]:
            sb = StreamBuffer(s["tag"], s["stride_lines"], s["next_line"])
            sb.entries = {ln: t for ln, t in s["entries"]}
            sb.last_use = s["last_use"]
            streams.append(sb)
        self._streams = streams
        self.trains = data["trains"]
        self.allocations = data["allocations"]
        self.stream_hits = data["stream_hits"]
        self.mistrains = data["mistrains"]

    @property
    def active_streams(self) -> int:
        """Number of stream buffers currently allocated."""
        return len(self._streams)
