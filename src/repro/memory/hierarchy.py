"""Three-level data-cache hierarchy with miss merging and prefetching.

Latencies follow Table 1 of the paper: L1 2 cycles, L2 20, L3 50, main
memory 1000.  The hierarchy is inclusive and contents-only; an access at
time ``now`` returns the completion time, so the timestamp-based pipeline
never needs a per-cycle loop.

Outstanding misses are merged: a second access to a line already in flight
completes when the first fill arrives, mimicking MSHR behaviour.  This
matters for MTVP because a killed speculative thread's demand fetches act
as prefetches for the recovering parent — an effect the paper relies on
when discussing misprediction costs.
"""

from __future__ import annotations

import enum
import heapq

from repro.memory.cache import Cache
from repro.memory.prefetcher import StridePrefetcher
from repro.obs import NULL_PROBE


class MemLevel(enum.IntEnum):
    """Where an access was satisfied (used by stats and the miss oracle)."""

    L1 = 0
    STREAM = 1
    L2 = 2
    L3 = 3
    MEMORY = 4


class MemoryHierarchy:
    """L1/L2/L3 + memory with a stride prefetcher in front of L2.

    Args:
        l1: L1 data cache (64 KB 2-way, 2 cycles in the paper).
        l2: Unified L2 (512 KB 8-way, 20 cycles).
        l3: L3 (4 MB 16-way, 50 cycles).
        mem_latency: Main-memory latency in cycles (1000).
        prefetcher: Optional stride prefetcher; the paper's baseline always
            includes one ("all results we present use it").
    """

    def __init__(
        self,
        l1: Cache | None = None,
        l2: Cache | None = None,
        l3: Cache | None = None,
        mem_latency: int = 1000,
        prefetcher: StridePrefetcher | None = None,
        mshrs: int = 16,
    ) -> None:
        self.l1 = l1 if l1 is not None else Cache(64 * 1024, 2, latency=2, name="L1D")
        self.l2 = l2 if l2 is not None else Cache(512 * 1024, 8, latency=20, name="L2")
        self.l3 = l3 if l3 is not None else Cache(4 * 1024 * 1024, 16, latency=50, name="L3")
        self.mem_latency = mem_latency
        self.prefetcher = prefetcher
        #: maximum outstanding memory misses (miss status holding
        #: registers); when exhausted, a new miss waits for the earliest
        #: outstanding fill — the memory-level-parallelism cap any real
        #: machine has, idealized windows included
        self.mshrs = mshrs
        self._mshr_heap: list[int] = []
        #: line address -> fill completion time for in-flight misses
        self._inflight: dict[int, int] = {}
        #: next _inflight size at which a pruning sweep runs; doubles when
        #: a sweep frees little, so sweeps stay amortized O(1) per miss
        self._prune_threshold = 4096
        self.accesses = 0
        self.mshr_stalls = 0
        self.level_counts: dict[MemLevel, int] = {level: 0 for level in MemLevel}
        #: observability hook (see :mod:`repro.obs.probe`); only below-L1
        #: outcomes report, so the hot L1-hit path carries zero overhead
        self.obs = NULL_PROBE

    # ------------------------------------------------------------------
    def _prune_inflight(self, now: int) -> None:
        """Drop merge records whose fills have long since landed.

        Contexts run on slightly skewed local clocks, so records are kept
        for a grace window past completion rather than dropped eagerly.
        Sweeps are amortized: each full rescan raises the size threshold
        for the next one to twice the surviving population, so even a
        pathological miss stream that keeps every record live pays O(1)
        amortized per miss instead of rescanning the whole dict every time.
        """
        inflight = self._inflight
        if len(inflight) < self._prune_threshold:
            return
        horizon = now - 4 * self.mem_latency
        for line in [ln for ln, t in inflight.items() if t < horizon]:
            del inflight[line]
        self._prune_threshold = max(4096, 2 * len(inflight))

    def _note(self, now: int, pc: int, addr: int, level: MemLevel, complete: int) -> None:
        """Report a below-L1 access to the attached observability probe.

        Cache residency is sampled here — at miss times — because that is
        when occupancy changes; between misses the contents are static, so
        the cycle-weighted histograms lose nothing.
        """
        self.obs.load_level(
            now, pc, addr, level.name.lower(), complete,
            self.l1.occupancy, self.l2.occupancy, self.l3.occupancy,
        )

    def load(self, addr: int, pc: int, now: int) -> tuple[int, MemLevel]:
        """Perform a demand load access at time ``now``.

        Returns ``(complete_time, level)`` — the completion time and the
        level that satisfied the access, as a plain tuple to keep the
        per-load allocation cost at zero on the engine's hot path.  Fills
        update all levels immediately (contents-only model); the returned
        time carries the latency.
        """
        self.accesses += 1
        level_counts = self.level_counts
        l1 = self.l1
        line = addr >> l1._line_shift
        # an access to a line whose fill is still in flight completes when
        # that fill lands, regardless of where the (already-inserted)
        # contents nominally sit — checked first because fills update
        # cache state at request time in this contents-only model
        pending = self._inflight.get(line)
        if pending is not None and pending > now:
            l1.lookup(addr)  # keep LRU state moving
            level_counts[MemLevel.L1] += 1  # a merged, L1-level wait
            return pending, MemLevel.L1
        if l1.lookup(addr):
            level_counts[MemLevel.L1] += 1
            return now + l1.latency, MemLevel.L1
        if self.prefetcher is not None:
            # stream buffers filter the miss stream: a hit consumes the
            # entry and extends the stream; only stream misses train the
            # stride table (otherwise every hit would allocate a new
            # buffer and evict the very stream that is working)
            stream_time = self.prefetcher.lookup(addr, now)
            if stream_time is not None:
                l1.insert(addr)
                level_counts[MemLevel.STREAM] += 1
                if self.obs.enabled:
                    self._note(now, pc, addr, MemLevel.STREAM, stream_time)
                return stream_time, MemLevel.STREAM
            self.prefetcher.train(pc, addr, now)
        if self.l2.lookup(addr):
            l1.insert(addr)
            level_counts[MemLevel.L2] += 1
            if self.obs.enabled:
                self._note(now, pc, addr, MemLevel.L2, now + self.l2.latency)
            return now + self.l2.latency, MemLevel.L2
        if self.l3.lookup(addr):
            l1.insert(addr)
            self.l2.insert(addr)
            level_counts[MemLevel.L3] += 1
            if self.obs.enabled:
                self._note(now, pc, addr, MemLevel.L3, now + self.l3.latency)
            return now + self.l3.latency, MemLevel.L3
        # full miss to memory, subject to MSHR availability
        start = now
        heap = self._mshr_heap
        while heap and heap[0] <= start:
            heapq.heappop(heap)
        if len(heap) >= self.mshrs:
            start = heapq.heappop(heap)
            self.mshr_stalls += 1
        complete = start + self.mem_latency
        heapq.heappush(heap, complete)
        l1.insert(addr)
        self.l2.insert(addr)
        self.l3.insert(addr)
        self._inflight[line] = complete
        self._prune_inflight(now)
        level_counts[MemLevel.MEMORY] += 1
        if self.obs.enabled:
            self._note(now, pc, addr, MemLevel.MEMORY, complete)
        return complete, MemLevel.MEMORY

    def store(self, addr: int, now: int) -> None:
        """Retire a store into the hierarchy (write-allocate, contents only).

        Store latency never stalls commit in the model — the store buffer
        handles ordering — so no completion time is returned.
        """
        if not self.l1.lookup(addr):
            if not self.l2.lookup(addr):
                self.l3.lookup(addr)
                self.l3.insert(addr)
                self.l2.insert(addr)
            self.l1.insert(addr)

    def warm_access(self, addr: int, pc: int) -> None:
        """Functional (timing-free) load used by warmup fast-forward.

        Moves contents, LRU state and the prefetcher exactly as a demand
        load would, but skips the MSHR and in-flight bookkeeping — those
        model *when* fills land, which is meaningless while no clock is
        running.  All component times are taken at cycle 0, so any stream
        prefetches issued during warmup appear as (deterministically)
        in-flight fills when the timed region starts.
        """
        self.accesses += 1
        l1 = self.l1
        if l1.lookup(addr):
            self.level_counts[MemLevel.L1] += 1
            return
        if self.prefetcher is not None:
            if self.prefetcher.lookup(addr, 0) is not None:
                l1.insert(addr)
                self.level_counts[MemLevel.STREAM] += 1
                return
            self.prefetcher.train(pc, addr, 0)
        if self.l2.lookup(addr):
            l1.insert(addr)
            self.level_counts[MemLevel.L2] += 1
            return
        if self.l3.lookup(addr):
            l1.insert(addr)
            self.l2.insert(addr)
            self.level_counts[MemLevel.L3] += 1
            return
        l1.insert(addr)
        self.l2.insert(addr)
        self.l3.insert(addr)
        self.level_counts[MemLevel.MEMORY] += 1

    def probe_level(self, addr: int) -> MemLevel:
        """Non-destructive check of where ``addr`` would currently hit.

        Used by the oracle ("cache-level") load selector from Section 5.1,
        which knows the cache behaviour of each load in advance.
        """
        if self.l1.probe(addr):
            return MemLevel.L1
        if self.l2.probe(addr):
            return MemLevel.L2
        if self.l3.probe(addr):
            return MemLevel.L3
        return MemLevel.MEMORY

    def reset_stats(self) -> None:
        """Zero all counters, keeping cache contents."""
        self.accesses = 0
        self.level_counts = {level: 0 for level in MemLevel}
        for cache in (self.l1, self.l2, self.l3):
            cache.reset_stats()

    def snapshot(self) -> dict:
        """Serialize caches, prefetcher, MSHR/in-flight state and counters."""
        return {
            "version": 1,
            "l1": self.l1.snapshot(),
            "l2": self.l2.snapshot(),
            "l3": self.l3.snapshot(),
            "prefetcher": (
                None if self.prefetcher is None else self.prefetcher.snapshot()
            ),
            "mshr_heap": list(self._mshr_heap),
            "inflight": [[ln, t] for ln, t in self._inflight.items()],
            "prune_threshold": self._prune_threshold,
            "accesses": self.accesses,
            "mshr_stalls": self.mshr_stalls,
            "level_counts": {int(lv): n for lv, n in self.level_counts.items()},
        }

    def restore(self, data: dict) -> None:
        """Restore from a :meth:`snapshot` payload (same shape hierarchy)."""
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported MemoryHierarchy snapshot version: "
                f"{data.get('version')!r}"
            )
        if (data["prefetcher"] is None) != (self.prefetcher is None):
            raise ValueError(
                "MemoryHierarchy snapshot prefetcher presence mismatch"
            )
        self.l1.restore(data["l1"])
        self.l2.restore(data["l2"])
        self.l3.restore(data["l3"])
        if self.prefetcher is not None:
            self.prefetcher.restore(data["prefetcher"])
        self._mshr_heap = list(data["mshr_heap"])
        self._inflight = {ln: t for ln, t in data["inflight"]}
        self._prune_threshold = data["prune_threshold"]
        self.accesses = data["accesses"]
        self.mshr_stalls = data["mshr_stalls"]
        self.level_counts = {
            MemLevel(int(lv)): n for lv, n in data["level_counts"].items()
        }
