"""A set-associative cache with true-LRU replacement.

The timing model is timestamp-based, so the cache only tracks *contents*;
latency accounting lives in :mod:`repro.memory.hierarchy`.  State is updated
in call order, which the engine keeps approximately time-ordered by always
advancing the context with the smallest local clock.
"""

from __future__ import annotations

#: distinguishes "absent" from the stored value (always ``None``) so the
#: hot lookup path can do one ``dict.pop`` instead of test + delete + insert
_MISS = object()


class Cache:
    """Set-associative cache storing line tags with LRU replacement.

    Python dicts preserve insertion order, so each set is a dict whose
    iteration order *is* the LRU order (oldest first); a hit re-inserts the
    tag to move it to the MRU position.

    Args:
        size_bytes: Total capacity in bytes.
        assoc: Associativity (ways per set).
        line_size: Cache line size in bytes (must be a power of two).
        latency: Hit latency in cycles, exposed for the hierarchy to use.
        name: Label used in stats and repr.
    """

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        line_size: int = 64,
        latency: int = 1,
        name: str = "cache",
    ) -> None:
        if line_size & (line_size - 1):
            raise ValueError("line_size must be a power of two")
        if size_bytes % (assoc * line_size):
            raise ValueError("size must be a multiple of assoc * line_size")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.latency = latency
        self.name = name
        self.num_sets = size_bytes // (assoc * line_size)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self._set_mask = self.num_sets - 1
        self._line_shift = line_size.bit_length() - 1
        self._sets: list[dict[int, None]] = [{} for _ in range(self.num_sets)]
        #: running count of valid lines, maintained by insert/invalidate so
        #: occupancy is O(1) instead of a sum over every set
        self._lines = 0
        self.hits = 0
        self.misses = 0

    def line_of(self, addr: int) -> int:
        """Return the line-aligned address containing byte address ``addr``."""
        return addr >> self._line_shift

    def lookup(self, addr: int) -> bool:
        """Probe-and-update access: returns True on hit, updates LRU state.

        A miss does *not* allocate; call :meth:`insert` when the fill
        arrives (the hierarchy does this immediately since timing is
        tracked separately).

        The hit path is a single ``pop``-and-reinsert: one membership
        test doubles as the removal, halving the dict operations on the
        engine's most common memory outcome.
        """
        line = addr >> self._line_shift
        cset = self._sets[line & self._set_mask]
        if cset.pop(line, _MISS) is _MISS:
            self.misses += 1
            return False
        cset[line] = None
        self.hits += 1
        return True

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no LRU update, no stats)."""
        line = self.line_of(addr)
        return line in self._sets[line & self._set_mask]

    def insert(self, addr: int) -> int | None:
        """Fill the line containing ``addr``; return the evicted line or None.

        The evicted value is the line-aligned address of the victim, which
        inclusive hierarchies can use for back-invalidation (we do not need
        it but expose it for completeness and tests).
        """
        line = self.line_of(addr)
        cset = self._sets[line & self._set_mask]
        victim = None
        if line in cset:
            del cset[line]
        elif len(cset) >= self.assoc:
            victim = next(iter(cset))
            del cset[victim]
        else:
            self._lines += 1
        cset[line] = None
        return victim

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing ``addr``; return True if it was present."""
        line = self.line_of(addr)
        cset = self._sets[line & self._set_mask]
        if line in cset:
            del cset[line]
            self._lines -= 1
            return True
        return False

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently held (O(1): maintained count)."""
        return self._lines

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without touching contents."""
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> dict:
        """Serialize contents and counters to a versioned picklable dict.

        Dict insertion order *is* the LRU order, so each set serializes as
        its list of tags oldest-first; restoring re-inserts in that order
        and recovers the exact replacement state.
        """
        return {
            "version": 1,
            "geometry": [self.size_bytes, self.assoc, self.line_size],
            "sets": [list(cset) for cset in self._sets],
            "hits": self.hits,
            "misses": self.misses,
        }

    def restore(self, data: dict) -> None:
        """Restore from a :meth:`snapshot` payload (geometry must match)."""
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported Cache snapshot version: {data.get('version')!r}"
            )
        if list(data["geometry"]) != [self.size_bytes, self.assoc, self.line_size]:
            raise ValueError(
                f"Cache snapshot geometry {data['geometry']} does not match "
                f"{self.name} ({self.size_bytes}B {self.assoc}-way "
                f"{self.line_size}B lines)"
            )
        self._sets = [dict.fromkeys(lines) for lines in data["sets"]]
        self._lines = sum(len(s) for s in self._sets)
        self.hits = data["hits"]
        self.misses = data["misses"]

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, {self.size_bytes // 1024}KB, "
            f"{self.assoc}-way, {self.num_sets} sets)"
        )
