"""Speculative store buffer for threaded value prediction.

Section 3.2 of the paper requires speculative threads to buffer their memory
writes; Section 3.3's single-fetch-path variant simplifies this to "a single
store buffer ... with a tag for each entry indicating which thread generated
it.  Searches through the store buffer are then a hit if the searching
thread was spawned more recently than the owner thread."

We implement exactly that unified tagged buffer.  Threads are identified by
a monotonically increasing *spawn order* (the linear chain of single fetch
path MTVP), and entries carry the trace position of the store so that a
load only sees stores that precede it in program order.

Capacity is the architectural knob studied in Section 5.3 (512 physical
entries, 128 used by default; performance "begins to tail off at 64 and
below entries").
"""

from __future__ import annotations


class StoreEntry:
    """One buffered speculative store."""

    __slots__ = ("owner", "trace_pos", "addr", "value", "time")

    def __init__(self, owner: int, trace_pos: int, addr: int, value: int, time: int) -> None:
        self.owner = owner
        self.trace_pos = trace_pos
        self.addr = addr
        self.value = value
        self.time = time

    def __repr__(self) -> str:
        return (
            f"StoreEntry(owner={self.owner}, pos={self.trace_pos}, "
            f"addr={self.addr:#x}, value={self.value})"
        )


class StoreBuffer:
    """Unified, thread-tagged speculative store buffer.

    Args:
        capacity: Maximum buffered stores across all speculative threads.
            ``None`` models the unlimited buffer of the oracle limit study
            in Section 5.1.
        granularity: Address match granularity in bytes (8 = one 64-bit
            word, the natural store size of the abstract ISA).
    """

    def __init__(self, capacity: int | None = 128, granularity: int = 8) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        if granularity <= 0 or granularity & (granularity - 1):
            raise ValueError(
                f"granularity must be a power of two, got {granularity}"
            )
        self.capacity = capacity
        self.granularity = granularity
        self._shift = granularity.bit_length() - 1
        self._by_addr: dict[int, list[StoreEntry]] = {}
        self._by_owner: dict[int, list[StoreEntry]] = {}
        self.total = 0
        self.allocations = 0
        self.rejections = 0
        self.forward_hits = 0

    # ------------------------------------------------------------------
    def _key(self, addr: int) -> int:
        return addr >> self._shift

    @property
    def free_slots(self) -> int | None:
        """Free entries, or None when the buffer is unlimited."""
        if self.capacity is None:
            return None
        return self.capacity - self.total

    @property
    def is_full(self) -> bool:
        """True when no further store can be buffered."""
        return self.capacity is not None and self.total >= self.capacity

    def allocate(self, owner: int, trace_pos: int, addr: int, value: int, time: int) -> bool:
        """Buffer a speculative store; returns False when the buffer is full.

        A full buffer stalls the storing thread until its value prediction
        resolves — the mechanism that bounds speculation distance.
        """
        if self.is_full:
            self.rejections += 1
            return False
        entry = StoreEntry(owner, trace_pos, addr, value, time)
        self._by_addr.setdefault(self._key(addr), []).append(entry)
        self._by_owner.setdefault(owner, []).append(entry)
        self.total += 1
        self.allocations += 1
        return True

    def search(
        self, addr: int, visible: tuple[int, ...], trace_pos: int
    ) -> StoreEntry | None:
        """Find the youngest visible store to ``addr`` for a loading thread.

        ``visible`` is the searcher's ancestor chain (own order included):
        on the linear single-fetch-path chain this implements exactly the
        paper's "hit if the searching thread was spawned more recently than
        the owner thread"; with multiple-value siblings it additionally
        keeps alternative universes from seeing each other's stores.
        Program order is enforced with ``entry.trace_pos < trace_pos``.
        """
        entries = self._by_addr.get(self._key(addr))
        if not entries:
            return None
        best: StoreEntry | None = None
        for entry in entries:
            if entry.owner in visible and entry.trace_pos < trace_pos:
                if best is None or entry.trace_pos > best.trace_pos:
                    best = entry
        if best is not None:
            self.forward_hits += 1
        return best

    def _remove_owner(self, owner: int) -> list[StoreEntry]:
        entries = self._by_owner.pop(owner, [])
        for entry in entries:
            bucket = self._by_addr[self._key(entry.addr)]
            bucket.remove(entry)
            if not bucket:
                del self._by_addr[self._key(entry.addr)]
        self.total -= len(entries)
        return entries

    def confirm_thread(self, owner: int) -> list[StoreEntry]:
        """Release a confirmed thread's stores for architectural write-back.

        Returns the released entries (oldest first) so the engine can
        retire them into the cache hierarchy.
        """
        entries = self._remove_owner(owner)
        entries.sort(key=lambda e: e.trace_pos)
        return entries

    def drain_upto(self, max_order: int) -> list[StoreEntry]:
        """Release every store owned by threads with order <= ``max_order``.

        Used when a confirmed thread becomes non-speculative: its own
        stores, and those of already-retired ancestors still parked in the
        buffer, become architectural together.  Returns the released
        entries oldest-first for write-back.
        """
        released: list[StoreEntry] = []
        for owner in [o for o in self._by_owner if o <= max_order]:
            released.extend(self._remove_owner(owner))
        released.sort(key=lambda e: e.trace_pos)
        return released

    def squash_thread(self, owner: int) -> int:
        """Discard a killed thread's stores; returns how many were dropped."""
        return len(self._remove_owner(owner))

    def occupancy_of(self, owner: int) -> int:
        """Number of entries currently held by ``owner``."""
        return len(self._by_owner.get(owner, ()))

    def snapshot(self) -> dict:
        """Serialize buffered stores and counters to a versioned dict.

        Entries serialize grouped by owner in insertion order; search
        results depend only on (owner visibility, trace position), both of
        which survive the round trip exactly.
        """
        entries = []
        for lst in self._by_owner.values():
            for e in lst:
                entries.append([e.owner, e.trace_pos, e.addr, e.value, e.time])
        return {
            "version": 1,
            "capacity": self.capacity,
            "granularity": self.granularity,
            "entries": entries,
            "allocations": self.allocations,
            "rejections": self.rejections,
            "forward_hits": self.forward_hits,
        }

    def restore(self, data: dict) -> None:
        """Restore from a :meth:`snapshot` payload (same capacity/granularity)."""
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported StoreBuffer snapshot version: {data.get('version')!r}"
            )
        if data["capacity"] != self.capacity or data["granularity"] != self.granularity:
            raise ValueError("StoreBuffer snapshot capacity/granularity mismatch")
        self._by_addr = {}
        self._by_owner = {}
        for owner, trace_pos, addr, value, time in data["entries"]:
            entry = StoreEntry(owner, trace_pos, addr, value, time)
            self._by_addr.setdefault(self._key(addr), []).append(entry)
            self._by_owner.setdefault(owner, []).append(entry)
        self.total = len(data["entries"])
        self.allocations = data["allocations"]
        self.rejections = data["rejections"]
        self.forward_hits = data["forward_hits"]

    def __len__(self) -> int:
        return self.total
