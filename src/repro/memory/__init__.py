"""Memory-system substrate: caches, prefetcher, store buffer.

This package implements the memory hierarchy of Table 1 in the paper:

* 64 KB 2-way L1 data cache, 2-cycle latency,
* 512 KB 8-way L2, 20 cycles,
* 4 MB 16-way L3, 50 cycles,
* 1000-cycle main memory,
* a PC-based 256-entry stride prefetcher feeding 8 stream buffers,
* the tagged speculative store buffer used by single-fetch-path MTVP.
"""

from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy, MemLevel
from repro.memory.prefetcher import StridePrefetcher, StreamBuffer
from repro.memory.store_buffer import StoreBuffer, StoreEntry

__all__ = [
    "Cache",
    "MemLevel",
    "MemoryHierarchy",
    "StoreBuffer",
    "StoreEntry",
    "StridePrefetcher",
    "StreamBuffer",
]
