"""Common protocol for load value predictors."""

from __future__ import annotations

from repro.isa import Instruction
from repro.obs import NULL_PROBE


class ValuePrediction:
    """A single predicted value with its confidence.

    Attributes:
        value: The predicted 64-bit load result.
        confidence: Saturating-counter confidence backing the prediction.
        slot: Which internal source produced the value (predictor-specific;
            Wang–Franklin uses 0-4 learned, 5 zero, 6 one, 7 stride).
    """

    __slots__ = ("value", "confidence", "slot")

    def __init__(self, value: int, confidence: int, slot: int = 0) -> None:
        self.value = value
        self.confidence = confidence
        self.slot = slot

    def __repr__(self) -> str:
        return f"ValuePrediction(value={self.value}, conf={self.confidence}, slot={self.slot})"


class ValuePredictor:
    """Base class for load value predictors.

    The engine calls :meth:`predict` at the rename/queue stage of a load;
    it only acts on the result when the prediction is over the predictor's
    confidence threshold (a ``None`` return means "not confident").
    :meth:`train` is called with the architectural value when the load
    retires.  Predictors count their own accuracy so experiments can report
    predictor-level statistics independent of the pipeline.
    """

    def __init__(self) -> None:
        self.lookups = 0
        self.predictions = 0
        self.correct = 0
        self.incorrect = 0
        #: observability hook (see :mod:`repro.obs.probe`); the engine
        #: replaces the null object when a tracer/metrics run is requested
        self.obs = NULL_PROBE

    # ------------------------------------------------------------------
    def predict(self, inst: Instruction) -> ValuePrediction | None:
        """Return a confident prediction for the load, or None."""
        raise NotImplementedError

    def predict_all(self, inst: Instruction) -> list[ValuePrediction]:
        """Return every distinct candidate value over threshold.

        Used for multiple-value MTVP (Section 5.6).  The default returns
        the single best prediction; predictors that can source several
        values (Wang–Franklin) override this.
        """
        best = self.predict(inst)
        return [] if best is None else [best]

    def train(self, inst: Instruction, actual: int) -> None:
        """Update tables with the committed load value."""
        raise NotImplementedError

    def speculative_update(self, inst: Instruction, predicted: int) -> None:
        """Optional speculative table update at the queue stage.

        The paper updates the stride component speculatively where the
        predictor is consulted; predictors without such a component ignore
        this hook.
        """

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Serialize accuracy counters and table state to a versioned dict.

        Subclasses supply their table contents via :meth:`_snapshot_state`
        / :meth:`_restore_state`; stateless predictors (the oracle) get
        counter-only snapshots for free.
        """
        return {
            "version": 1,
            "kind": type(self).__name__,
            "lookups": self.lookups,
            "predictions": self.predictions,
            "correct": self.correct,
            "incorrect": self.incorrect,
            "state": self._snapshot_state(),
        }

    def restore(self, data: dict) -> None:
        """Restore from a :meth:`snapshot` payload of the same predictor kind."""
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported ValuePredictor snapshot version: "
                f"{data.get('version')!r}"
            )
        if data.get("kind") != type(self).__name__:
            raise ValueError(
                f"predictor snapshot is for {data.get('kind')!r}, "
                f"not {type(self).__name__}"
            )
        self.lookups = data["lookups"]
        self.predictions = data["predictions"]
        self.correct = data["correct"]
        self.incorrect = data["incorrect"]
        self._restore_state(data["state"])

    def _snapshot_state(self) -> dict:
        """Table contents for :meth:`snapshot`; stateless predictors: {}."""
        return {}

    def _restore_state(self, state: dict) -> None:
        """Restore table contents captured by :meth:`_snapshot_state`."""

    # ------------------------------------------------------------------
    def record_outcome(self, was_correct: bool) -> None:
        """Book-keeping helper the engine calls when a used prediction resolves."""
        self.predictions += 1
        if was_correct:
            self.correct += 1
        else:
            self.incorrect += 1
        if self.obs.enabled:
            self.obs.vp_outcome(was_correct)

    @property
    def accuracy(self) -> float:
        """Fraction of used predictions that were correct."""
        if not self.predictions:
            return 0.0
        return self.correct / self.predictions
