"""Oracle value predictor (Section 5.1 limit study).

"The oracle predictor always predicts the correct value for any load it
chooses to predict."  In the trace-driven model the correct value travels
with the instruction, so the oracle simply returns it with maximal
confidence.  Which loads are *worth* predicting remains the job of the load
selector — the oracle does not bypass the criticality decision.
"""

from __future__ import annotations

from repro.isa import Instruction, OpClass
from repro.vp.base import ValuePrediction, ValuePredictor


class OraclePredictor(ValuePredictor):
    """Always-correct predictor used for the potential study (Figure 1)."""

    #: Confidence reported for every oracle prediction.
    MAX_CONFIDENCE = 32

    def predict(self, inst: Instruction) -> ValuePrediction | None:
        if inst.op is not OpClass.LOAD or inst.value is None:
            return None
        self.lookups += 1
        return ValuePrediction(inst.value, self.MAX_CONFIDENCE)

    def train(self, inst: Instruction, actual: int) -> None:
        """The oracle has no state to train."""
