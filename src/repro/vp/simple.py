"""Last-value and stride predictors.

These are the classic Lipasti/Shen-style predictors.  They serve three
purposes in the reproduction: readable baselines for unit tests, building
blocks documented by the Wang–Franklin hybrid, and cheap predictors for
the examples.
"""

from __future__ import annotations

from repro.isa import Instruction, OpClass
from repro.vp.base import ValuePrediction, ValuePredictor

_MASK64 = (1 << 64) - 1


class LastValuePredictor(ValuePredictor):
    """Predicts each static load will repeat its last committed value.

    Confidence is a saturating counter per entry, incremented on repeats
    and reset on changes; predictions are offered once it reaches
    ``threshold``.
    """

    def __init__(self, entries: int = 4096, threshold: int = 2, max_conf: int = 8) -> None:
        super().__init__()
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.threshold = threshold
        self.max_conf = max_conf
        # pc tag -> [last_value, confidence]
        self._table: list[list[int] | None] = [None] * entries
        self._mask = entries - 1

    def _entry(self, pc: int) -> list[int] | None:
        entry = self._table[(pc >> 2) & self._mask]
        if entry is None or entry[0] != pc:
            return None
        return entry

    def predict(self, inst: Instruction) -> ValuePrediction | None:
        if inst.op is not OpClass.LOAD:
            return None
        self.lookups += 1
        entry = self._entry(inst.pc)
        if entry is None or entry[2] < self.threshold:
            return None
        return ValuePrediction(entry[1], entry[2])

    def train(self, inst: Instruction, actual: int) -> None:
        idx = (inst.pc >> 2) & self._mask
        entry = self._table[idx]
        if entry is None or entry[0] != inst.pc:
            self._table[idx] = [inst.pc, actual, 0]
            return
        if entry[1] == actual:
            entry[2] = min(entry[2] + 1, self.max_conf)
        else:
            entry[1] = actual
            entry[2] = 0

    def _snapshot_state(self) -> dict:
        return {
            "table": [None if e is None else list(e) for e in self._table],
        }

    def _restore_state(self, state: dict) -> None:
        table = state["table"]
        if len(table) != self.entries:
            raise ValueError("LastValuePredictor snapshot table size mismatch")
        self._table = [None if e is None else list(e) for e in table]


class StridePredictor(ValuePredictor):
    """Predicts ``last_value + stride`` per static load.

    The stride must be observed twice in a row before the entry gains
    confidence (the standard two-delta rule).  The speculative-update hook
    advances ``last_value`` by the stride when a prediction is consumed, so
    back-to-back in-flight predictions of the same PC chain correctly — the
    behaviour the paper notes for the queue-stage stride update.
    """

    def __init__(self, entries: int = 4096, threshold: int = 2, max_conf: int = 8) -> None:
        super().__init__()
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.threshold = threshold
        self.max_conf = max_conf
        # pc tag -> [pc, last_value, stride, confidence, last_committed];
        # last_value is the (possibly speculative) head used to predict,
        # last_committed anchors commit-time stride computation
        self._table: list[list[int] | None] = [None] * entries
        self._mask = entries - 1

    def predict(self, inst: Instruction) -> ValuePrediction | None:
        if inst.op is not OpClass.LOAD:
            return None
        self.lookups += 1
        idx = (inst.pc >> 2) & self._mask
        entry = self._table[idx]
        if entry is None or entry[0] != inst.pc or entry[3] < self.threshold:
            return None
        return ValuePrediction((entry[1] + entry[2]) & _MASK64, entry[3])

    def speculative_update(self, inst: Instruction, predicted: int) -> None:
        idx = (inst.pc >> 2) & self._mask
        entry = self._table[idx]
        if entry is not None and entry[0] == inst.pc:
            entry[1] = predicted & _MASK64

    def train(self, inst: Instruction, actual: int) -> None:
        actual &= _MASK64
        idx = (inst.pc >> 2) & self._mask
        entry = self._table[idx]
        if entry is None or entry[0] != inst.pc:
            self._table[idx] = [inst.pc, actual, 0, 0, actual]
            return
        stride = (actual - entry[4]) & _MASK64
        if stride == entry[2]:
            entry[3] = min(entry[3] + 1, self.max_conf)
        else:
            entry[2] = stride
            entry[3] = 0
        entry[1] = actual
        entry[4] = actual

    def _snapshot_state(self) -> dict:
        return {
            "table": [None if e is None else list(e) for e in self._table],
        }

    def _restore_state(self, state: dict) -> None:
        table = state["table"]
        if len(table) != self.entries:
            raise ValueError("StridePredictor snapshot table size mismatch")
        self._table = [None if e is None else list(e) for e in table]
