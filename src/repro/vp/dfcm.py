"""Third-order differential finite context method (DFCM) predictor.

Section 5.4 of the paper evaluates "an improved third order DFCM predictor
with similar size based on Burtscher" and finds it *more aggressive* than
the Wang–Franklin hybrid — more correct predictions, but also more
incorrect ones, which hurts under threaded value prediction's misprediction
cost.  We reproduce that character:

* Level 1 (per-PC): last value plus the three most recent strides.
* Level 2 (shared): keyed by a hash of the stride history, holding the
  predicted next stride and a small confidence counter.

The hash follows Burtscher's *improved index function* idea ("An improved
index function for (D)FCM predictors", CAN 2002): instead of concatenating
truncated strides, each history element is folded over the full index width
and rotated by a per-position amount before XOR-ing, preserving entropy
from all history positions.
"""

from __future__ import annotations

from repro.isa import Instruction, OpClass
from repro.vp.base import ValuePrediction, ValuePredictor

_MASK64 = (1 << 64) - 1


def _fold(value: int, bits: int) -> int:
    """Fold a 64-bit value down to ``bits`` bits by XOR-ing segments."""
    value &= _MASK64
    mask = (1 << bits) - 1
    out = 0
    while value:
        out ^= value & mask
        value >>= bits
    return out


class _DfcmLevel1:
    """Per-PC history: last value and an order-``k`` stride history.

    ``last_value`` may be advanced speculatively at the queue stage;
    ``last_committed`` anchors commit-time stride computation.
    """

    __slots__ = ("pc", "last_value", "last_committed", "strides")

    def __init__(self, pc: int, order: int) -> None:
        self.pc = pc
        self.last_value = 0
        self.last_committed = 0
        self.strides = [0] * order


class DfcmPredictor(ValuePredictor):
    """Order-3 DFCM with Burtscher-style hashing and confidence.

    The default confidence scheme (threshold 2, +1/−1, max 15) is
    deliberately far more permissive than Wang–Franklin's 12/+1/−8: that is
    the "more aggressive" behaviour the paper reports for this predictor —
    more correct predictions, and more incorrect ones, which is what costs
    it under threaded value prediction's kill-and-restart recovery.

    Args:
        l1_entries: Level-1 table size (per-PC histories).
        l2_entries: Level-2 table size (stride-pattern table).
        order: History depth (3 in the paper).
        threshold: Confidence needed to emit a prediction.
        bonus: Confidence increment on a correct stride match.
        penalty: Confidence decrement on a mismatch.
        max_conf: Counter saturation ceiling.
    """

    def __init__(
        self,
        l1_entries: int = 4096,
        l2_entries: int = 32 * 1024,
        order: int = 3,
        threshold: int = 2,
        bonus: int = 1,
        penalty: int = 1,
        max_conf: int = 15,
    ) -> None:
        super().__init__()
        if l1_entries & (l1_entries - 1) or l2_entries & (l2_entries - 1):
            raise ValueError("table sizes must be powers of two")
        self.order = order
        self.threshold = threshold
        self.bonus = bonus
        self.penalty = penalty
        self.max_conf = max_conf
        self._l1: list[_DfcmLevel1 | None] = [None] * l1_entries
        self._l1_mask = l1_entries - 1
        self._index_bits = l2_entries.bit_length() - 1
        # level 2: index -> [stride, confidence]
        self._l2: list[list[int] | None] = [None] * l2_entries

    # ------------------------------------------------------------------
    def _l1_entry(self, pc: int, allocate: bool) -> _DfcmLevel1 | None:
        idx = (pc >> 2) & self._l1_mask
        entry = self._l1[idx]
        if entry is None or entry.pc != pc:
            if not allocate:
                return None
            entry = _DfcmLevel1(pc, self.order)
            self._l1[idx] = entry
        return entry

    def _l2_index(self, entry: _DfcmLevel1) -> int:
        """Burtscher-style improved index: fold and rotate each stride."""
        bits = self._index_bits
        index = _fold(entry.pc >> 2, bits)
        for position, stride in enumerate(entry.strides):
            folded = _fold(stride, bits)
            rotate = (position * 5 + 3) % bits
            rotated = ((folded << rotate) | (folded >> (bits - rotate))) & ((1 << bits) - 1)
            index ^= rotated
        return index

    # ------------------------------------------------------------------
    def predict(self, inst: Instruction) -> ValuePrediction | None:
        if inst.op is not OpClass.LOAD:
            return None
        self.lookups += 1
        entry = self._l1_entry(inst.pc, allocate=False)
        if entry is None:
            return None
        l2 = self._l2[self._l2_index(entry)]
        if l2 is None or l2[1] < self.threshold:
            return None
        return ValuePrediction((entry.last_value + l2[0]) & _MASK64, l2[1])

    def speculative_update(self, inst: Instruction, predicted: int) -> None:
        """Advance the last value as if the prediction commits.

        Only ``last_value`` moves speculatively; the stride history shifts
        at commit time (in :meth:`train`), so a used prediction is not
        double-counted in the history.
        """
        entry = self._l1_entry(inst.pc, allocate=False)
        if entry is None:
            return
        entry.last_value = predicted & _MASK64

    def train(self, inst: Instruction, actual: int) -> None:
        actual &= _MASK64
        entry = self._l1_entry(inst.pc, allocate=True)
        stride = (actual - entry.last_committed) & _MASK64
        idx = self._l2_index(entry)
        l2 = self._l2[idx]
        if l2 is None:
            self._l2[idx] = [stride, 1]
        elif l2[0] == stride:
            l2[1] = min(l2[1] + self.bonus, self.max_conf)
        else:
            l2[1] = max(l2[1] - self.penalty, 0)
            if l2[1] == 0:
                l2[0] = stride
                l2[1] = 1
        entry.strides = entry.strides[1:] + [stride]
        entry.last_committed = actual
        entry.last_value = actual

    def _snapshot_state(self) -> dict:
        return {
            "l1": [
                None
                if e is None
                else [e.pc, e.last_value, e.last_committed, list(e.strides)]
                for e in self._l1
            ],
            "l2": [None if e is None else list(e) for e in self._l2],
        }

    def _restore_state(self, state: dict) -> None:
        if len(state["l1"]) != len(self._l1) or len(state["l2"]) != len(self._l2):
            raise ValueError("DfcmPredictor snapshot table size mismatch")
        l1: list[_DfcmLevel1 | None] = []
        for e in state["l1"]:
            if e is None:
                l1.append(None)
                continue
            entry = _DfcmLevel1(e[0], self.order)
            entry.last_value = e[1]
            entry.last_committed = e[2]
            entry.strides = list(e[3])
            l1.append(entry)
        self._l1 = l1
        self._l2 = [None if e is None else list(e) for e in state["l2"]]
