"""Value predictors.

The paper (Section 3.1, 5.4) experiments with:

* an **oracle** predictor that always predicts correctly for any load it
  chooses to predict,
* a **hybrid Wang–Franklin** predictor: a 4K-entry value history table with
  five learned values, hardwired zero and one, and a stride component; a
  32K-entry value pattern history table of confidence counters
  (+1 correct / −8 incorrect, threshold 12, max 32),
* an improved third-order **DFCM** predictor with Burtscher's index
  function and a confidence estimator.

Simple last-value and stride predictors are provided both as components and
as baselines for tests.
"""

from repro.registry import Registry
from repro.vp.base import ValuePrediction, ValuePredictor
from repro.vp.dfcm import DfcmPredictor
from repro.vp.oracle import OraclePredictor
from repro.vp.simple import LastValuePredictor, StridePredictor
from repro.vp.wang_franklin import WangFranklinPredictor

#: canonical name -> class registry; ``repro.vp.create("dfcm")`` et al.
REGISTRY = Registry(
    "value predictor",
    {
        "oracle": OraclePredictor,
        "wang-franklin": WangFranklinPredictor,
        "dfcm": DfcmPredictor,
        "last-value": LastValuePredictor,
        "stride": StridePredictor,
    },
)
names = REGISTRY.names
get = REGISTRY.get
create = REGISTRY.create
factory = REGISTRY.factory
resolve = REGISTRY.resolve

__all__ = [
    "DfcmPredictor",
    "LastValuePredictor",
    "OraclePredictor",
    "REGISTRY",
    "StridePredictor",
    "ValuePrediction",
    "ValuePredictor",
    "WangFranklinPredictor",
    "create",
    "factory",
    "get",
    "names",
    "resolve",
]
