"""Hybrid Wang–Franklin value predictor (Section 5.4 of the paper).

Structure, per the paper:

* **VHT** (value history table), 4K entries indexed by PC.  Each entry holds
  "the most recent values created by that PC" (five learned values here), a
  last-value and stride for the stride component, and "a pattern history
  (similar to a branch history) which is used to index the next table".
* **ValPHT** (value pattern history table), 32K entries, holding "the
  confidence level for the values in the VHT".

The predictor offers eight candidate *slots* per load: five learned values,
a hardwired zero, a hardwired one, and ``last + stride``.  Confidence is a
saturating counter per slot in the ValPHT entry selected by (PC, pattern):
"+1 on correct predictions ... −8 on incorrect predictions with a threshold
of 12 and a maximum counter value of 32".

The penalty of 8 makes it hard for more than one slot to be over threshold
at once — exactly the property Section 5.6 calls out when motivating a more
*liberal* parameterization for multiple-value prediction.  Pass a smaller
``penalty`` / ``threshold`` to build that liberal variant.
"""

from __future__ import annotations

from repro.isa import Instruction, OpClass
from repro.vp.base import ValuePrediction, ValuePredictor

_MASK64 = (1 << 64) - 1

#: Slot layout within a ValPHT confidence vector.
NUM_LEARNED = 5
SLOT_ZERO = 5
SLOT_ONE = 6
SLOT_STRIDE = 7
NUM_SLOTS = 8


class _VhtEntry:
    """One value-history-table entry.

    ``last_value`` is the speculative head of the stride component (it may
    be advanced at the queue stage via :meth:`WangFranklinPredictor.
    speculative_update`); ``last_committed`` tracks architecturally
    committed values so training always computes the true inter-commit
    stride even when speculative updates intervene.
    """

    __slots__ = ("pc", "values", "last_value", "last_committed", "stride", "pattern")

    def __init__(self, pc: int) -> None:
        self.pc = pc
        #: learned values, most recently used last
        self.values: list[int] = []
        self.last_value = 0
        self.last_committed = 0
        self.stride = 0
        #: shift register of recent matching slot indices (4 bits each)
        self.pattern = 0


class WangFranklinPredictor(ValuePredictor):
    """Hybrid multi-source value predictor with pattern-indexed confidence.

    Args:
        vht_entries: Value history table size (4K in the paper).
        valpht_entries: Pattern/confidence table size (32K in the paper).
        threshold: Confidence needed before a slot's value is predicted (12).
        bonus: Confidence increment on a correct slot (1).
        penalty: Confidence decrement on an incorrect slot (8).
        max_conf: Saturation ceiling (32).
        pattern_depth: How many recent slot outcomes form the pattern (2).
    """

    def __init__(
        self,
        vht_entries: int = 4096,
        valpht_entries: int = 32 * 1024,
        threshold: int = 12,
        bonus: int = 1,
        penalty: int = 8,
        max_conf: int = 32,
        pattern_depth: int = 2,
    ) -> None:
        super().__init__()
        if vht_entries & (vht_entries - 1) or valpht_entries & (valpht_entries - 1):
            raise ValueError("table sizes must be powers of two")
        self.threshold = threshold
        self.bonus = bonus
        self.penalty = penalty
        self.max_conf = max_conf
        self.pattern_depth = pattern_depth
        # 4 bits per outcome: slot indices 0-7 plus the distinct "no match"
        # code 8, so a miss is distinguishable from a stride-slot hit
        self._pattern_mask = (1 << (4 * pattern_depth)) - 1
        self._vht: list[_VhtEntry | None] = [None] * vht_entries
        self._vht_mask = vht_entries - 1
        self._valpht: list[list[int] | None] = [None] * valpht_entries
        self._valpht_mask = valpht_entries - 1

    # ------------------------------------------------------------------
    def _vht_entry(self, pc: int, allocate: bool) -> _VhtEntry | None:
        idx = (pc >> 2) & self._vht_mask
        entry = self._vht[idx]
        if entry is None or entry.pc != pc:
            if not allocate:
                return None
            entry = _VhtEntry(pc)
            self._vht[idx] = entry
        return entry

    def _confidences(self, entry: _VhtEntry) -> list[int]:
        idx = ((entry.pc >> 2) ^ (entry.pattern * 0x65D)) & self._valpht_mask
        vec = self._valpht[idx]
        if vec is None:
            vec = [0] * NUM_SLOTS
            self._valpht[idx] = vec
        return vec

    def _candidates(self, entry: _VhtEntry) -> list[int | None]:
        """Candidate value for each slot; None when the slot is empty."""
        values: list[int | None] = [None] * NUM_SLOTS
        for i, v in enumerate(entry.values[:NUM_LEARNED]):
            values[i] = v
        values[SLOT_ZERO] = 0
        values[SLOT_ONE] = 1
        values[SLOT_STRIDE] = (entry.last_value + entry.stride) & _MASK64
        return values

    # ------------------------------------------------------------------
    def predict(self, inst: Instruction) -> ValuePrediction | None:
        if inst.op is not OpClass.LOAD:
            return None
        self.lookups += 1
        entry = self._vht_entry(inst.pc, allocate=False)
        if entry is None:
            return None
        confidences = self._confidences(entry)
        candidates = self._candidates(entry)
        best_slot = -1
        best_conf = self.threshold - 1
        for slot in range(NUM_SLOTS):
            if candidates[slot] is None:
                continue
            if confidences[slot] > best_conf:
                best_conf = confidences[slot]
                best_slot = slot
        if best_slot < 0:
            return None
        return ValuePrediction(candidates[best_slot], best_conf, best_slot)

    def predict_all(self, inst: Instruction) -> list[ValuePrediction]:
        """All distinct over-threshold candidates, highest confidence first."""
        if inst.op is not OpClass.LOAD:
            return []
        entry = self._vht_entry(inst.pc, allocate=False)
        if entry is None:
            return []
        confidences = self._confidences(entry)
        candidates = self._candidates(entry)
        seen: set[int] = set()
        out: list[ValuePrediction] = []
        order = sorted(range(NUM_SLOTS), key=lambda s: -confidences[s])
        for slot in order:
            value = candidates[slot]
            if value is None or confidences[slot] < self.threshold or value in seen:
                continue
            seen.add(value)
            out.append(ValuePrediction(value, confidences[slot], slot))
        return out

    def speculative_update(self, inst: Instruction, predicted: int) -> None:
        """Queue-stage speculative advance of the stride component."""
        entry = self._vht_entry(inst.pc, allocate=False)
        if entry is not None:
            entry.last_value = predicted & _MASK64

    def train(self, inst: Instruction, actual: int) -> None:
        """Commit-time training: confidences, pattern, learned values, stride.

        The confidence rule follows the paper's wording: "value confidence
        increases by 1 on correct predictions and decreases by 8 on
        incorrect predictions" — the penalty lands on the slot that *would
        have been predicted* (the acting prediction), while any slot whose
        candidate matches the committed value is reinforced.  Slots that
        neither matched nor acted keep their confidence: this is what lets
        a minority value accumulate confidence in a bimodal stream, the
        effect Figure 5 measures.
        """
        actual &= _MASK64
        entry = self._vht_entry(inst.pc, allocate=True)
        confidences = self._confidences(entry)
        candidates = self._candidates(entry)
        # reconstruct the acting prediction exactly as predict() chooses it
        predicted_slot = -1
        best_conf = self.threshold - 1
        for slot in range(NUM_SLOTS):
            if candidates[slot] is not None and confidences[slot] > best_conf:
                best_conf = confidences[slot]
                predicted_slot = slot
        matched_slot = NUM_SLOTS  # distinct "no match" pattern code
        first_match = -1
        for slot in range(NUM_SLOTS):
            value = candidates[slot]
            if value is None:
                continue
            if value == actual:
                if first_match < 0:
                    first_match = slot
                confidences[slot] = min(confidences[slot] + self.bonus, self.max_conf)
            elif slot == predicted_slot:
                confidences[slot] = max(confidences[slot] - self.penalty, 0)
        if first_match >= 0:
            matched_slot = first_match
        # pattern update: shift in the matching slot (4 bits per outcome)
        entry.pattern = ((entry.pattern << 4) | matched_slot) & self._pattern_mask
        # learned-value LRU update
        if actual in entry.values:
            entry.values.remove(actual)
        entry.values.append(actual)
        if len(entry.values) > NUM_LEARNED:
            entry.values.pop(0)
        # stride component ("training and replacement ... when instructions commit")
        entry.stride = (actual - entry.last_committed) & _MASK64
        entry.last_committed = actual
        entry.last_value = actual

    def _snapshot_state(self) -> dict:
        return {
            "vht": [
                None
                if e is None
                else [
                    e.pc,
                    list(e.values),
                    e.last_value,
                    e.last_committed,
                    e.stride,
                    e.pattern,
                ]
                for e in self._vht
            ],
            "valpht": [None if v is None else list(v) for v in self._valpht],
        }

    def _restore_state(self, state: dict) -> None:
        if (
            len(state["vht"]) != len(self._vht)
            or len(state["valpht"]) != len(self._valpht)
        ):
            raise ValueError("WangFranklinPredictor snapshot table size mismatch")
        vht: list[_VhtEntry | None] = []
        for e in state["vht"]:
            if e is None:
                vht.append(None)
                continue
            entry = _VhtEntry(e[0])
            entry.values = list(e[1])
            entry.last_value = e[2]
            entry.last_committed = e[3]
            entry.stride = e[4]
            entry.pattern = e[5]
            vht.append(entry)
        self._vht = vht
        self._valpht = [None if v is None else list(v) for v in state["valpht"]]
