"""repro — a reproduction of "Multithreaded Value Prediction".

Tuck & Tullsen, HPCA-11, 2005.

The package implements threaded value prediction (MTVP) on a trace-driven
SMT out-of-order timing model, together with every substrate the paper's
evaluation depends on: the Table 1 memory hierarchy with a stream-buffer
stride prefetcher, a 2bcgskew branch predictor, Wang–Franklin / DFCM /
oracle value predictors, the ILP-pred load selector, the tagged speculative
store buffer, and a synthetic SPEC CPU2000 workload suite.

Quickstart::

    from repro import MachineConfig, simulate
    from repro.workloads import get_workload

    workload = get_workload("mcf")
    base = simulate(workload, MachineConfig.hpca05_baseline())
    mtvp = simulate(workload, MachineConfig.mtvp(threads=8))
    print(f"speedup {mtvp.useful_ipc / base.useful_ipc:.2f}x")
"""

import dataclasses

from repro.core import Engine, FetchPolicy, MachineConfig, SimMode, SimStats
from repro.isa import Instruction, InstructionBuilder, OpClass
from repro.select import (
    AlwaysSelector,
    IlpCommitSelector,
    IlpPredSelector,
    LoadSelector,
    MissOracleSelector,
    PredictionKind,
)
from repro.vp import (
    DfcmPredictor,
    LastValuePredictor,
    OraclePredictor,
    StridePredictor,
    ValuePredictor,
    WangFranklinPredictor,
)
from repro.workloads import Workload, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AlwaysSelector",
    "DfcmPredictor",
    "Engine",
    "FetchPolicy",
    "IlpCommitSelector",
    "IlpPredSelector",
    "Instruction",
    "InstructionBuilder",
    "LastValuePredictor",
    "LoadSelector",
    "MachineConfig",
    "MissOracleSelector",
    "OpClass",
    "OraclePredictor",
    "PredictionKind",
    "SimMode",
    "SimStats",
    "StridePredictor",
    "ValuePredictor",
    "WangFranklinPredictor",
    "Workload",
    "get_workload",
    "simulate",
    "workload_names",
]


def simulate(
    workload_or_trace,
    config: MachineConfig,
    predictor: ValuePredictor | None = None,
    selector: LoadSelector | None = None,
    length: int | None = None,
    seed: int = 0,
    tracer=None,
    metrics=None,
    warmup: int = 0,
    checkpoints=None,
    checkpoint_key: str | None = None,
) -> SimStats:
    """Run one simulation and return its statistics.

    Args:
        workload_or_trace: A :class:`~repro.workloads.Workload`, a workload
            name from the modeled suite, or an explicit instruction list.
        config: Machine configuration (see :class:`MachineConfig` presets).
        predictor: Value predictor; defaults to the oracle predictor.
        selector: Load selector; defaults to :class:`AlwaysSelector`.
        length: Trace length when a workload is given (defaults to the
            workload's own ``default_length``).  With ``warmup`` this is
            the *measured* length: the trace is extended by ``warmup``
            instructions that are fast-forwarded, not timed.
        seed: Dynamic-stream seed when a workload is given.
        tracer: Optional :class:`repro.obs.Tracer` collecting cycle-stamped
            events; export with its ``export_chrome``/``export_jsonl``.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; results land
            in ``stats.extended``.
        warmup: Instructions to execute *functionally* before timing
            starts (caches, prefetcher and predictor tables warm; no
            cycles accumulate).  Reported as
            ``stats.warmup_instructions``.
        checkpoints: Optional
            :class:`~repro.harness.checkpoint.CheckpointStore`; with a
            ``checkpoint_key`` the warmed architectural state is restored
            from (or stored into) it, so repeated warmups are paid once.
        checkpoint_key: Store key identifying the warmed state (see
            :func:`~repro.harness.checkpoint.arch_key`); ignored without
            a store.  Instrumented runs (``tracer``/``metrics``) never
            touch the store — snapshots exclude probe state — but still
            fast-forward.

    Returns:
        The populated :class:`SimStats` for the run.

    Multi-program modes (``config.mode`` whose execution model is
    ``multi_program``, i.e. the SMT co-schedule) accept a
    :class:`~repro.workloads.TraceSet` — one program per hardware context
    (``num_contexts`` adapts to the set's size) — or a workload, in which
    case ``num_contexts`` independent dynamic streams of the same workload
    body are generated with seeds ``seed, seed+1, ...``.  ``warmup``
    (functional fast-forward) is single-stream by construction and is
    rejected for them.
    """
    from repro.core.modes import resolve_model
    from repro.workloads import TraceSet

    if isinstance(workload_or_trace, str):
        workload_or_trace = get_workload(workload_or_trace)
    warm_addresses = None
    traces = None
    if resolve_model(config.mode).multi_program:
        if warmup:
            raise ValueError(
                f"warmup is not supported in {config.mode.value} mode: "
                "fast-forward advances a single program stream"
            )
        if isinstance(workload_or_trace, TraceSet):
            traces = list(workload_or_trace.traces)
            if len(traces) != config.num_contexts:
                config = dataclasses.replace(
                    config, num_contexts=len(traces)
                )
        elif isinstance(workload_or_trace, Workload):
            traces = [
                workload_or_trace.trace(length=length, seed=seed + i)
                for i in range(config.num_contexts)
            ]
            if config.warm_caches:
                warm_addresses = _steady_state_footprint(
                    workload_or_trace, config
                )
        else:
            raise TypeError(
                f"{config.mode.value} mode needs a TraceSet or a workload "
                "(one explicit trace cannot fill multiple contexts)"
            )
        trace = traces[0]
    elif isinstance(workload_or_trace, TraceSet):
        if len(workload_or_trace) != 1:
            raise ValueError(
                f"mode {config.mode.value} runs a single program; the "
                f"TraceSet holds {len(workload_or_trace)}"
            )
        trace = list(workload_or_trace.traces[0])
    elif isinstance(workload_or_trace, Workload):
        if warmup:
            measured = (
                length
                if length is not None
                else workload_or_trace.spec.default_length
            )
            trace = workload_or_trace.trace(length=warmup + measured, seed=seed)
        else:
            trace = workload_or_trace.trace(length=length, seed=seed)
        if config.warm_caches:
            warm_addresses = _steady_state_footprint(workload_or_trace, config)
    else:
        trace = list(workload_or_trace)
    engine = Engine(
        trace, config, predictor=predictor, selector=selector,
        warm_addresses=warm_addresses, tracer=tracer, metrics=metrics,
        traces=traces,
    )
    if warmup:
        store = checkpoints
        if checkpoint_key is None or tracer is not None or metrics is not None:
            store = None
        payload = store.get(checkpoint_key) if store is not None else None
        if payload is not None:
            engine.restore(payload)
        else:
            engine.fast_forward(warmup)
            if store is not None:
                store.put(checkpoint_key, engine.snapshot(scope="arch"))
    return engine.run()


def _steady_state_footprint(workload: Workload, config: MachineConfig) -> list[int]:
    """Addresses a long-running execution would keep resident.

    Streams whose region fits in the L3 are fully warm in steady state;
    larger regions walked without revisits are as cold at the SimPoint as
    at startup, so they are left untouched.
    """
    addresses: list[int] = []
    for base, region_bytes in workload.stream_regions():
        if region_bytes <= config.l3_size:
            addresses.extend(
                base + off for off in range(0, region_bytes, config.line_size)
            )
    return addresses
