"""Branch predictors.

Table 1 of the paper specifies a 2bcgskew predictor with 64K-entry meta and
gshare tables and a 16K-entry bimodal table.  We implement the component
predictors (bimodal, gshare) and the 2bcgskew hybrid built from them.

Tables are shared between hardware contexts (as on a real SMT); global
history is per-context state owned by the pipeline, threaded through the
``history`` argument, so a spawned thread can inherit its parent's history
with a simple copy.
"""

from repro.branch.predictors import (
    BimodalPredictor,
    BranchPredictor,
    GsharePredictor,
    TwoBcGskewPredictor,
    update_history,
)

__all__ = [
    "BimodalPredictor",
    "BranchPredictor",
    "GsharePredictor",
    "TwoBcGskewPredictor",
    "update_history",
]
