"""Bimodal, gshare and 2bcgskew branch predictors.

All predictors expose the same two-method protocol:

* ``predict(pc, history) -> bool`` — taken/not-taken guess,
* ``update(pc, history, taken) -> None`` — train with the resolved outcome.

Global history is caller-owned (an integer shift register) so that each SMT
context — including freshly spawned value-speculative threads — keeps its
own history while sharing the prediction tables.
"""

from __future__ import annotations

from repro.obs import NULL_PROBE

#: Number of global-history bits threaded through the predictors.
HISTORY_BITS = 16
_HISTORY_MASK = (1 << HISTORY_BITS) - 1


def update_history(history: int, taken: bool) -> int:
    """Shift a branch outcome into a global-history register."""
    return ((history << 1) | (1 if taken else 0)) & _HISTORY_MASK


class BranchPredictor:
    """Protocol base class; also usable as a static always-taken stub."""

    #: observability hook (see :mod:`repro.obs.probe`): a class attribute
    #: so every predictor inherits the null object for free; the engine
    #: sets an instance attribute when observability is requested
    obs = NULL_PROBE

    def predict(self, pc: int, history: int) -> bool:
        """Return the predicted direction for the branch at ``pc``."""
        raise NotImplementedError

    def update(self, pc: int, history: int, taken: bool) -> None:
        """Train the predictor with the resolved direction."""
        raise NotImplementedError

    def predict_and_update(self, pc: int, history: int, taken: bool) -> bool:
        """Predict then immediately train; returns the prediction.

        The engine resolves every branch in the same step it predicts it,
        so the two-call protocol does each table walk twice.  Subclasses
        may fuse the walks; this default is the unfused equivalent.
        """
        predicted = self.predict(pc, history)
        self.update(pc, history, taken)
        return predicted

    def snapshot(self) -> dict:
        """Serialize predictor tables to a versioned picklable dict."""
        return {
            "version": 1,
            "kind": type(self).__name__,
            "state": self._snapshot_state(),
        }

    def restore(self, data: dict) -> None:
        """Restore from a :meth:`snapshot` payload of the same kind."""
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported BranchPredictor snapshot version: "
                f"{data.get('version')!r}"
            )
        if data.get("kind") != type(self).__name__:
            raise ValueError(
                f"branch-predictor snapshot is for {data.get('kind')!r}, "
                f"not {type(self).__name__}"
            )
        self._restore_state(data["state"])

    def _snapshot_state(self) -> dict:
        """Table contents for :meth:`snapshot`; the static stub has none."""
        return {}

    def _restore_state(self, state: dict) -> None:
        """Restore table contents captured by :meth:`_snapshot_state`."""


class _CounterTable:
    """A table of 2-bit saturating counters packed in a flat list."""

    __slots__ = ("entries", "mask", "counters")

    def __init__(self, entries: int, init: int = 1) -> None:
        if entries & (entries - 1):
            raise ValueError("table size must be a power of two")
        self.entries = entries
        self.mask = entries - 1
        self.counters = [init] * entries

    def taken(self, index: int) -> bool:
        return self.counters[index & self.mask] >= 2

    def train(self, index: int, taken: bool) -> None:
        i = index & self.mask
        c = self.counters[i]
        if taken:
            if c < 3:
                self.counters[i] = c + 1
        elif c > 0:
            self.counters[i] = c - 1

    def snapshot(self) -> list[int]:
        return list(self.counters)

    def restore(self, counters: list[int]) -> None:
        if len(counters) != self.entries:
            raise ValueError("counter-table snapshot size mismatch")
        self.counters = list(counters)


class BimodalPredictor(BranchPredictor):
    """PC-indexed table of 2-bit counters (16K entries in the paper)."""

    def __init__(self, entries: int = 16 * 1024) -> None:
        self._table = _CounterTable(entries)

    def predict(self, pc: int, history: int) -> bool:
        return self._table.taken(pc >> 2)

    def update(self, pc: int, history: int, taken: bool) -> None:
        self._table.train(pc >> 2, taken)

    def _snapshot_state(self) -> dict:
        return {"table": self._table.snapshot()}

    def _restore_state(self, state: dict) -> None:
        self._table.restore(state["table"])


class GsharePredictor(BranchPredictor):
    """Global-history predictor indexing with pc XOR history."""

    def __init__(self, entries: int = 64 * 1024, history_bits: int = HISTORY_BITS) -> None:
        self._table = _CounterTable(entries)
        self._hist_mask = (1 << history_bits) - 1

    def _index(self, pc: int, history: int) -> int:
        return (pc >> 2) ^ (history & self._hist_mask)

    def predict(self, pc: int, history: int) -> bool:
        return self._table.taken(self._index(pc, history))

    def update(self, pc: int, history: int, taken: bool) -> None:
        self._table.train(self._index(pc, history), taken)

    def _snapshot_state(self) -> dict:
        return {"table": self._table.snapshot()}

    def _restore_state(self, state: dict) -> None:
        self._table.restore(state["table"])


#: global-history bits used by each skewed bank (G0 short, G1 long), the
#: classic unequal-history arrangement that lets short-history banks train
#: quickly on weakly-correlated branches while long-history banks capture
#: patterns
_BANK_HISTORY_BITS = (0, 6, 12)


def _skew_index(pc: int, history: int, bank: int) -> int:
    """Inter-bank dispersion hash used by the skewed banks of 2bcgskew.

    The real design uses the H/H^-1 skewing functions of Seznec; a
    multiplicative hash with a per-bank odd constant gives the same
    property we need — conflicting (pc, history) pairs rarely collide in
    more than one bank.
    """
    hist = history & ((1 << _BANK_HISTORY_BITS[bank % 3]) - 1)
    key = ((pc >> 2) << HISTORY_BITS) | hist
    mult = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D)[bank % 3]
    return (key * mult) >> 13


class TwoBcGskewPredictor(BranchPredictor):
    """2bcgskew: a bimodal bank plus skewed gshare banks with a meta chooser.

    The final prediction is either the bimodal bank's or the majority vote
    of (bimodal, G0, G1), selected by a history-indexed meta table.  The
    update rule follows the published partial-update policy: the meta table
    trains toward whichever component was right; banks train when the
    overall prediction was wrong or when they participated in a correct
    majority.
    """

    def __init__(
        self,
        bimodal_entries: int = 16 * 1024,
        skew_entries: int = 64 * 1024,
        meta_entries: int = 64 * 1024,
    ) -> None:
        self._bim = _CounterTable(bimodal_entries)
        self._g0 = _CounterTable(skew_entries)
        self._g1 = _CounterTable(skew_entries)
        self._meta = _CounterTable(meta_entries, init=2)  # slight bias toward eskew
        self.lookups = 0

    def _votes(self, pc: int, history: int) -> tuple[bool, bool, bool]:
        bim = self._bim.taken(pc >> 2)
        g0 = self._g0.taken(_skew_index(pc, history, 1))
        g1 = self._g1.taken(_skew_index(pc, history, 2))
        return bim, g0, g1

    def predict(self, pc: int, history: int) -> bool:
        self.lookups += 1
        bim, g0, g1 = self._votes(pc, history)
        majority = (bim + g0 + g1) >= 2
        use_eskew = self._meta.taken(_skew_index(pc, history, 0))
        return majority if use_eskew else bim

    def update(self, pc: int, history: int, taken: bool) -> None:
        bim, g0, g1 = self._votes(pc, history)
        majority = (bim + g0 + g1) >= 2
        meta_index = _skew_index(pc, history, 0)
        use_eskew = self._meta.taken(meta_index)
        prediction = majority if use_eskew else bim
        if majority != bim:
            # the components disagree: train the chooser toward the winner
            self._meta.train(meta_index, majority == taken)
        if prediction != taken:
            # total misprediction: retrain every bank
            self._bim.train(pc >> 2, taken)
            self._g0.train(_skew_index(pc, history, 1), taken)
            self._g1.train(_skew_index(pc, history, 2), taken)
        else:
            # partial update: only reinforce the banks that agreed
            if bim == taken:
                self._bim.train(pc >> 2, taken)
            if g0 == taken:
                self._g0.train(_skew_index(pc, history, 1), taken)
            if g1 == taken:
                self._g1.train(_skew_index(pc, history, 2), taken)

    def predict_and_update(self, pc: int, history: int, taken: bool) -> bool:
        """Fused predict+train: one lookup count, each skew index hashed
        once instead of up to three times.  ``predict`` mutates nothing,
        so predict-then-update over the same tables sees identical votes —
        this is bit-for-bit the two-call sequence.
        """
        self.lookups += 1
        pc2 = pc >> 2
        i0 = _skew_index(pc, history, 0)
        i1 = _skew_index(pc, history, 1)
        i2 = _skew_index(pc, history, 2)
        bim = self._bim.taken(pc2)
        g0 = self._g0.taken(i1)
        g1 = self._g1.taken(i2)
        majority = (bim + g0 + g1) >= 2
        use_eskew = self._meta.taken(i0)
        prediction = majority if use_eskew else bim
        if majority != bim:
            self._meta.train(i0, majority == taken)
        if prediction != taken:
            if self.obs.enabled:
                self.obs.branch_mispredict(pc)
            self._bim.train(pc2, taken)
            self._g0.train(i1, taken)
            self._g1.train(i2, taken)
        else:
            if bim == taken:
                self._bim.train(pc2, taken)
            if g0 == taken:
                self._g0.train(i1, taken)
            if g1 == taken:
                self._g1.train(i2, taken)
        return prediction

    def _snapshot_state(self) -> dict:
        return {
            "bim": self._bim.snapshot(),
            "g0": self._g0.snapshot(),
            "g1": self._g1.snapshot(),
            "meta": self._meta.snapshot(),
            "lookups": self.lookups,
        }

    def _restore_state(self, state: dict) -> None:
        self._bim.restore(state["bim"])
        self._g0.restore(state["g0"])
        self._g1.restore(state["g1"])
        self._meta.restore(state["meta"])
        self.lookups = state["lookups"]
