"""Bounded event ring buffer with JSONL and Chrome trace exporters."""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.obs.events import EVENT_NAMES, EventKind

#: default ring capacity — enough for a full suite-length run with one
#: instruction event per step, small enough to never threaten memory
DEFAULT_CAPACITY = 1 << 16


class Tracer:
    """Collects cycle-stamped events into a bounded ring buffer.

    Args:
        capacity: Maximum retained events.  When full, the oldest event is
            evicted (``dropped`` counts evictions) — the *tail* of a run
            is almost always the interesting part, and a hard bound keeps
            an accidental trace of a huge run from exhausting memory.

    The tracer records, it does not interpret: events are appended through
    :meth:`emit` as plain tuples (see :mod:`repro.obs.events`) and thread
    lanes are declared through :meth:`register_thread`.  Exports happen
    after the run, from the surviving window.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque[tuple[int, int, int, dict | None]] = deque(
            maxlen=capacity
        )
        self.emitted = 0
        #: tid -> (name, parent tid or None, first-seen cycle)
        self.threads: dict[int, tuple[str, int | None, int]] = {}

    # ------------------------------------------------------------------
    def emit(self, cycle: int, kind: int, tid: int, args: dict | None = None) -> None:
        """Append one event; evicts the oldest when the ring is full."""
        self._events.append((cycle, kind, tid, args))
        self.emitted += 1

    def register_thread(
        self, tid: int, name: str, parent: int | None = None, cycle: int = 0
    ) -> None:
        """Declare a context lane (idempotent; first registration wins)."""
        if tid not in self.threads:
            self.threads[tid] = (name, parent, cycle)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        return self.emitted - len(self._events)

    @property
    def events(self) -> list[tuple[int, int, int, dict | None]]:
        """The retained event window, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def summary(self) -> dict:
        """JSON-ready digest: volume, drops, per-kind counts, lane count."""
        by_kind: dict[str, int] = {}
        for _cycle, kind, _tid, _args in self._events:
            name = EVENT_NAMES[kind]
            by_kind[name] = by_kind.get(name, 0) + 1
        return {
            "emitted": self.emitted,
            "retained": len(self._events),
            "dropped": self.dropped,
            "threads": len(self.threads),
            "by_kind": dict(sorted(by_kind.items())),
        }

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def export_jsonl(self, path: str | Path) -> Path:
        """One JSON object per line: ``{"cycle", "event", "tid", ...args}``.

        A leading line per registered thread (``"event": "thread"``)
        carries the lane names so the file is self-describing.
        """
        path = Path(path)
        with path.open("w") as handle:
            for tid, (name, parent, cycle) in sorted(self.threads.items()):
                rec = {"event": "thread", "tid": tid, "name": name, "cycle": cycle}
                if parent is not None:
                    rec["parent"] = parent
                handle.write(json.dumps(rec, sort_keys=True) + "\n")
            for cycle, kind, tid, args in self._events:
                rec = {"cycle": cycle, "event": EVENT_NAMES[kind], "tid": tid}
                if args:
                    rec.update(args)
                handle.write(json.dumps(rec, sort_keys=True) + "\n")
        return path

    def export_chrome(self, path: str | Path) -> Path:
        """Chrome trace-event format (load in ``chrome://tracing``/Perfetto).

        Each hardware context renders as its own thread lane (named by
        spawn order, so the MTVP spawn chain reads top to bottom);
        instruction events become ``"X"`` complete slices spanning fetch
        to retire, everything else becomes an instant (``"ph": "i"``)
        on its context's lane.  Cycles map 1:1 to microseconds — the
        trace viewer's native unit — so "1 us" on screen is one cycle.
        """
        path = Path(path)
        pid = 0
        out: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro simulation"},
            }
        ]
        for tid, (name, parent, cycle) in sorted(self.threads.items()):
            label = name if parent is None else f"{name} (parent ctx{parent})"
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
            out.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        instr = int(EventKind.INSTRUCTION)
        for cycle, kind, tid, args in self._events:
            args = args or {}
            if kind == instr:
                fetch = args.get("fetch", cycle)
                commit = args.get("commit", cycle)
                out.append(
                    {
                        "name": args.get("op", "instr"),
                        "cat": "pipeline",
                        "ph": "X",
                        "ts": fetch,
                        "dur": max(1, commit - fetch),
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
            else:
                out.append(
                    {
                        "name": EVENT_NAMES[kind],
                        "cat": "event",
                        "ph": "i",
                        "s": "t",  # thread-scoped instant
                        "ts": cycle,
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
        payload = {"traceEvents": out, "displayTimeUnit": "ms"}
        path.write_text(json.dumps(payload))
        return path
