"""The instrumentation hook surface threaded through the simulator.

One :class:`Probe` instance per observed engine bundles the optional
:class:`~repro.obs.tracer.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` and exposes one method per
instrumentation site.  Components (memory hierarchy, prefetcher, branch
predictor, value predictors) hold an ``obs`` attribute that defaults to
:data:`NULL_PROBE` — the null object whose ``enabled`` is ``False`` —
so every hook site compiles down to a single attribute test when
observability is off.  That test is the entire disabled-path cost; the
throughput benchmark (``benchmarks/bench_throughput.py --assert-within``)
holds it to the noise floor.

Timestamps: most hooks receive an explicit cycle because the caller has
one in hand.  Sites buried inside predictors (which are deliberately
clock-free) use :attr:`Probe.now`/:attr:`Probe.tid`, which the engine
refreshes per step while a probe is attached.
"""

from __future__ import annotations

from repro.obs.events import EventKind
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

_INSTRUCTION = int(EventKind.INSTRUCTION)
_LOAD_MISS = int(EventKind.LOAD_MISS)
_PREDICT = int(EventKind.PREDICT)
_PRED_VERIFIED = int(EventKind.PRED_VERIFIED)
_PRED_SQUASH = int(EventKind.PRED_SQUASH)
_SPAWN = int(EventKind.SPAWN)
_JOIN = int(EventKind.JOIN)
_KILL = int(EventKind.KILL)
_SB_STALL = int(EventKind.SB_STALL)
_PREFETCH_ISSUE = int(EventKind.PREFETCH_ISSUE)
_PREFETCH_HIT = int(EventKind.PREFETCH_HIT)
_BRANCH_MISPREDICT = int(EventKind.BRANCH_MISPREDICT)

#: bumped when the layout of ``SimStats.extended`` changes shape
EXTENDED_SCHEMA = 1


class NullProbe:
    """Disabled observability: ``enabled`` is False, every hook a no-op.

    Components may either guard with ``if self.obs.enabled:`` (the fast
    path used on hot call sites) or call hooks unconditionally on cold
    paths — both are safe against the null object.
    """

    enabled = False
    now = 0
    tid = 0

    def __getattr__(self, name: str):
        # any hook resolves to a shared no-op; keeps the null object in
        # lockstep with the Probe surface without listing every method
        if name.startswith("_"):
            raise AttributeError(name)
        return _noop


def _noop(*_args, **_kwargs) -> None:
    return None


NULL_PROBE = NullProbe()


class Probe:
    """Live observability: fans hook calls out to tracer and/or metrics."""

    enabled = True

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if tracer is None and metrics is None:
            raise ValueError("an enabled Probe needs a tracer or a metrics registry")
        self.tracer = tracer
        self.metrics = metrics
        #: current simulated cycle / context order, engine-refreshed each
        #: step; clock-free components stamp their events with these
        self.now = 0
        self.tid = 0

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def register_thread(
        self, tid: int, name: str, parent: int | None = None, cycle: int = 0
    ) -> None:
        if self.tracer is not None:
            self.tracer.register_thread(tid, name, parent, cycle)

    def step(
        self,
        tid: int,
        pc: int,
        op_name: str,
        t_fetch: int,
        t_issue: int,
        t_commit: int,
        rob_len: int,
        iq_len: int,
        sb_total: int,
    ) -> None:
        """Per-instruction hook: pipeline transit event + occupancies."""
        metrics = self.metrics
        if metrics is not None:
            metrics.histogram("rob_occupancy").observe(t_fetch, rob_len)
            metrics.histogram("iq_occupancy").observe(t_fetch, iq_len)
            metrics.histogram("store_buffer_occupancy").observe(t_fetch, sb_total)
        if self.tracer is not None:
            self.tracer.emit(
                t_fetch,
                _INSTRUCTION,
                tid,
                {
                    "pc": pc,
                    "op": op_name,
                    "fetch": t_fetch,
                    "issue": t_issue,
                    "commit": t_commit,
                },
            )

    def predict(self, cycle: int, tid: int, pc: int, kind: str, value: int) -> None:
        if self.metrics is not None:
            self.metrics.count(f"predict_{kind}")
        if self.tracer is not None:
            self.tracer.emit(
                cycle, _PREDICT, tid, {"pc": pc, "kind": kind, "value": value}
            )

    def stvp_outcome(self, cycle: int, tid: int, pc: int, correct: bool) -> None:
        if self.tracer is not None:
            kind = _PRED_VERIFIED if correct else _PRED_SQUASH
            self.tracer.emit(cycle, kind, tid, {"pc": pc, "kind": "stvp"})

    def spawn(
        self, cycle: int, parent_tid: int, child_tid: int, pc: int, value: int
    ) -> None:
        if self.tracer is not None:
            self.tracer.register_thread(
                child_tid, f"ctx{child_tid}", parent_tid, cycle
            )
            self.tracer.emit(
                cycle, _SPAWN, parent_tid,
                {"child": child_tid, "pc": pc, "value": value},
            )

    def join(
        self,
        cycle: int,
        winner_tid: int,
        parent_tid: int,
        pc: int,
        distance_instructions: int,
        distance_cycles: int,
    ) -> None:
        """A prediction confirmed: the winner absorbed its parent."""
        metrics = self.metrics
        if metrics is not None:
            metrics.histogram("speculation_distance").add(distance_instructions)
            metrics.histogram("speculation_cycles").add(distance_cycles)
        if self.tracer is not None:
            self.tracer.emit(
                cycle, _PRED_VERIFIED, parent_tid, {"pc": pc, "kind": "mtvp"}
            )
            self.tracer.emit(
                cycle, _JOIN, winner_tid,
                {"parent": parent_tid, "instructions": distance_instructions},
            )

    def squash(self, cycle: int, tid: int, pc: int) -> None:
        """A threaded prediction resolved wrong (children die)."""
        if self.tracer is not None:
            self.tracer.emit(cycle, _PRED_SQUASH, tid, {"pc": pc, "kind": "mtvp"})

    def kill(self, cycle: int, tid: int, wasted: int) -> None:
        if self.metrics is not None:
            self.metrics.count("kills_observed")
        if self.tracer is not None:
            self.tracer.emit(cycle, _KILL, tid, {"wasted": wasted})

    def sb_stall(self, cycle: int, tid: int, pc: int) -> None:
        if self.metrics is not None:
            self.metrics.count("sb_stall_events")
        if self.tracer is not None:
            self.tracer.emit(cycle, _SB_STALL, tid, {"pc": pc})

    def context_count(self, cycle: int, alive: int) -> None:
        if self.metrics is not None:
            self.metrics.histogram("context_count").observe(cycle, alive)

    # ------------------------------------------------------------------
    # memory-stack hooks (called from hierarchy.py / prefetcher.py)
    # ------------------------------------------------------------------
    def load_level(
        self,
        now: int,
        pc: int,
        addr: int,
        level_name: str,
        complete: int,
        l1_occupancy: int,
        l2_occupancy: int,
        l3_occupancy: int,
    ) -> None:
        """A demand load satisfied below the L1 (the misses that matter)."""
        metrics = self.metrics
        if metrics is not None:
            metrics.count(f"load_{level_name}")
            metrics.histogram("l1_residency").observe(now, l1_occupancy)
            metrics.histogram("l2_residency").observe(now, l2_occupancy)
            metrics.histogram("l3_residency").observe(now, l3_occupancy)
        if self.tracer is not None:
            self.tracer.emit(
                now, _LOAD_MISS, self.tid,
                {"pc": pc, "addr": addr, "level": level_name, "complete": complete},
            )

    def prefetch_issue(self, now: int, tag: int, lines: int) -> None:
        if self.metrics is not None:
            self.metrics.count("prefetch_lines_issued", lines)
        if self.tracer is not None:
            self.tracer.emit(
                now, _PREFETCH_ISSUE, self.tid, {"tag": tag, "lines": lines}
            )

    def prefetch_hit(self, now: int, line: int) -> None:
        if self.metrics is not None:
            self.metrics.count("prefetch_hits_observed")
        if self.tracer is not None:
            self.tracer.emit(now, _PREFETCH_HIT, self.tid, {"line": line})

    # ------------------------------------------------------------------
    # predictor hooks (clock-free callers; stamped with Probe.now)
    # ------------------------------------------------------------------
    def branch_mispredict(self, pc: int) -> None:
        if self.metrics is not None:
            self.metrics.count("branch_mispredicts_observed")
        if self.tracer is not None:
            self.tracer.emit(self.now, _BRANCH_MISPREDICT, self.tid, {"pc": pc})

    def vp_outcome(self, correct: bool) -> None:
        if self.metrics is not None:
            self.metrics.count("vp_verified" if correct else "vp_squashed")

    # ------------------------------------------------------------------
    def finalize(self, finish_time: int) -> dict:
        """Close open intervals; return the ``SimStats.extended`` payload."""
        out: dict = {"schema": EXTENDED_SCHEMA}
        if self.metrics is not None:
            self.metrics.close(finish_time)
            out["metrics"] = self.metrics.to_dict()
        if self.tracer is not None:
            out["trace"] = self.tracer.summary()
        return out
