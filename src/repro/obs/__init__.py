"""Cycle-level observability: structured tracing and occupancy metrics.

The paper's analyses (prefetcher mistraining in §5.1, store-buffer
tail-off in §5.3, the spawn-latency knees of Figure 2) all hinge on
*internal* pipeline state — spawn trees, queue occupancy, speculation
depth — that the headline :class:`~repro.core.SimStats` counters cannot
show.  This package is the measurement substrate for those questions:

* :class:`Tracer` — a bounded ring buffer of cycle-stamped structured
  events (see :mod:`repro.obs.events` for the taxonomy) with JSONL and
  Chrome ``chrome://tracing`` trace-event exporters.  Spawned contexts
  render as separate thread lanes, so an MTVP spawn chain is visually
  inspectable.
* :class:`MetricsRegistry` — counters and cycle-weighted histograms
  (ROB/IQ/store-buffer occupancy, speculation distance, live context
  count, per-level cache residency) aggregated into
  ``SimStats.extended`` at the end of a run.
* :class:`Probe` — the single object the engine threads through the
  memory stack, branch predictor and value predictors.  Its disabled
  stand-in, :data:`NULL_PROBE`, is a null object whose ``enabled``
  attribute is ``False`` and whose hooks are no-ops, so every
  instrumentation site costs one attribute test when observability is
  off (the overhead contract in DESIGN.md §5d, guarded by the
  throughput benchmark).
"""

from repro.obs.events import EVENT_NAMES, EventKind
from repro.obs.metrics import CycleWeightedHistogram, MetricsRegistry, format_metrics
from repro.obs.probe import NULL_PROBE, NullProbe, Probe
from repro.obs.tracer import Tracer

__all__ = [
    "CycleWeightedHistogram",
    "EVENT_NAMES",
    "EventKind",
    "MetricsRegistry",
    "NULL_PROBE",
    "NullProbe",
    "Probe",
    "Tracer",
    "format_metrics",
]
