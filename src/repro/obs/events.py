"""The trace-event taxonomy (DESIGN.md §5d).

Every event is a plain ``(cycle, kind, tid, args)`` tuple:

* ``cycle`` — simulated cycle the event is stamped with,
* ``kind`` — an :class:`EventKind` member (stored as its int value),
* ``tid`` — the *spawn order* of the hardware context involved; spawn
  order is stable for the lifetime of a context (slot numbers are
  recycled, orders are not), so it doubles as the thread id in exports,
* ``args`` — a small dict of event-specific fields, or ``None``.

Tuples, not objects: the tracer may hold tens of thousands of events and
the emitting side runs inside the simulation loop when tracing is on.
"""

from __future__ import annotations

import enum


class EventKind(enum.IntEnum):
    """What happened.  Values are stable; exports use :data:`EVENT_NAMES`."""

    #: one instruction's pipeline transit; args carry the ``fetch``,
    #: ``issue`` and ``commit`` (retire) timestamps plus ``pc`` and ``op``
    INSTRUCTION = 0
    #: a load satisfied below the L1; args: ``pc``, ``addr``, ``level``,
    #: ``complete`` (fill completion cycle)
    LOAD_MISS = 1
    #: a value prediction was acted on; args: ``pc``, ``kind``
    #: ("stvp"/"mtvp"/"spawn_only"), ``value`` (predicted)
    PREDICT = 2
    #: a used prediction resolved correct; args: ``pc`` (may be absent
    #: when emitted from inside a predictor)
    PRED_VERIFIED = 3
    #: a used prediction resolved wrong and squashed dependents/threads
    PRED_SQUASH = 4
    #: a speculative context was created; args: ``child`` (tid), ``pc``,
    #: ``value`` (the followed prediction)
    SPAWN = 5
    #: a confirmed child absorbed its retiring parent; args: ``parent``
    JOIN = 6
    #: a context (and its subtree root) was killed; args: ``wasted``
    KILL = 7
    #: a speculative store stalled on a full store buffer; args: ``pc``
    SB_STALL = 8
    #: a stream buffer issued prefetches; args: ``lines`` (how many),
    #: ``tag`` (stream tag)
    PREFETCH_ISSUE = 9
    #: a demand load hit a stream buffer; args: ``line``
    PREFETCH_HIT = 10
    #: the branch predictor mispredicted; args: ``pc``
    BRANCH_MISPREDICT = 11


#: export names, indexable by ``EventKind`` value
EVENT_NAMES = tuple(k.name.lower() for k in EventKind)
