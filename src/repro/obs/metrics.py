"""Counters and cycle-weighted histograms for pipeline occupancy metrics.

A timestamp-based simulator has no per-cycle loop to sample from, so
occupancy metrics are *interval-weighted*: each :meth:`observe` closes the
interval since the previous observation and charges its length (in
cycles) to the value that held during it.  The resulting distribution
answers "what fraction of time did the ROB hold ~N entries", which is the
quantity the paper's occupancy arguments (store-buffer tail-off, context
pressure) are actually about — a per-event unweighted mean would
over-count bursts of short intervals.
"""

from __future__ import annotations


def _bucket(value: int) -> int:
    """Power-of-two bucket upper bound: 0, 1, 2, 4, 8, ... .

    Occupancies span 0..8192 across configurations; power-of-two buckets
    keep every histogram at ~15 keys with deterministic labels.
    """
    if value <= 0:
        return 0
    return 1 << (value - 1).bit_length()


class CycleWeightedHistogram:
    """A value-over-time distribution with cycle weights.

    Two feeding styles, freely mixable:

    * :meth:`observe` — time-series style; the histogram tracks the last
      observed value and weights it by elapsed cycles at the next
      observation (out-of-order timestamps contribute zero weight rather
      than corrupting the distribution — contexts run on slightly skewed
      local clocks).
    * :meth:`add` — episode style; directly account ``value`` with an
      explicit ``weight`` (e.g. one confirmed-speculation episode).
    """

    __slots__ = (
        "_last_time",
        "_last_value",
        "total_weight",
        "weighted_sum",
        "min_value",
        "max_value",
        "buckets",
    )

    def __init__(self) -> None:
        self._last_time: int | None = None
        self._last_value: int | None = None
        self.total_weight = 0
        self.weighted_sum = 0
        self.min_value: int | None = None
        self.max_value: int | None = None
        self.buckets: dict[int, int] = {}

    # ------------------------------------------------------------------
    def add(self, value: int, weight: int = 1) -> None:
        """Account ``value`` for ``weight`` cycles (or episodes)."""
        if weight <= 0:
            return
        self.total_weight += weight
        self.weighted_sum += value * weight
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        key = _bucket(value)
        self.buckets[key] = self.buckets.get(key, 0) + weight

    def observe(self, now: int, value: int) -> None:
        """Record that the tracked quantity is ``value`` as of ``now``."""
        last_t = self._last_time
        if last_t is not None and now > last_t:
            self.add(self._last_value, now - last_t)
            self._last_time = now
        elif last_t is None:
            self._last_time = now
        self._last_value = value

    def close(self, now: int) -> None:
        """Flush the open interval at the end of a run."""
        if self._last_time is not None and now > self._last_time:
            self.add(self._last_value, now - self._last_time)
            self._last_time = now

    # ------------------------------------------------------------------
    @property
    def weighted_mean(self) -> float:
        """Cycle-weighted average of the tracked value."""
        if not self.total_weight:
            return 0.0
        return self.weighted_sum / self.total_weight

    def to_dict(self) -> dict:
        """Canonical JSON form (bucket keys stringified, sorted)."""
        return {
            "weighted_mean": round(self.weighted_mean, 4),
            "min": self.min_value if self.min_value is not None else 0,
            "max": self.max_value if self.max_value is not None else 0,
            "total_weight": self.total_weight,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Named counters and histograms, aggregated into ``SimStats.extended``.

    The registry is create-on-touch: instrumentation sites ask for a
    histogram or bump a counter by name, and only names actually exercised
    by the run appear in the output — a baseline run carries no spawn
    metrics, for example.
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, CycleWeightedHistogram] = {}

    def count(self, name: str, delta: int = 1) -> None:
        """Increment counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def histogram(self, name: str) -> CycleWeightedHistogram:
        """The histogram registered under ``name`` (created on first use)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = CycleWeightedHistogram()
        return hist

    def close(self, now: int) -> None:
        """Flush every histogram's open interval at end of run."""
        for hist in self.histograms.values():
            hist.close(now)

    def to_dict(self) -> dict:
        """Canonical JSON form, keys sorted for stable digests."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }


def format_metrics(extended: dict) -> str:
    """Render ``SimStats.extended`` as the ``repro report`` summary table.

    Accepts the dict produced by :meth:`Probe.finalize` (schema-tagged,
    with ``metrics`` and optional ``trace`` sections) and degrades
    gracefully on partial input.
    """
    metrics = extended.get("metrics", {})
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    lines: list[str] = []
    if histograms:
        lines.append("occupancy / speculation (cycle-weighted)")
        lines.append(f"{'metric':<26s} {'mean':>9s} {'min':>6s} {'max':>6s}  busiest buckets")
        for name, h in histograms.items():
            buckets = sorted(
                h.get("buckets", {}).items(), key=lambda kv: -kv[1]
            )[:3]
            total = h.get("total_weight", 0) or 1
            tops = ", ".join(
                f"<={k}: {100.0 * v / total:.0f}%" for k, v in buckets
            )
            lines.append(
                f"{name:<26s} {h.get('weighted_mean', 0.0):>9.2f} "
                f"{h.get('min', 0):>6d} {h.get('max', 0):>6d}  {tops}"
            )
    if counters:
        lines.append("")
        lines.append("event counters")
        for name, value in counters.items():
            lines.append(f"{name:<26s} {value:>9d}")
    trace = extended.get("trace")
    if trace:
        lines.append("")
        lines.append(
            f"trace: {trace.get('retained', 0)} events retained "
            f"({trace.get('dropped', 0)} dropped) across "
            f"{trace.get('threads', 0)} context lanes"
        )
    if not lines:
        return "no extended metrics recorded (run with observability enabled)"
    return "\n".join(lines)
