"""The asyncio HTTP/JSON front end of the campaign server.

Hand-rolled HTTP/1.1 on :func:`asyncio.start_server` — no frameworks, no
``http.server`` — because the surface is tiny and the interesting part
is the *shape*: a single-threaded async event loop parses requests and
serves reads, while all simulation work happens on the
:class:`~repro.serve.jobs.JobManager` worker threads behind a bounded
queue.  Every response is JSON except the NDJSON event stream; every
connection is ``Connection: close`` (submission latency is dominated by
simulation anyway, and it keeps the parser honest).

Endpoints:

* ``POST /runs``, ``POST /sweeps``, ``POST /searches`` — submit a
  normalized payload (see :mod:`repro.serve.api`), get ``{"job": <id>,
  "deduped": bool, ...}``; 202 for a new job, 200 for a coalesced one,
  400 malformed, 503 full.
* ``GET /jobs`` — every job, oldest first.
* ``GET /jobs/<id>`` — status snapshot plus live partial results
  (per-status row counts out of the sweep's ResultStore).
* ``GET /jobs/<id>/events[?from=N&follow=0|1]`` — the job's event log
  as NDJSON; ``follow=1`` (default) streams until the job finishes,
  ``follow=0`` returns what exists and closes.
* ``GET /jobs/<id>/report[?format=markdown|json]`` — the finished job's
  report (sweeps: the exact ``sweep report`` renderings).
* ``GET /stats`` — request totals, job counts, dedup count, shared
  cache/checkpoint counters.
* ``GET /healthz`` — liveness.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.parse

from repro.serve.api import CampaignRunner, ServiceError
from repro.serve.jobs import JobManager, QueueFullError

MAX_BODY_BYTES = 8 << 20
MAX_LINE_BYTES = 64 << 10
#: how long one streaming poll of a job's EventLog blocks a pool thread
STREAM_POLL_SECONDS = 0.5

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _head(status: int, content_type: str, length: int | None = None) -> bytes:
    reason = _REASONS.get(status, "?")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Cache-Control: no-store",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


class CampaignServer:
    """The long-running service: HTTP front, job queue, shared stores.

    Args:
        host/port: Bind address; port 0 picks an ephemeral port (read
            ``server.port`` after :meth:`start`).
        runner: A :class:`~repro.serve.api.CampaignRunner`; built with
            ``runner_options`` when omitted.
        workers: Job worker threads (each may itself fan a sweep chunk
            out over the runner's execution policy).  Not to be confused
            with the ``workers`` *dispatch* count — that lives on the
            runner's :class:`~repro.harness.policy.ExecutionPolicy`.
        queue_size: Pending-job bound; submissions beyond it get 503.
        runner_options: Keyword arguments for the default runner
            (``state_dir``, ``cache``, ``checkpoints``, ``policy``, ...).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        runner: CampaignRunner | None = None,
        workers: int = 2,
        queue_size: int = 64,
        **runner_options,
    ) -> None:
        self.host = host
        self.port = port
        self.runner = runner if runner is not None else CampaignRunner(**runner_options)
        self.manager = JobManager(self.runner, workers=workers, queue_size=queue_size)
        self.requests = 0
        self.started_at: float | None = None
        self._server: asyncio.AbstractServer | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the worker pool; idempotent."""
        if self._server is not None:
            return
        self.manager.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def serve_forever(self) -> None:
        await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.to_thread(self.manager.shutdown)

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await reader.readline()
                if not request:
                    return
                parts = request.decode("latin-1").split()
                if len(parts) != 3:
                    raise _HttpError(400, "malformed request line")
                method, target, _version = parts
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    content_length = int(headers.get("content-length", 0))
                except ValueError:
                    raise _HttpError(400, "bad Content-Length") from None
                if content_length > MAX_BODY_BYTES:
                    raise _HttpError(413, "request body too large")
                body = (
                    await reader.readexactly(content_length)
                    if content_length else b""
                )
                path, _, query = target.partition("?")
                await self._route(
                    method,
                    urllib.parse.unquote(path),
                    urllib.parse.parse_qs(query),
                    body,
                    writer,
                )
            except _HttpError as err:
                await self._send_json(
                    writer, err.status, {"error": err.message}
                )
            except ServiceError as err:
                await self._send_json(writer, err.status, {"error": str(err)})
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                pass  # client hung up / oversized line: nothing to answer
            except (ConnectionError, BrokenPipeError):
                pass
            except Exception as exc:  # noqa: BLE001 — last-resort 500
                await self._send_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _route(self, method, path, params, body, writer) -> None:
        self.requests += 1
        if path in ("/", "/healthz"):
            if method != "GET":
                raise _HttpError(405, "use GET")
            return await self._send_json(
                writer, 200, {"ok": True, "service": "repro-serve"}
            )
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "use GET")
            return await self._send_json(writer, 200, await asyncio.to_thread(self.stats))
        if path in ("/runs", "/sweeps", "/searches"):
            if method != "POST":
                raise _HttpError(405, "use POST")
            kind = {"/runs": "run", "/sweeps": "sweep", "/searches": "search"}
            return await self._submit(kind[path], body, writer)
        if path == "/jobs":
            if method != "GET":
                raise _HttpError(405, "use GET")
            return await self._send_json(
                writer, 200,
                {"jobs": [job.snapshot() for job in self.manager.jobs()]},
            )
        segments = [s for s in path.split("/") if s]
        if segments and segments[0] == "jobs" and len(segments) in (2, 3):
            if method != "GET":
                raise _HttpError(405, "use GET")
            job = self.manager.get(segments[1])
            if job is None:
                raise _HttpError(404, f"no such job {segments[1]!r}")
            if len(segments) == 2:
                snapshot = job.snapshot()
                partial = await asyncio.to_thread(self.runner.partial, job)
                if partial is not None:
                    snapshot["partial"] = partial
                return await self._send_json(writer, 200, snapshot)
            if segments[2] == "events":
                return await self._stream_events(job, params, writer)
            if segments[2] == "report":
                fmt = params.get("format", ["markdown"])[0]
                rendered = await asyncio.to_thread(self.runner.report, job, fmt)
                if isinstance(rendered, str):
                    payload = rendered.encode()
                    writer.write(
                        _head(200, "text/markdown; charset=utf-8", len(payload))
                    )
                    writer.write(payload)
                    await writer.drain()
                    return
                return await self._send_json(writer, 200, rendered)
        raise _HttpError(404, f"no route for {method} {path}")

    async def _submit(self, kind: str, body: bytes, writer) -> None:
        try:
            payload = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
        normalized = await asyncio.to_thread(self.runner.validate, kind, payload)
        try:
            job, deduped = self.manager.submit(kind, normalized)
        except QueueFullError as exc:
            raise _HttpError(503, str(exc)) from None
        await self._send_json(
            writer,
            200 if deduped else 202,
            {
                "job": job.id,
                "kind": job.kind,
                "status": job.status,
                "deduped": deduped,
                "submissions": job.submissions,
            },
        )

    async def _stream_events(self, job, params, writer) -> None:
        follow = params.get("follow", ["1"])[0] not in ("0", "false", "no")
        try:
            cursor = int(params.get("from", ["0"])[0])
        except ValueError:
            raise _HttpError(400, "'from' must be an integer sequence number") from None
        writer.write(_head(200, "application/x-ndjson"))
        await writer.drain()
        while True:
            if follow:
                events, closed = await asyncio.to_thread(
                    job.events.wait, cursor, STREAM_POLL_SECONDS
                )
            else:
                events, closed = job.events.after(cursor)
            for event in events:
                writer.write(
                    (json.dumps(event, sort_keys=True, default=str) + "\n").encode()
                )
                cursor = event["seq"] + 1
            await writer.drain()
            if not follow or (closed and not events):
                return

    async def _send_json(self, writer, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True, default=str).encode()
        writer.write(_head(status, "application/json", len(body)))
        writer.write(body)
        await writer.drain()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        out = {
            "requests": self.requests,
            "uptime_seconds": (
                round(time.time() - self.started_at, 3)
                if self.started_at else 0.0
            ),
            "jobs": {
                **self.manager.counts(),
                "deduped": self.manager.deduped,
                "executed": self.manager.executed,
            },
            "queue": {
                "depth": self.manager._queue.qsize(),
                "capacity": self.manager._queue.maxsize,
                "workers": self.manager.workers,
            },
            "searches": self._search_stats(),
        }
        out.update(self.runner.stats())
        return out

    def _search_stats(self) -> list[dict]:
        """One row per search campaign this server has seen, oldest first.

        Surfaces the adaptive-search jobs in ``/stats`` so operators can
        see at a glance which campaigns ran, where their result databases
        live, their live per-status row counts, and (once finished) the
        winning design point.
        """
        rows = []
        for job in self.manager.jobs():
            if job.kind != "search":
                continue
            row: dict = {
                "id": job.id,
                "status": job.status,
                "name": (
                    job.data.get("search")
                    or job.payload.get("spec", {}).get("name")
                ),
            }
            db = job.data.get("db")
            if db:
                row["db"] = db
            counts = self.runner.partial(job)
            if counts:
                row["rows"] = counts
            if job.status == "done" and isinstance(job.result, dict):
                row["winner"] = job.result.get("winner")
                row["complete"] = job.result.get("complete")
            rows.append(row)
        return rows


class BackgroundServer:
    """Run a :class:`CampaignServer` on its own thread + event loop.

    The embedding story for tests, benchmarks and notebooks::

        with BackgroundServer(CampaignServer(state_dir=...)) as bg:
            client = CampaignClient(bg.url)
            ...

    ``start()`` blocks until the socket is bound (so ``url`` is final) and
    re-raises any bind failure in the caller's thread.
    """

    def __init__(self, server: CampaignServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def url(self) -> str:
        return self.server.url

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("campaign server failed to start within 30s")
        return self

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 — reported to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.server.aclose()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
