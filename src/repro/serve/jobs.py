"""Job model, bounded queue and worker pool for the campaign server.

A :class:`Job` is one submitted campaign unit — a single run or a whole
sweep — identified two ways: a short random ``id`` (the client-facing
handle) and a content ``digest`` over its *normalized* payload.  The
digest is the dedup key: submitting a payload whose digest already maps
to a queued, running or completed job returns **that** job instead of
enqueueing a new one, which is how a million identical requests cost one
simulation (the shared :class:`~repro.harness.cache.ResultCache` then
covers the subtler case of *different* jobs sharing individual
``(point, seed)`` tasks).  Only ``failed`` jobs are not dedup targets —
resubmission after a failure is a retry.

The :class:`JobManager` owns a bounded :class:`queue.Queue` and a small
pool of daemon worker threads; when the queue is full, submission fails
fast with :class:`QueueFullError` (the HTTP layer maps it to 503) rather
than buffering unboundedly.  Execution itself is delegated to a *runner*
callable — :class:`repro.serve.api.CampaignRunner` in production — so
the queueing machinery stays independently testable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import queue
import threading
import time
import uuid
from typing import Callable

from repro.serve.events import EventLog

#: job lifecycle states, in order
JOB_STATUSES = ("queued", "running", "done", "failed")


class QueueFullError(RuntimeError):
    """The server's job queue is at capacity; resubmit later."""


def job_digest(kind: str, payload: dict) -> str:
    """Content hash identifying a submission (kind + normalized payload)."""
    blob = json.dumps(
        {"kind": kind, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclasses.dataclass
class Job:
    """One submitted unit of work and everything observable about it."""

    id: str
    kind: str                     #: ``"run"`` or ``"sweep"``
    payload: dict                 #: normalized submission payload
    digest: str
    created: float
    status: str = "queued"
    started: float | None = None
    finished: float | None = None
    result: dict | None = None
    error: str | None = None
    submissions: int = 1          #: total submits coalesced into this job
    events: EventLog = dataclasses.field(default_factory=EventLog)
    #: runner scratch space (sweep db path etc.); not exported verbatim
    data: dict = dataclasses.field(default_factory=dict)

    def snapshot(self) -> dict:
        """JSON-safe public view served by ``GET /jobs/<id>``."""
        out = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "digest": self.digest,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "submissions": self.submissions,
            "events": self.events._next,  # total emitted (ring may hold fewer)
            "payload": self.payload,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


class JobManager:
    """Bounded job queue + worker pool (see the module docstring)."""

    def __init__(
        self,
        runner: Callable[[Job], dict | None],
        workers: int = 2,
        queue_size: int = 64,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self._runner = runner
        self._jobs: dict[str, Job] = {}
        self._by_digest: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._queue: queue.Queue[Job | None] = queue.Queue(maxsize=queue_size)
        self._threads: list[threading.Thread] = []
        self.workers = workers
        self.deduped = 0          #: submissions answered by an existing job
        self.executed = 0         #: jobs a worker actually ran

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up the worker pool; idempotent."""
        with self._lock:
            if self._threads:
                return
            self._threads = [
                threading.Thread(
                    target=self._work, name=f"repro-serve-worker-{i}", daemon=True
                )
                for i in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers."""
        with self._lock:
            threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(None)
        if wait:
            for thread in threads:
                thread.join()

    # ------------------------------------------------------------------
    def submit(self, kind: str, payload: dict) -> tuple[Job, bool]:
        """Enqueue a job, or coalesce onto an identical existing one.

        Returns ``(job, deduped)``.  Raises :class:`QueueFullError` when
        the job is new but the queue is at capacity.
        """
        digest = job_digest(kind, payload)
        with self._lock:
            existing = self._by_digest.get(digest)
            if existing is not None and existing.status != "failed":
                existing.submissions += 1
                self.deduped += 1
                existing.events.emit(
                    "dedup", job=existing.id, submissions=existing.submissions
                )
                return existing, True
            job = Job(
                id=uuid.uuid4().hex[:12],
                kind=kind,
                payload=payload,
                digest=digest,
                created=time.time(),
            )
            self._jobs[job.id] = job
            self._by_digest[digest] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
                if self._by_digest.get(digest) is job:
                    if existing is not None:  # restore the failed ancestor
                        self._by_digest[digest] = existing
                    else:
                        del self._by_digest[digest]
            raise QueueFullError(
                f"job queue is full ({self._queue.maxsize} pending)"
            ) from None
        job.events.emit("queued", job=job.id, job_kind=kind)
        return job, False

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created)

    def counts(self) -> dict[str, int]:
        out = {status: 0 for status in JOB_STATUSES}
        for job in self.jobs():
            out[job.status] += 1
        return out

    # ------------------------------------------------------------------
    def _work(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.status = "running"
            job.started = time.time()
            job.events.emit("started", job=job.id)
            try:
                job.result = self._runner(job)
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = "failed"
                job.finished = time.time()
                job.events.emit("failed", job=job.id, error=job.error)
            else:
                job.status = "done"
                job.finished = time.time()
                job.events.emit(
                    "done", job=job.id,
                    wall_seconds=round(job.finished - job.started, 6),
                )
            finally:
                self.executed += 1
                job.events.close()
