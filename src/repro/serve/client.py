"""Tiny stdlib client for the campaign server.

Wraps :mod:`urllib.request` so scripts, tests and the CLI ``client``
subcommand can talk to a :class:`~repro.serve.app.CampaignServer`
without any HTTP plumbing of their own::

    client = CampaignClient("http://127.0.0.1:8712")
    ack = client.submit_sweep({"spec": {...}})
    job = client.wait(ack["job"])
    print(client.report(ack["job"]))

Server-side rejections (400/404/409/503) surface as
:class:`ClientError` carrying the HTTP status and the server's JSON
``error`` message; transport failures keep their stdlib types.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Iterator


class ClientError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class CampaignClient:
    """A connection-per-request client for one campaign server."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _open(self, path: str, body: dict | None = None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as err:
            detail = err.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ClientError(err.code, detail) from None

    def _json(self, path: str, body: dict | None = None) -> dict:
        with self._open(path, body) as response:
            return json.loads(response.read().decode())

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._json("/healthz")

    def stats(self) -> dict:
        return self._json("/stats")

    def submit_run(self, payload: dict) -> dict:
        """POST /runs; returns the submission ack (``job``, ``deduped``...)."""
        return self._json("/runs", payload)

    def submit_sweep(self, payload: dict) -> dict:
        """POST /sweeps; returns the submission ack."""
        return self._json("/sweeps", payload)

    def submit_search(self, payload: dict) -> dict:
        """POST /searches; returns the submission ack."""
        return self._json("/searches", payload)

    def jobs(self) -> list[dict]:
        return self._json("/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """Status snapshot (plus live ``partial`` counts for sweeps)."""
        return self._json(f"/jobs/{job_id}")

    def events(
        self, job_id: str, from_seq: int = 0, follow: bool = True
    ) -> Iterator[dict]:
        """Yield the job's NDJSON events; with ``follow`` blocks until done."""
        query = urllib.parse.urlencode(
            {"from": from_seq, "follow": int(follow)}
        )
        with self._open(f"/jobs/{job_id}/events?{query}") as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode())

    def report(self, job_id: str, fmt: str = "markdown") -> str | dict:
        """The finished job's report: markdown text or a JSON dict."""
        with self._open(
            f"/jobs/{job_id}/report?format={urllib.parse.quote(fmt)}"
        ) as response:
            body = response.read().decode()
        return body if fmt == "markdown" else json.loads(body)

    def wait(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.25
    ) -> dict:
        """Poll until the job leaves the queue/run states; returns its snapshot.

        Raises :class:`TimeoutError` if it is still unfinished after
        ``timeout`` seconds, and :class:`ClientError` (as usual) if the
        job id is unknown.
        """
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["status"] in ("done", "failed"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['status']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)
