"""Payload validation and job execution over the existing harness.

This module is the seam between the HTTP surface and the simulation
machinery: every service job — however it arrived — executes through the
same :class:`~repro.harness.Session` / :func:`~repro.sweep.run_sweep`
code paths the CLI and the Python API use, against **one** shared
:class:`~repro.harness.cache.ResultCache` and one shared
:class:`~repro.harness.checkpoint.CheckpointStore`.  That sharing is the
point of the service: identical submissions dedupe to one job
(:mod:`repro.serve.jobs`), overlapping *different* submissions still
share every common ``(point, seed)`` simulation through the cache, and
warmed campaigns share architectural checkpoints.

Payloads are *normalized* before they reach the job digest (defaults
applied, keys validated), so ``{"workload": "mcf"}`` and
``{"workload": "mcf", "seed": 0}`` coalesce onto the same job.

Run payload::

    {"workload": "mcf",              # required, a known workload
     "params": {"machine": "mtvp", "threads": 8,
                "predictor": "wang-franklin", ...},   # sweep-recipe keys
     "length": 16000, "seed": 0,
     "warmup": 0, "sample": null,
     "observe": false, "trace": false}

Sweep payload::

    {"spec": { ... SweepSpec.to_dict() / TOML-equivalent JSON ... },
     "max_points": null, "retries": null}

Search payload::

    {"spec": { ... SearchSpec.to_dict() / TOML-equivalent JSON ... },
     "max_points": null, "retries": null}
"""

from __future__ import annotations

import dataclasses
import tempfile
from pathlib import Path

from repro.harness.cache import ResultCache, task_key
from repro.harness.checkpoint import CheckpointStore, resolve_checkpoints
from repro.harness.export import result_to_dict
from repro.harness.policy import UNSET, ExecutionPolicy, resolve_cache
from repro.harness.runner import default_length
from repro.harness.session import Session
from repro.search.controller import run_search
from repro.search.spec import SearchSpec, SearchSpecError
from repro.serve.jobs import Job
from repro.sweep.execute import run_sweep
from repro.sweep.spec import SweepSpec, SweepSpecError, run_spec_for, _check_keys
from repro.sweep.store import ResultStore
from repro.workloads import get_workload

#: how many raw tracer events a traced run job forwards onto its event
#: stream (the full trace is summarized in the job result either way)
TRACE_EVENT_LIMIT = 1000


class ServiceError(ValueError):
    """A submission is invalid; ``status`` is the HTTP code to answer with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


_RUN_KEYS = frozenset(
    ("workload", "params", "length", "seed", "warmup", "sample",
     "observe", "trace")
)
_SWEEP_KEYS = frozenset(("spec", "max_points", "retries"))
_SEARCH_KEYS = frozenset(("spec", "max_points", "retries"))


class CampaignRunner:
    """Executes service jobs through the harness, over shared stores.

    Args:
        state_dir: Directory for service-owned state (sweep result
            databases, and the default cache/checkpoint stores).  ``None``
            creates a private temporary directory that lives as long as
            the runner.
        cache: Shared result cache (see
            :func:`~repro.harness.parallel.resolve_cache`); when it
            resolves to nothing, a cache is created under ``state_dir`` —
            the service without a cache would re-simulate identical work,
            defeating its purpose.
        checkpoints: Shared warmup-checkpoint store (same resolution
            rules; defaults into ``state_dir`` too).
        policy: An :class:`~repro.harness.policy.ExecutionPolicy` with
            the sweep execution settings (jobs/lanes/dispatch/workers/
            retries, and the lease-liveness protocol).  Unset
            ``stale_after``/``heartbeat`` default to 300 s / 10 s —
            the server's worker threads share one store, so campaigns
            must never run without a staleness window.
        jobs: Deprecated — worker *processes* per sweep chunk
            (``policy.jobs``; ``None`` = serial; this multiplies with
            the server's worker threads, so keep the product near the
            core count).
        stale_after: Deprecated — staleness window in seconds
            (``policy.stale_after``) so concurrent campaigns never steal
            rows from live workers.
        heartbeat: Deprecated — heartbeat period in seconds for claimed
            rows (``policy.heartbeat``); must be well under
            ``stale_after``.
    """

    def __init__(
        self,
        state_dir: str | Path | None = None,
        cache=None,
        checkpoints=None,
        jobs=UNSET,
        stale_after=UNSET,
        heartbeat=UNSET,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        if state_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
            state_dir = self._tmp.name
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        resolved = resolve_cache(cache)
        self.cache = (
            resolved if resolved is not None
            else ResultCache(self.state_dir / "cache")
        )
        resolved_ckpt = resolve_checkpoints(checkpoints)
        self.checkpoints = (
            resolved_ckpt if resolved_ckpt is not None
            else CheckpointStore(self.state_dir / "checkpoints")
        )
        policy = ExecutionPolicy.coalesce(
            policy, "CampaignRunner",
            jobs=jobs, stale_after=stale_after, heartbeat=heartbeat,
        )
        if policy.stale_after is None:
            policy = policy.merged(stale_after=300.0)
        if policy.heartbeat is None:
            policy = policy.merged(heartbeat=10.0)
        self.policy = policy

    # -- execution settings live on the policy; historical attribute views
    @property
    def jobs(self):
        return self.policy.jobs

    @property
    def stale_after(self) -> float:
        return self.policy.stale_after

    @property
    def heartbeat(self) -> float:
        return self.policy.heartbeat

    # ------------------------------------------------------------------
    # validation / normalization (runs on the submitting thread)
    # ------------------------------------------------------------------
    def validate(self, kind: str, payload) -> dict:
        """Check a submission and return its normalized payload.

        Normalization applies every default explicitly so the job digest
        — computed over the result — coalesces equivalent submissions.
        Raises :class:`ServiceError` (HTTP 400) on anything malformed.
        """
        _require(isinstance(payload, dict), "request body must be a JSON object")
        if kind == "run":
            return self._validate_run(payload)
        if kind == "sweep":
            return self._validate_sweep(payload)
        if kind == "search":
            return self._validate_search(payload)
        raise ServiceError(f"unknown job kind {kind!r}")

    def _validate_run(self, payload: dict) -> dict:
        unknown = set(payload) - _RUN_KEYS
        _require(not unknown,
                 f"unknown run field(s) {sorted(unknown)}; "
                 f"valid: {sorted(_RUN_KEYS)}")
        workload = payload.get("workload")
        _require(isinstance(workload, str), "run needs a 'workload' name")
        try:
            default = get_workload(workload).spec.default_length
        except KeyError as exc:
            raise ServiceError(str(exc.args[0])) from None
        params = payload.get("params", {})
        _require(isinstance(params, dict), "'params' must be an object")
        length = payload.get("length", default or default_length())
        seed = payload.get("seed", 0)
        warmup = payload.get("warmup", 0)
        sample = payload.get("sample")
        _require(isinstance(length, int) and length >= 1,
                 "'length' must be a positive integer")
        _require(isinstance(seed, int), "'seed' must be an integer")
        _require(isinstance(warmup, int) and warmup >= 0,
                 "'warmup' must be a non-negative integer")
        _require(sample is None or (isinstance(sample, int) and sample >= 1),
                 "'sample' must be a positive integer or null")
        normalized = {
            "workload": workload,
            "params": {k: params[k] for k in sorted(params)},
            "length": length,
            "seed": seed,
            "warmup": warmup,
            "sample": sample,
            "observe": bool(payload.get("observe", False)),
            "trace": bool(payload.get("trace", False)),
        }
        # building the RunSpec now surfaces unknown recipe keys, unknown
        # machine presets and unknown predictor/selector names as a 400
        # instead of a failed job
        try:
            _check_keys(normalized["params"], "run params")
            run_spec_for(normalized["params"], warmup=warmup, sample=sample)
        except (SweepSpecError, KeyError, ValueError, TypeError) as exc:
            raise ServiceError(f"invalid run recipe: {exc}") from None
        return normalized

    def _validate_sweep(self, payload: dict) -> dict:
        unknown = set(payload) - _SWEEP_KEYS
        _require(not unknown,
                 f"unknown sweep field(s) {sorted(unknown)}; "
                 f"valid: {sorted(_SWEEP_KEYS)}")
        _require(isinstance(payload.get("spec"), dict),
                 "sweep needs a 'spec' object (SweepSpec fields)")
        try:
            spec = SweepSpec.from_dict(payload["spec"])
        except (SweepSpecError, KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"invalid sweep spec: {exc}") from None
        max_points = payload.get("max_points")
        retries = payload.get("retries")
        _require(max_points is None
                 or (isinstance(max_points, int) and max_points >= 1),
                 "'max_points' must be a positive integer or null")
        _require(retries is None or (isinstance(retries, int) and retries >= 0),
                 "'retries' must be a non-negative integer or null")
        return {
            "spec": spec.to_dict(),
            "max_points": max_points,
            "retries": retries,
        }

    def _validate_search(self, payload: dict) -> dict:
        unknown = set(payload) - _SEARCH_KEYS
        _require(not unknown,
                 f"unknown search field(s) {sorted(unknown)}; "
                 f"valid: {sorted(_SEARCH_KEYS)}")
        _require(isinstance(payload.get("spec"), dict),
                 "search needs a 'spec' object (SearchSpec fields)")
        try:
            spec = SearchSpec.from_dict(payload["spec"])
        except (SearchSpecError, KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"invalid search spec: {exc}") from None
        max_points = payload.get("max_points")
        retries = payload.get("retries")
        _require(max_points is None
                 or (isinstance(max_points, int) and max_points >= 1),
                 "'max_points' must be a positive integer or null")
        _require(retries is None or (isinstance(retries, int) and retries >= 0),
                 "'retries' must be a non-negative integer or null")
        return {
            "spec": spec.to_dict(),
            "max_points": max_points,
            "retries": retries,
        }

    # ------------------------------------------------------------------
    # execution (runs on a JobManager worker thread)
    # ------------------------------------------------------------------
    def __call__(self, job: Job) -> dict:
        if job.kind == "run":
            return self._run_job(job)
        if job.kind == "search":
            return self._search_job(job)
        return self._sweep_job(job)

    def _session_for(self, payload: dict, tracer=None) -> Session:
        rspec = run_spec_for(
            payload["params"],
            name="serve",
            warmup=payload["warmup"],
            sample=payload["sample"],
        )
        return Session(
            config=rspec.config_factory,
            predictor=rspec.predictor_factory,
            selector=rspec.selector_factory,
            length=payload["length"],
            seed=payload["seed"],
            observe=payload["observe"] or tracer is not None,
            tracer=tracer,
            name="serve",
            policy=ExecutionPolicy(
                jobs=1,
                cache=self.cache,
                checkpoints=self.checkpoints,
                warmup=payload["warmup"],
                sample=payload["sample"],
            ),
        )

    def _run_job(self, job: Job) -> dict:
        payload = job.payload
        tracer = None
        if payload["trace"]:
            from repro.obs import Tracer

            tracer = Tracer()
        session = self._session_for(payload, tracer=tracer)
        key = task_key(
            payload["workload"], session.spec(), session.length, session.seed
        )
        cached = (
            tracer is None and key is not None and self.cache.contains(key)
        )
        if tracer is not None:
            stats = session.run(payload["workload"])  # uncached by design
        else:
            stats = session.run_many(
                [payload["workload"]],
                progress=lambda info: job.events.emit("progress", **info),
            )[0]
        result = {
            "workload": payload["workload"],
            "length": session.length,
            "seed": session.seed,
            "cached": cached,
            "stats": stats.to_dict(),
        }
        if tracer is not None:
            self._bridge_trace(job, tracer)
            result["trace"] = tracer.summary()
        return result

    def _bridge_trace(self, job: Job, tracer) -> None:
        """Forward tracer events onto the job's NDJSON stream (bounded)."""
        from repro.obs.events import EVENT_NAMES

        events = tracer.events
        for cycle, kind, tid, args in events[:TRACE_EVENT_LIMIT]:
            job.events.emit(
                "trace",
                cycle=cycle,
                event=EVENT_NAMES[kind],
                tid=tid,
                args=args,
            )
        if len(events) > TRACE_EVENT_LIMIT:
            job.events.emit(
                "trace-truncated",
                forwarded=TRACE_EVENT_LIMIT,
                total=len(events),
            )

    def sweep_db(self, job: Job) -> Path:
        """Where a sweep job's results database lives (digest-addressed)."""
        return self.state_dir / f"sweep-{job.digest[:16]}.db"

    def _sweep_job(self, job: Job) -> dict:
        spec = SweepSpec.from_dict(job.payload["spec"])
        db = self.sweep_db(job)
        job.data["db"] = str(db)
        job.data["sweep"] = spec.name
        with ResultStore(db) as store:
            summary = run_sweep(
                spec,
                store,
                max_points=job.payload["max_points"],
                echo=lambda *parts: job.events.emit(
                    "log", message=" ".join(str(p) for p in parts)
                ),
                progress=lambda info: job.events.emit("progress", **info),
                policy=self.policy.merged(
                    retries=job.payload["retries"],
                    cache=self.cache,
                    checkpoints=self.checkpoints,
                ),
            )
        return {
            "sweep": spec.name,
            "db": str(db),
            "summary": dataclasses.asdict(summary),
            "complete": summary.complete,
        }

    def search_db(self, job: Job) -> Path:
        """Where a search job's results database lives (digest-addressed).
        All rungs (and the exhaustive reference, if one is ever run)
        share this one store."""
        return self.state_dir / f"search-{job.digest[:16]}.db"

    def _search_spec(self, job: Job) -> SearchSpec:
        return SearchSpec.from_dict(job.payload["spec"])

    def _search_job(self, job: Job) -> dict:
        spec = self._search_spec(job)
        db = self.search_db(job)
        job.data["db"] = str(db)
        job.data["search"] = spec.name
        with ResultStore(db) as store:
            summary = run_search(
                spec,
                store,
                max_points=job.payload["max_points"],
                echo=lambda *parts: job.events.emit(
                    "log", message=" ".join(str(p) for p in parts)
                ),
                progress=lambda info: job.events.emit("progress", **info),
                policy=self.policy.merged(
                    retries=job.payload["retries"],
                    cache=self.cache,
                    checkpoints=self.checkpoints,
                ),
            )
        return {
            "search": spec.name,
            "db": str(db),
            "summary": summary.to_dict(),
            "winner": summary.winner,
            "complete": summary.complete,
        }

    # ------------------------------------------------------------------
    # read-side helpers (any thread)
    # ------------------------------------------------------------------
    def partial(self, job: Job) -> dict | None:
        """Live per-status row counts for a running/finished sweep or
        search job (search counts sum over every rung sweep)."""
        if job.kind == "sweep":
            db, names = self.sweep_db(job), [job.payload["spec"]["name"]]
        elif job.kind == "search":
            db = self.search_db(job)
            spec = self._search_spec(job)
            names = [spec.rung_sweep(i) for i in range(len(spec.rungs))]
        else:
            return None
        if not db.exists():
            return None
        counts: dict = {}
        try:
            with ResultStore(db) as store:
                for name in names:
                    for status, n in store.counts(name).items():
                        counts[status] = counts.get(status, 0) + n
        except Exception:  # db mid-creation by the worker: no partials yet
            return None
        counts["total"] = sum(counts.values())
        return counts

    def report(self, job: Job, fmt: str = "markdown"):
        """Render a finished job's report (markdown str or JSON dict).

        For sweep jobs this is exactly the ``sweep report`` CLI output —
        deterministic, so every client of a deduped job receives
        byte-identical bytes.
        """
        if fmt not in ("markdown", "json"):
            raise ServiceError(f"unknown report format {fmt!r}")
        if job.status != "done":
            raise ServiceError(
                f"job {job.id} is {job.status}; reports need a finished job",
                status=409,
            )
        if job.kind == "run":
            if fmt == "json":
                return job.result
            stats = job.result["stats"]
            lines = [
                f"### Run {job.payload['workload']} "
                f"({job.payload['length']} instructions, "
                f"seed {job.payload['seed']})",
                "",
                "| metric | value |",
                "| --- | --- |",
            ]
            for key in sorted(stats):
                if isinstance(stats[key], (int, float, str)):
                    lines.append(f"| {key} | {stats[key]} |")
            return "\n".join(lines) + "\n"
        if job.kind == "search":
            from repro.search.report import format_search_report, search_result

            spec = self._search_spec(job)
            with ResultStore(self.search_db(job)) as store:
                summary = search_result(
                    spec, store, max_points=job.payload["max_points"]
                )
            if not summary.total:
                raise ServiceError(
                    f"search {spec.name} has no recorded rows", status=409
                )
            if fmt == "markdown":
                return format_search_report(spec, summary)
            return summary.to_dict()
        from repro.sweep.report import format_markdown, sweep_result
        from repro.sweep.stats import aggregate

        name = job.payload["spec"]["name"]
        with ResultStore(self.sweep_db(job)) as store:
            rows = store.rows(name)
        if not rows:
            raise ServiceError(f"sweep {name} has no recorded rows", status=409)
        result = sweep_result(name, aggregate(rows))
        if fmt == "markdown":
            return format_markdown(result)
        return result_to_dict(result)

    def stats(self) -> dict:
        """Shared-store traffic counters for the ``/stats`` endpoint."""
        return {
            "cache": {
                "directory": str(self.cache.directory),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "entries": len(self.cache),
            },
            "checkpoints": {
                "directory": str(self.checkpoints.directory),
                "hits": self.checkpoints.hits,
                "misses": self.checkpoints.misses,
                "stores": self.checkpoints.stores,
            },
        }
