"""Per-job event logs: bounded, subscribable, NDJSON-ready.

Every job the campaign server runs carries an :class:`EventLog` — a ring
of small JSON-serializable dicts stamped with a monotonically increasing
``seq`` and a wall-clock ``ts``.  Producers (the job worker thread, the
sweep runner's ``echo``/``progress`` hooks, the :mod:`repro.obs` tracer
bridge) :meth:`emit` into it; consumers (the ``GET /jobs/<id>/events``
NDJSON stream) :meth:`wait` on a sequence cursor, so many clients can
follow one job live without the producers knowing they exist.

The log is bounded the same way the :class:`repro.obs.Tracer` ring is:
when ``capacity`` is exceeded the *oldest* events fall off and
``dropped`` counts them — a slow stream consumer can detect the gap by a
jump in ``seq``.  :meth:`close` marks the job finished; waiters wake and
streams terminate once they have drained everything after their cursor.
"""

from __future__ import annotations

import threading
import time

#: default per-job event capacity; lifecycle + per-task progress events
#: are small, so this comfortably covers big sweeps while bounding memory
DEFAULT_CAPACITY = 4096


class EventLog:
    """A bounded, closable, multi-reader event ring (see module docstring)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: list[dict] = []
        self._base = 0          #: seq of ``_events[0]``
        self._next = 0          #: seq the next emit will get
        self._cond = threading.Condition()
        self.closed = False
        self.dropped = 0

    def emit(self, kind: str, **fields) -> dict:
        """Append one event; returns the stamped record."""
        with self._cond:
            event = {
                "seq": self._next,
                "ts": round(time.time(), 6),
                "kind": kind,
                **fields,
            }
            self._next += 1
            self._events.append(event)
            overflow = len(self._events) - self.capacity
            if overflow > 0:
                del self._events[:overflow]
                self._base += overflow
                self.dropped += overflow
            self._cond.notify_all()
            return event

    def close(self) -> None:
        """Mark the producing job finished; idempotent.  Wakes all waiters."""
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def _tail(self, from_seq: int) -> list[dict]:
        start = max(0, from_seq - self._base)
        return list(self._events[start:])

    def after(self, from_seq: int = 0) -> tuple[list[dict], bool]:
        """Events with ``seq >= from_seq`` right now, plus the closed flag."""
        with self._cond:
            return self._tail(from_seq), self.closed

    def wait(
        self, from_seq: int = 0, timeout: float | None = None
    ) -> tuple[list[dict], bool]:
        """Block until events past ``from_seq`` exist, the log closes, or
        ``timeout`` elapses; returns ``(events, closed)`` like :meth:`after`.
        """
        with self._cond:
            self._cond.wait_for(
                lambda: self._next > from_seq or self.closed, timeout
            )
            return self._tail(from_seq), self.closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)
