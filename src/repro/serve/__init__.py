"""Simulation-as-a-service: an async campaign server over the harness.

``repro serve`` turns the repository's simulation stack into a shared
long-running service: clients POST run/sweep payloads over HTTP, a
bounded worker pool executes them through the very same
:class:`~repro.harness.Session` / :func:`~repro.sweep.run_sweep` paths
the CLI uses, and one process-wide
:class:`~repro.harness.cache.ResultCache` +
:class:`~repro.harness.checkpoint.CheckpointStore` pair guarantees that
identical work — whether from one client retrying or many clients
asking the same question — is simulated exactly once.

Layering (each module usable on its own):

* :mod:`repro.serve.events` — per-job bounded event logs (NDJSON feed).
* :mod:`repro.serve.jobs` — job model, digest dedup, bounded queue +
  worker pool.
* :mod:`repro.serve.api` — payload validation and execution over the
  harness (:class:`CampaignRunner`).
* :mod:`repro.serve.app` — the asyncio HTTP front end
  (:class:`CampaignServer`) and :class:`BackgroundServer` for embedding.
* :mod:`repro.serve.client` — stdlib :class:`CampaignClient`.
"""

from repro.serve.api import CampaignRunner, ServiceError
from repro.serve.app import BackgroundServer, CampaignServer
from repro.serve.client import CampaignClient, ClientError
from repro.serve.events import EventLog
from repro.serve.jobs import Job, JobManager, QueueFullError, job_digest

__all__ = [
    "BackgroundServer",
    "CampaignClient",
    "CampaignRunner",
    "CampaignServer",
    "ClientError",
    "EventLog",
    "Job",
    "JobManager",
    "QueueFullError",
    "ServiceError",
    "job_digest",
]
