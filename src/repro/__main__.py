"""Command-line interface: ``python -m repro``.

Subcommands:

* ``workloads`` — list the modeled SPEC CPU2000 suite,
* ``run`` — simulate one workload on one machine and print the stats
  (``--trace`` additionally exports a Chrome/JSONL event trace),
* ``report`` — occupancy/speculation summary of an observed run (served
  from the result cache when the same run was reported before),
* ``experiment`` — regenerate a paper artifact (table/figure),
* ``trace`` — write a workload's instruction trace to a binary file.

Predictor/selector choices come straight from the component registries
(:data:`repro.vp.REGISTRY`, :data:`repro.select.REGISTRY`), so a predictor
registered there is immediately drivable from the command line.
"""

from __future__ import annotations

import argparse
import sys

from repro import MachineConfig, select, vp
from repro.workloads import get_workload, workload_names

MACHINES = {
    "baseline": lambda threads: MachineConfig.hpca05_baseline(),
    "stvp": lambda threads: MachineConfig.stvp(),
    "mtvp": lambda threads: MachineConfig.mtvp(threads),
    "cmp": lambda threads: MachineConfig.cmp(threads),
    "spawn-only": lambda threads: MachineConfig.spawn_only(threads),
    "wide-window": lambda threads: MachineConfig.wide_window(),
}


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name in workload_names(args.suite):
        wl = get_workload(name)
        print(f"{name:10s} [{wl.suite}] {wl.spec.description}")
    return 0


def _session_for(args: argparse.Namespace, **overrides):
    """A :class:`~repro.harness.Session` bound to the common run flags."""
    from repro.harness import Session

    length = args.length or get_workload(args.workload).spec.default_length
    return Session(
        config=MACHINES[args.machine](args.threads),
        predictor=args.predictor,
        selector=args.selector,
        length=length,
        seed=args.seed,
        name=args.machine,
        **overrides,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    session = _session_for(
        args, tracer=tracer, observe=tracer is not None, cache=False
    )

    def run():
        return session.run(args.workload)

    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        stats = profiler.runcall(run)
        profiler.dump_stats(args.profile)
    else:
        stats = run()
    print(f"{args.workload} on {args.machine} ({args.threads} threads)")
    print(stats.summary())
    if tracer is not None:
        if args.trace_format == "jsonl":
            tracer.export_jsonl(args.trace)
        else:
            tracer.export_chrome(args.trace)
        summary = tracer.summary()
        print(
            f"wrote {summary['retained']} events "
            f"({summary['dropped']} dropped, {summary['threads']} context "
            f"lanes) to {args.trace} [{args.trace_format}]"
        )
    if args.profile:
        print(f"wrote cProfile data to {args.profile} "
              f"(inspect with: python -m pstats {args.profile})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness import ResultCache, default_cache_dir
    from repro.obs import format_metrics

    if args.no_cache:
        cache = False
    else:
        try:
            cache = ResultCache(args.cache_dir or default_cache_dir())
        except OSError as exc:
            print(f"cannot use cache directory: {exc}")
            return 1
    session = _session_for(args, observe=True, cache=cache)
    stats = session.run(args.workload)
    print(f"{args.workload} on {args.machine} ({args.threads} threads), "
          f"{session.length} instructions")
    print()
    print(format_metrics(stats.extended))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness import EXPERIMENTS, ResultCache, default_cache_dir
    from repro.harness.export import result_to_csv, result_to_json

    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; known: {', '.join(EXPERIMENTS)}")
        return 1
    if args.no_cache:
        cache = False
    else:
        try:
            cache = ResultCache(args.cache_dir or default_cache_dir())
        except OSError as exc:
            print(f"cannot use cache directory: {exc}")
            return 1
    result = EXPERIMENTS[args.id](length=args.length, jobs=args.jobs, cache=cache)
    print(result.format_table())
    if args.json:
        result_to_json(result, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        result_to_csv(result, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.io import save_trace

    trace = get_workload(args.workload).trace(length=args.length, seed=args.seed)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} instructions to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multithreaded Value Prediction' (HPCA 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list the modeled SPEC CPU2000 suite")
    p.add_argument("--suite", choices=["int", "fp"], default=None)
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("run", help="simulate one workload on one machine")
    p.add_argument("workload")
    p.add_argument("--machine", choices=sorted(MACHINES), default="mtvp")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--predictor", choices=sorted(vp.names()), default="wang-franklin")
    p.add_argument("--selector", choices=sorted(select.names()), default="ilp-pred")
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record cycle-stamped events and export them to FILE "
             "(view chrome format at chrome://tracing or ui.perfetto.dev)",
    )
    p.add_argument(
        "--trace-format", choices=["chrome", "jsonl"], default="chrome",
        help="trace export format (default: chrome)",
    )
    p.add_argument(
        "--profile", default=None, metavar="FILE",
        help="profile the simulation with cProfile and dump stats to FILE",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "report",
        help="print occupancy/speculation metrics for a run "
             "(cached: repeating the command reuses the stored result)",
    )
    p.add_argument("workload")
    p.add_argument("--machine", choices=sorted(MACHINES), default="mtvp")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--predictor", choices=sorted(vp.names()), default="wang-franklin")
    p.add_argument("--selector", choices=sorted(select.names()), default="ilp-pred")
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--no-cache", action="store_true",
        help="recompute instead of consulting the result cache",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id")
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--json", default=None, help="also write JSON to this path")
    p.add_argument("--csv", default=None, help="also write CSV to this path")
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the simulation fan-out "
             "(0 = all cores; default: $REPRO_JOBS or serial)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="recompute every simulation instead of using the result cache",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("trace", help="write a workload trace to a binary file")
    p.add_argument("workload")
    p.add_argument("output")
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
