"""Command-line interface: ``python -m repro``.

Subcommands:

* ``workloads`` — list the modeled SPEC CPU2000 suite,
* ``run`` — simulate one workload on one machine and print the stats
  (``--trace`` additionally exports a Chrome/JSONL event trace),
* ``report`` — occupancy/speculation summary of an observed run (served
  from the result cache when the same run was reported before),
* ``experiment`` — regenerate a paper artifact (table/figure),
* ``sweep`` — run/status/report/resume a declarative design-space
  exploration campaign (a TOML/JSON spec under ``sweeps/``; results
  persist in SQLite, so interrupted campaigns resume where they stopped),
* ``cache`` — maintain the on-disk result cache (``prune``),
* ``trace`` — write a workload's instruction trace to a binary file,
* ``serve`` — run the campaign server: an HTTP/JSON service that
  executes submitted runs/sweeps through the shared result cache, so
  identical submissions from any number of clients cost one simulation,
* ``client`` — talk to a running campaign server (submit work, follow
  the NDJSON event stream, fetch reports).

Predictor/selector choices come straight from the component registries
(:data:`repro.vp.REGISTRY`, :data:`repro.select.REGISTRY`), so a predictor
registered there is immediately drivable from the command line.
"""

from __future__ import annotations

import argparse
import sys

from repro import MachineConfig, select, vp
from repro.workloads import get_workload, workload_names

MACHINES = {
    "baseline": lambda threads: MachineConfig.hpca05_baseline(),
    "stvp": lambda threads: MachineConfig.stvp(),
    "mtvp": lambda threads: MachineConfig.mtvp(threads),
    "cmp": lambda threads: MachineConfig.cmp(threads),
    "spawn-only": lambda threads: MachineConfig.spawn_only(threads),
    "wide-window": lambda threads: MachineConfig.wide_window(),
    "smt": lambda threads: MachineConfig.smt(programs=threads),
    "spmt": lambda threads: MachineConfig.spmt(threads),
}


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name in workload_names(args.suite):
        wl = get_workload(name)
        print(f"{name:10s} [{wl.suite}] {wl.spec.description}")
    return 0


def _policy_from_args(args: argparse.Namespace, **extra):
    """An :class:`~repro.harness.ExecutionPolicy` from the execution flags.

    Every subcommand spells execution the same way (``--jobs``,
    ``--lanes``, ``--dispatch``, ``--workers``, ``--retries``, plus the
    cache/checkpoint/interval flags where they apply); a flag the
    subcommand doesn't define simply stays unset on the policy, so the
    usual environment-variable defaults (``REPRO_JOBS``, ``REPRO_LANES``,
    ``REPRO_DISPATCH``, ``REPRO_WORKERS``, ``REPRO_CACHE_DIR``, ...) take
    over.  ``extra`` entries win over flag-derived fields; ``None`` extras
    are dropped (``False`` — cache off — is preserved).
    """
    from repro.harness import ExecutionPolicy

    fields = {}
    for name in ("jobs", "lanes", "dispatch", "workers", "retries",
                 "warmup", "sample", "stale_after", "heartbeat"):
        value = getattr(args, name, None)
        if value is not None:
            fields[name] = value
    if getattr(args, "checkpoint_dir", None) is not None:
        fields["checkpoints"] = args.checkpoint_dir
    if getattr(args, "no_cache", False):
        fields["cache"] = False
    elif getattr(args, "cache_dir", None) is not None:
        fields["cache"] = args.cache_dir
    fields.update({k: v for k, v in extra.items() if v is not None})
    return ExecutionPolicy(**fields)


def _session_for(args: argparse.Namespace, cache=False, **overrides):
    """A :class:`~repro.harness.Session` bound to the common run flags."""
    from repro.harness import Session

    length = args.length or get_workload(args.workload).spec.default_length
    return Session(
        config=MACHINES[args.machine](args.threads),
        predictor=args.predictor,
        selector=args.selector,
        length=length,
        seed=args.seed,
        name=args.machine,
        policy=_policy_from_args(args, cache=cache),
        **overrides,
    )


def _cmd_run_checkpoint(args: argparse.Namespace) -> int:
    """The ``run --checkpoint/--restore`` path: explicit warmup state files.

    Drives the engine directly — checkpoint files name a specific warmed
    state, which the cached :class:`~repro.harness.Session` pipeline
    (whose keyed store is the better fit for campaigns) doesn't expose.
    """
    from repro import _steady_state_footprint
    from repro.core import Engine
    from repro.harness.checkpoint import load_checkpoint, save_checkpoint

    if args.trace or args.profile:
        print("--checkpoint/--restore cannot be combined with "
              "--trace/--profile")
        return 1
    workload = get_workload(args.workload)
    length = args.sample or args.length or workload.spec.default_length
    config = MACHINES[args.machine](args.threads)
    warmup = args.warmup
    restored = None
    if args.restore:
        try:
            restored = load_checkpoint(
                args.restore, workload=args.workload, seed=args.seed
            )
        except (OSError, ValueError) as exc:
            print(f"cannot restore checkpoint: {exc}")
            return 1
        warmup = restored["warmup"]
        print(f"restored {args.restore}: warmed {warmup} instructions")
    if not warmup:
        print("--checkpoint needs --warmup N (or --restore FILE) to define "
              "the warmed state")
        return 1
    trace = workload.trace(length=warmup + length, seed=args.seed)
    warm_addresses = (
        _steady_state_footprint(workload, config) if config.warm_caches else None
    )
    engine = Engine(
        trace,
        config,
        predictor=vp.resolve(args.predictor)(),
        selector=select.resolve(args.selector)(),
        warm_addresses=warm_addresses,
    )
    if restored is not None:
        engine.restore(restored["arch"])
    else:
        engine.fast_forward(warmup)
    if args.checkpoint:
        save_checkpoint(
            args.checkpoint,
            engine.snapshot(scope="arch"),
            workload=args.workload,
            seed=args.seed,
        )
        print(f"wrote warmup checkpoint ({warmup} instructions) "
              f"to {args.checkpoint}")
    stats = engine.run()
    print(f"{args.workload} on {args.machine} ({args.threads} threads), "
          f"warmup {warmup} + measured {length}")
    print(stats.summary())
    return 0


def _cmd_run_lanes(args: argparse.Namespace, lanes: int) -> int:
    """The ``run --lanes N`` path: N seed replicates, lane-batched.

    Seeds ``seed .. seed+N-1`` simulate together through the vectorized
    lockstep kernel (scalar fallback without numpy — results identical);
    per-seed stats print individually, throughput reports as aggregate.
    """
    import time

    from repro.harness.runner import simulate_batch

    if args.trace or args.profile or args.checkpoint or args.restore:
        print("--lanes cannot be combined with "
              "--trace/--profile/--checkpoint/--restore")
        return 1
    session = _session_for(args, cache=False)
    spec = session.spec()
    seeds = list(range(args.seed, args.seed + lanes))
    t0 = time.perf_counter()
    results = simulate_batch(args.workload, spec, session.length, seeds)
    wall = time.perf_counter() - t0
    print(f"{args.workload} on {args.machine} ({args.threads} threads), "
          f"{lanes} lanes (seeds {seeds[0]}..{seeds[-1]})")
    for seed, stats in zip(seeds, results):
        print(f"  seed {seed}: useful IPC {stats.useful_ipc:.3f}, "
              f"cycles {stats.cycles}")
    total = sum(s.instructions_stepped for s in results)
    print(f"aggregate sim throughput: {total / wall / 1e3:.1f} kips "
          f"({total} instructions in {wall:.2f}s across {lanes} lanes)")
    return 0


def _cmd_run_traces(args: argparse.Namespace) -> int:
    """The ``run --traces`` path: simulate ingested external trace files.

    Bypasses the cached :class:`~repro.harness.Session` pipeline — cache
    keys identify generated workloads by (name, length, seed), which says
    nothing about the contents of arbitrary external files — and drives
    :func:`repro.simulate` directly.  Multiple files form a
    :class:`~repro.workloads.TraceSet` (one program per context, for the
    SMT co-schedule); a single file runs in any single-program mode.
    """
    from repro import simulate
    from repro.workloads import TraceFormatError, load_trace_set

    if args.trace or args.profile or args.checkpoint or args.restore:
        print("--traces cannot be combined with "
              "--trace/--profile/--checkpoint/--restore")
        return 1
    if args.workload is not None:
        print("--traces replaces the workload argument; give one or the other")
        return 1
    try:
        trace_set = load_trace_set(args.traces)
    except (OSError, TraceFormatError) as exc:
        print(f"cannot ingest traces: {exc}")
        return 1
    config = MACHINES[args.machine](args.threads)
    try:
        stats = simulate(
            trace_set,
            config,
            predictor=vp.resolve(args.predictor)(),
            selector=select.resolve(args.selector)(),
            warmup=args.warmup,
        )
    except (TypeError, ValueError) as exc:
        print(f"cannot run ingested traces: {exc}")
        return 1
    programs = ", ".join(trace_set.labels)
    print(f"{programs} on {args.machine} ({args.threads} threads)")
    print(stats.summary())
    for row in stats.per_context:
        print(f"  ctx {row['stream']} [{trace_set.labels[row['stream']]}]: "
              f"ipc {row['ipc']:.3f}, {row['instructions']} instructions "
              f"in {row['cycles']} cycles")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness import resolve_lanes

    if args.traces:
        return _cmd_run_traces(args)
    if args.workload is None:
        print("a workload name is required (or pass --traces FILE...)")
        return 1
    lanes = resolve_lanes(args.lanes, group_size=1)
    if lanes > 1:
        return _cmd_run_lanes(args, lanes)
    if args.checkpoint or args.restore:
        return _cmd_run_checkpoint(args)
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    session = _session_for(
        args, tracer=tracer, observe=tracer is not None, cache=False
    )

    def run():
        return session.run(args.workload)

    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        stats = profiler.runcall(run)
        profiler.dump_stats(args.profile)
    else:
        stats = run()
    print(f"{args.workload} on {args.machine} ({args.threads} threads)")
    print(stats.summary())
    if tracer is not None:
        if args.trace_format == "jsonl":
            tracer.export_jsonl(args.trace)
        else:
            tracer.export_chrome(args.trace)
        summary = tracer.summary()
        print(
            f"wrote {summary['retained']} events "
            f"({summary['dropped']} dropped, {summary['threads']} context "
            f"lanes) to {args.trace} [{args.trace_format}]"
        )
    if args.profile:
        print(f"wrote cProfile data to {args.profile} "
              f"(inspect with: python -m pstats {args.profile})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness import ResultCache, default_cache_dir
    from repro.obs import format_metrics

    if args.no_cache:
        cache = False
    else:
        try:
            cache = ResultCache(args.cache_dir or default_cache_dir())
        except OSError as exc:
            print(f"cannot use cache directory: {exc}")
            return 1
    session = _session_for(args, observe=True, cache=cache)
    stats = session.run(args.workload)
    print(f"{args.workload} on {args.machine} ({args.threads} threads), "
          f"{session.length} instructions")
    print()
    print(format_metrics(stats.extended))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness import EXPERIMENTS, ResultCache, default_cache_dir
    from repro.harness.export import result_to_csv, result_to_json

    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; known: {', '.join(EXPERIMENTS)}")
        return 1
    if args.no_cache:
        cache = False
    else:
        try:
            cache = ResultCache(args.cache_dir or default_cache_dir())
        except OSError as exc:
            print(f"cannot use cache directory: {exc}")
            return 1
    result = EXPERIMENTS[args.id](length=args.length, jobs=args.jobs, cache=cache)
    print(result.format_table())
    if args.json:
        result_to_json(result, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        result_to_csv(result, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _resolve_cli_cache(args: argparse.Namespace):
    """The ``--no-cache``/``--cache-dir`` convention shared by subcommands."""
    from repro.harness import ResultCache, default_cache_dir

    if getattr(args, "no_cache", False):
        return False
    return ResultCache(args.cache_dir or default_cache_dir())


def _sweep_spec_and_store(args: argparse.Namespace):
    from repro.sweep import ResultStore, default_db_path, load_spec

    spec = load_spec(args.spec)
    if getattr(args, "seeds", None):
        spec.seeds = tuple(range(args.seeds))
    if getattr(args, "length", None):
        spec.lengths = (args.length,)
    store = ResultStore(args.db or default_db_path(args.spec))
    return spec, store


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    from repro.sweep import run_sweep

    spec, store = _sweep_spec_and_store(args)
    if getattr(args, "warmup", None) is not None:
        spec.warmup = args.warmup
    if getattr(args, "sample", None) is not None:
        spec.sample = args.sample
    policy = _policy_from_args(args, cache=_resolve_cli_cache(args))
    with store:
        summary = run_sweep(
            spec,
            store,
            max_points=args.points,
            echo=print,
            policy=policy,
        )
    return 0 if summary.done else 1


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    import json

    from repro.sweep import axis_progress

    spec, store = _sweep_spec_and_store(args)
    with store:
        counts = store.counts(spec.name)
        total = sum(counts.values())
        if not total:
            print(f"sweep {spec.name}: no rows recorded yet "
                  f"(run: python -m repro sweep run {args.spec})")
            return 1
        rows = store.rows(spec.name)
        ledger = store.commit_stats(spec.name)
        axes = axis_progress(spec.axes, rows)
        failures = [
            {
                "workload": row["workload"],
                "seed": row["seed"],
                "params": row["params"],
                "attempts": row["attempts"],
                "error": row["error"],
            }
            for row in rows
            if row["status"] == "failed"
        ]
        if getattr(args, "json", False):
            print(json.dumps({
                "sweep": spec.name,
                "db": str(store.path),
                "total": total,
                "counts": counts,
                "commits": ledger,
                "axes": {
                    axis: {
                        value: {"done": done, "total": n}
                        for value, (done, n) in per.items()
                    }
                    for axis, per in axes.items()
                },
                "failed": failures,
            }, indent=2, sort_keys=True))
            return 0
        print(f"sweep {spec.name} ({store.path}): {total} rows")
        for status, n in counts.items():
            if n:
                print(f"  {status:8s} {n}")
        if ledger["done"]:
            print(f"  commits: {ledger['commits']} across "
                  f"{ledger['done']} done rows "
                  f"(max {ledger['max_commits']} per row)")
        for axis, per in axes.items():
            parts = " ".join(
                f"{value}: {done}/{n}" for value, (done, n) in per.items()
            )
            print(f"  axis {axis}: {parts}")
        for failure in failures:
            print(f"  failed: {failure['workload']} seed {failure['seed']} "
                  f"[{failure['params']}] after {failure['attempts']} "
                  f"attempt(s): {failure['error']}")
    return 0


def _cmd_sweep_report(args: argparse.Namespace) -> int:
    from repro.harness.export import result_to_csv, result_to_json
    from repro.sweep import (
        aggregate,
        export_jsonl,
        format_markdown,
        full_report,
        sweep_result,
    )

    spec, store = _sweep_spec_and_store(args)
    with store:
        rows = store.rows(spec.name)
        if not rows:
            print(f"sweep {spec.name}: no results to report")
            return 1
        aggregates = aggregate(rows)
        result = sweep_result(spec.name, aggregates)
        if args.markdown:
            print(format_markdown(result), end="")
        else:
            print(full_report(spec.name, aggregates))
        if args.json:
            result_to_json(result, args.json)
            print(f"wrote {args.json}")
        if args.csv:
            result_to_csv(result, args.csv)
            print(f"wrote {args.csv}")
        if args.jsonl:
            export_jsonl(aggregates, args.jsonl)
            print(f"wrote {args.jsonl}")
    return 0


def _search_spec_and_store(args: argparse.Namespace):
    from repro.search import load_search_spec
    from repro.sweep import ResultStore, default_db_path

    spec = load_search_spec(args.spec)
    store = ResultStore(args.db or default_db_path(args.spec))
    return spec, store


def _cmd_search_run(args: argparse.Namespace) -> int:
    from repro.search import run_search

    spec, store = _search_spec_and_store(args)
    policy = _policy_from_args(args, cache=_resolve_cli_cache(args))
    with store:
        summary = run_search(
            spec,
            store,
            policy=policy,
            max_points=args.points,
            echo=print,
        )
    return 0 if summary.complete else 1


def _cmd_search_status(args: argparse.Namespace) -> int:
    import json

    from repro.search import search_result

    spec, store = _search_spec_and_store(args)
    with store:
        summary = search_result(spec, store, max_points=args.points)
        if not summary.total:
            print(f"search {spec.name}: no rows recorded yet "
                  f"(run: python -m repro search run {args.spec})")
            return 1
        if getattr(args, "json", False):
            print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
            return 0
        print(f"search {spec.name} ({store.path}): "
              f"{summary.done}/{summary.total} rows done across "
              f"{len(summary.rungs)}/{len(spec.rungs)} rung(s)")
        for outcome in summary.rungs:
            decision = outcome.decision
            verdict = (
                f"promoted {len(decision.promoted)}/{outcome.points_in}"
                if decision is not None
                else "incomplete"
            )
            with_extras = (
                f", {outcome.extra_rounds} extra seed round(s)"
                if outcome.extra_rounds
                else ""
            )
            print(f"  rung {outcome.index}: "
                  f"{outcome.rows_done}/{outcome.rows_total} rows done, "
                  f"{verdict}{with_extras}")
            ledger = store.commit_stats(outcome.sweep)
            if ledger["done"]:
                print(f"    commits: {ledger['commits']} across "
                      f"{ledger['done']} done rows "
                      f"(max {ledger['max_commits']} per row)")
        if summary.winner is not None:
            print(f"  winner: {summary.winner['point_id']} "
                  f"({summary.objective} {summary.winner['value']:+.2f}%) "
                  f"at {100 * summary.cost_fraction:.0f}% of grid cost")
        else:
            print("  winner: (pending — final rung incomplete)")
    return 0


def _cmd_search_report(args: argparse.Namespace) -> int:
    import json

    from repro.search import format_search_report, search_result

    spec, store = _search_spec_and_store(args)
    with store:
        summary = search_result(spec, store, max_points=args.points)
        if not summary.total:
            print(f"search {spec.name}: no results to report")
            return 1
        if getattr(args, "json", None):
            with open(args.json, "w") as fh:
                json.dump(summary.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        print(format_search_report(spec, summary), end="")
    return 0


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    from repro.harness import ResultCache, default_cache_dir

    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.max_bytes is None and args.max_age_days is None:
        print("nothing to do: pass --max-bytes and/or --max-age-days")
        return 1
    removed = cache.prune(
        max_bytes=_parse_size(args.max_bytes) if args.max_bytes else None,
        max_age_days=args.max_age_days,
        dry_run=args.dry_run,
    )
    if args.dry_run:
        print(f"would prune {removed} entries ({cache.last_prune_bytes} "
              f"bytes) from {cache.directory} "
              f"({len(cache) - removed} would remain)")
    else:
        print(f"pruned {removed} entries ({cache.last_prune_bytes} bytes) "
              f"from {cache.directory} ({len(cache)} remaining)")
    return 0


def _parse_size(text: str) -> int:
    """``500``, ``500K``, ``64M``, ``2G`` -> bytes."""
    text = text.strip().upper()
    factor = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}.get(text[-1:], 1)
    digits = text[:-1] if factor != 1 else text
    try:
        return int(digits) * factor
    except ValueError:
        raise SystemExit(f"invalid size {text!r} (use e.g. 500K, 64M, 2G)")


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import CampaignServer

    from repro.harness import ExecutionPolicy

    server = CampaignServer(
        host=args.host,
        port=args.port,
        workers=args.job_threads,
        queue_size=args.queue_size,
        state_dir=args.state_dir,
        cache=args.cache_dir,
        checkpoints=args.checkpoint_dir,
        policy=ExecutionPolicy(
            jobs=args.jobs,
            lanes=args.lanes,
            dispatch=args.dispatch,
            workers=args.workers,
            retries=args.retries,
            stale_after=args.stale_after,
            heartbeat=args.heartbeat,
        ),
    )

    async def serve() -> None:
        await server.start()
        print(f"campaign server listening on {server.url}")
        print(f"  state: {server.runner.state_dir}")
        print(f"  cache: {server.runner.cache.directory}")
        print(f"  job threads: {args.job_threads}, queue: {args.queue_size}")
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("campaign server stopped")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.serve import CampaignClient, ClientError

    client = CampaignClient(args.url, timeout=args.timeout)
    try:
        if args.client_command == "run":
            payload = json.loads(args.payload)
            ack = client.submit_run(payload)
        elif args.client_command == "sweep":
            from repro.sweep import load_spec

            spec = load_spec(args.spec)
            ack = client.submit_sweep({"spec": spec.to_dict()})
        elif args.client_command == "search":
            from repro.search import load_search_spec

            spec = load_search_spec(args.spec)
            ack = client.submit_search({"spec": spec.to_dict()})
        elif args.client_command == "status":
            print(json.dumps(client.job(args.job), indent=2, sort_keys=True))
            return 0
        elif args.client_command == "events":
            for event in client.events(
                args.job, from_seq=args.after, follow=args.follow
            ):
                print(json.dumps(event, sort_keys=True))
            return 0
        elif args.client_command == "report":
            report = client.report(args.job, fmt=args.format)
            if isinstance(report, str):
                print(report, end="")
            else:
                print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        else:  # stats
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        verb = "coalesced onto" if ack["deduped"] else "queued as"
        print(f"{verb} job {ack['job']} "
              f"({ack['submissions']} submission(s), status {ack['status']})")
        if args.wait:
            snapshot = client.wait(ack["job"], timeout=args.timeout)
            print(f"job {ack['job']} finished: {snapshot['status']}")
            if snapshot["status"] == "failed":
                print(f"  {snapshot.get('error')}")
                return 1
            print(client.report(ack["job"]), end="")
        return 0
    except ClientError as exc:
        print(f"server rejected the request: {exc}")
        return 1
    except OSError as exc:
        print(f"cannot reach {args.url}: {exc}")
        return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.io import save_trace

    trace = get_workload(args.workload).trace(length=args.length, seed=args.seed)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} instructions to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multithreaded Value Prediction' (HPCA 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list the modeled SPEC CPU2000 suite")
    p.add_argument("--suite", choices=["int", "fp"], default=None)
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("run", help="simulate one workload on one machine")
    p.add_argument("workload", nargs="?", default=None)
    p.add_argument(
        "--machine", "--mode", dest="machine",
        choices=sorted(MACHINES), default="mtvp",
        help="machine preset / execution mode (--mode is an alias)",
    )
    p.add_argument("--threads", type=int, default=8)
    p.add_argument(
        "--traces", nargs="+", default=None, metavar="FILE",
        help="ingest external binary trace file(s) instead of a generated "
             "workload; several files co-schedule as one program per "
             "context (--machine smt)",
    )
    p.add_argument("--predictor", choices=sorted(vp.names()), default="wang-franklin")
    p.add_argument("--selector", choices=sorted(select.names()), default="ilp-pred")
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record cycle-stamped events and export them to FILE "
             "(view chrome format at chrome://tracing or ui.perfetto.dev)",
    )
    p.add_argument(
        "--trace-format", choices=["chrome", "jsonl"], default="chrome",
        help="trace export format (default: chrome)",
    )
    p.add_argument(
        "--profile", default=None, metavar="FILE",
        help="profile the simulation with cProfile and dump stats to FILE",
    )
    p.add_argument(
        "--warmup", type=int, default=0, metavar="N",
        help="fast-forward N instructions functionally (caches and "
             "predictor tables warm, no cycles) before the timed region",
    )
    p.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="measured-interval length after warmup (default: --length)",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="after warming up, save the architectural state to FILE "
             "(reusable via --restore; requires --warmup or --restore)",
    )
    p.add_argument(
        "--restore", default=None, metavar="FILE",
        help="restore warmed architectural state from FILE instead of "
             "fast-forwarding (must match the workload and seed)",
    )
    p.add_argument(
        "--lanes", type=int, default=None, metavar="N",
        help="simulate N seed replicates (seeds SEED..SEED+N-1) together "
             "through the lane-batched kernel and report aggregate "
             "throughput (default: $REPRO_LANES or 1)",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for batch fan-out "
             "(0 = all cores; default: $REPRO_JOBS or serial)",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "report",
        help="print occupancy/speculation metrics for a run "
             "(cached: repeating the command reuses the stored result)",
    )
    p.add_argument("workload")
    p.add_argument("--machine", choices=sorted(MACHINES), default="mtvp")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--predictor", choices=sorted(vp.names()), default="wang-franklin")
    p.add_argument("--selector", choices=sorted(select.names()), default="ilp-pred")
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--no-cache", action="store_true",
        help="recompute instead of consulting the result cache",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id")
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--json", default=None, help="also write JSON to this path")
    p.add_argument("--csv", default=None, help="also write CSV to this path")
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the simulation fan-out "
             "(0 = all cores; default: $REPRO_JOBS or serial)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="recompute every simulation instead of using the result cache",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "sweep",
        help="declarative design-space exploration (specs under sweeps/)",
    )
    ssub = p.add_subparsers(dest="sweep_command", required=True)

    def _sweep_common(sp, with_db=True):
        sp.add_argument("spec", help="sweep spec file (.toml or .json)")
        if with_db:
            sp.add_argument(
                "--db", default=None,
                help="results database (default: <spec>.db next to the spec)",
            )
        sp.add_argument(
            "--seeds", type=int, default=None, metavar="N",
            help="override the spec's seed replicates with seeds 0..N-1",
        )
        sp.add_argument(
            "--length", type=int, default=None,
            help="override the spec's trace lengths",
        )

    for verb, extra_help in (
        ("run", "run a campaign (skips rows already done in the store)"),
        ("resume", "alias of run: finish an interrupted campaign "
                   "(a complete campaign is a no-op)"),
    ):
        sp = ssub.add_parser(verb, help=extra_help)
        _sweep_common(sp)
        sp.add_argument(
            "--points", type=int, default=None, metavar="N",
            help="limit the campaign to the first N design points",
        )
        sp.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="extra attempts per failed row (default: the spec's)",
        )
        sp.add_argument(
            "--jobs", type=int, default=None,
            help="worker processes (0 = all cores; default: $REPRO_JOBS)",
        )
        sp.add_argument("--no-cache", action="store_true",
                        help="recompute instead of using the result cache")
        sp.add_argument(
            "--cache-dir", default=None,
            help="result cache directory (default: $REPRO_CACHE_DIR or "
                 "~/.cache/repro)",
        )
        sp.add_argument(
            "--warmup", type=int, default=None, metavar="N",
            help="override the spec's functional warmup length",
        )
        sp.add_argument(
            "--sample", type=int, default=None, metavar="N",
            help="override the spec's measured-interval length",
        )
        sp.add_argument(
            "--checkpoint-dir", default=None,
            help="warmup checkpoint store for warmed campaigns (default: "
                 "$REPRO_CHECKPOINT_DIR, else no checkpoint reuse)",
        )
        sp.add_argument(
            "--lanes", default=None, metavar="N|auto",
            help="coalesce seed replicates of each design point into one "
                 "lane-batched simulation (auto = whole replicate "
                 "groups; default: $REPRO_LANES or 1)",
        )
        sp.add_argument(
            "--dispatch", default=None,
            choices=["auto", "local", "pool", "workers"],
            help="execution backend: local (in-process serial), pool "
                 "(process pool), workers (standalone worker processes "
                 "leasing rows from the store); auto picks pool when "
                 "--jobs > 1 (default: $REPRO_DISPATCH or auto)",
        )
        sp.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="worker processes for --dispatch workers "
                 "(0 = all cores; default: $REPRO_WORKERS or 2)",
        )
        sp.add_argument(
            "--stale-after", type=float, default=None, metavar="SECONDS",
            help="seconds without a heartbeat before a running row may "
                 "be reclaimed from a dead worker (default: 60 under "
                 "--dispatch workers, else no reclaim)",
        )
        sp.add_argument(
            "--heartbeat", type=float, default=None, metavar="SECONDS",
            help="lease-refresh period for claimed rows "
                 "(default: stale-after / 6)",
        )
        sp.set_defaults(func=_cmd_sweep_run)

    sp = ssub.add_parser("status", help="row counts and failures of a campaign")
    _sweep_common(sp)
    sp.add_argument(
        "--json", action="store_true",
        help="emit machine-readable status (counts, per-axis progress, "
             "commit ledger, failures) instead of text",
    )
    sp.set_defaults(func=_cmd_sweep_status)

    sp = ssub.add_parser(
        "report",
        help="per-point statistics (bootstrap CIs), axis marginals, Pareto",
    )
    _sweep_common(sp)
    sp.add_argument("--markdown", action="store_true",
                    help="emit a markdown table instead of ASCII")
    sp.add_argument("--json", default=None, help="also write JSON to this path")
    sp.add_argument("--csv", default=None, help="also write CSV to this path")
    sp.add_argument("--jsonl", default=None,
                    help="also write one JSON object per point to this path")
    sp.set_defaults(func=_cmd_sweep_report)

    p = sub.add_parser(
        "search",
        help="adaptive design-space search: successive halving with "
             "bandit seed allocation over a sweep grid (specs under sweeps/)",
    )
    hsub = p.add_subparsers(dest="search_command", required=True)

    def _search_common(sp):
        sp.add_argument("spec", help="search spec file (.toml or .json)")
        sp.add_argument(
            "--db", default=None,
            help="results database (default: <spec>.db next to the spec); "
                 "rungs live in it as {search}:rung{i} sweeps",
        )
        sp.add_argument(
            "--points", type=int, default=None, metavar="N",
            help="limit the search to the grid's first N design points",
        )

    for verb, extra_help in (
        ("run", "run a search (each rung resumes from rows already done)"),
        ("resume", "alias of run: finish a killed search with zero "
                   "re-simulation of committed rows"),
    ):
        sp = hsub.add_parser(verb, help=extra_help)
        _search_common(sp)
        sp.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="extra attempts per failed row (default: the embedded "
                 "sweep's)",
        )
        sp.add_argument(
            "--jobs", type=int, default=None,
            help="worker processes (0 = all cores; default: $REPRO_JOBS)",
        )
        sp.add_argument("--no-cache", action="store_true",
                        help="recompute instead of using the result cache")
        sp.add_argument(
            "--cache-dir", default=None,
            help="result cache directory (default: $REPRO_CACHE_DIR or "
                 "~/.cache/repro)",
        )
        sp.add_argument(
            "--checkpoint-dir", default=None,
            help="warmup checkpoint store shared across rungs (default: "
                 "$REPRO_CHECKPOINT_DIR, else no checkpoint reuse)",
        )
        sp.add_argument(
            "--lanes", default=None, metavar="N|auto",
            help="coalesce seed replicates of each design point into one "
                 "lane-batched simulation (default: $REPRO_LANES or 1)",
        )
        sp.add_argument(
            "--dispatch", default=None,
            choices=["auto", "local", "pool", "workers"],
            help="execution backend per rung drain (see 'sweep run "
                 "--dispatch'; default: $REPRO_DISPATCH or auto)",
        )
        sp.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="worker processes for --dispatch workers "
                 "(0 = all cores; default: $REPRO_WORKERS or 2)",
        )
        sp.add_argument(
            "--stale-after", type=float, default=None, metavar="SECONDS",
            help="seconds without a heartbeat before a running row may "
                 "be reclaimed from a dead worker",
        )
        sp.add_argument(
            "--heartbeat", type=float, default=None, metavar="SECONDS",
            help="lease-refresh period for claimed rows",
        )
        sp.set_defaults(func=_cmd_search_run)

    sp = hsub.add_parser(
        "status",
        help="per-rung progress, promotions and commit ledgers of a search",
    )
    _search_common(sp)
    sp.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable search summary instead of text",
    )
    sp.set_defaults(func=_cmd_search_status)

    sp = hsub.add_parser(
        "report",
        help="explore/exploit report: rung funnel, final leaderboard with "
             "CIs, winner and cost fraction",
    )
    _search_common(sp)
    sp.add_argument("--json", default=None, metavar="FILE",
                    help="also write the search summary JSON to FILE")
    sp.set_defaults(func=_cmd_search_report)

    p = sub.add_parser("cache", help="maintain the on-disk result cache")
    csub = p.add_subparsers(dest="cache_command", required=True)
    sp = csub.add_parser(
        "prune", help="evict old cache entries (LRU by mtime)"
    )
    sp.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="shrink the cache to at most SIZE (suffixes K/M/G)",
    )
    sp.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="drop entries older than DAYS",
    )
    sp.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted (count and bytes) without "
             "deleting anything",
    )
    sp.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    sp.set_defaults(func=_cmd_cache_prune)

    p = sub.add_parser(
        "serve",
        help="run the campaign server (HTTP/JSON simulation-as-a-service)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8712,
                   help="bind port (0 = pick an ephemeral port)")
    p.add_argument("--job-threads", type=int, default=2,
                   help="concurrent job threads (default: 2); each job "
                        "fans its simulations out per the execution "
                        "flags below")
    p.add_argument("--queue-size", type=int, default=64,
                   help="pending-job bound; beyond it submissions get 503")
    p.add_argument("--state-dir", default=None,
                   help="service state directory (sweep DBs and, unless "
                        "--cache-dir is given, the shared result cache); "
                        "default: a private temporary directory")
    p.add_argument("--cache-dir", default=None,
                   help="shared result cache directory (default: "
                        "$REPRO_CACHE_DIR, else <state-dir>/cache)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="warmup checkpoint store (default: "
                        "$REPRO_CHECKPOINT_DIR, else <state-dir>/checkpoints)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes per sweep chunk (0 = all cores; "
                        "multiplies with --job-threads)")
    p.add_argument("--lanes", default=None, metavar="N|auto",
                   help="lane-batch seed replicates of each sweep point "
                        "(default: $REPRO_LANES or 1)")
    p.add_argument("--dispatch", default=None,
                   choices=["auto", "local", "pool", "workers"],
                   help="sweep execution backend (see 'sweep run "
                        "--dispatch'; default: $REPRO_DISPATCH or auto)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker processes for --dispatch workers "
                        "(0 = all cores; default: $REPRO_WORKERS or 2)")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="default extra attempts per failed sweep row when "
                        "a submission doesn't set its own")
    p.add_argument("--stale-after", type=float, default=None,
                   help="seconds without a heartbeat before a claimed sweep "
                        "row may be reclaimed (default: 300)")
    p.add_argument("--heartbeat", type=float, default=None,
                   help="heartbeat period for claimed sweep rows "
                        "(default: 10)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("client", help="talk to a running campaign server")
    p.add_argument("--url", default="http://127.0.0.1:8712",
                   help="campaign server base URL")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="request/wait timeout in seconds")
    csub = p.add_subparsers(dest="client_command", required=True)
    sp = csub.add_parser("run", help="submit a run payload (JSON)")
    sp.add_argument("payload",
                    help='run payload, e.g. \'{"workload": "mcf"}\'')
    sp.add_argument("--wait", action="store_true",
                    help="block until the job finishes and print its report")
    sp.set_defaults(func=_cmd_client)
    sp = csub.add_parser("sweep", help="submit a sweep spec file")
    sp.add_argument("spec", help="sweep spec file (.toml or .json)")
    sp.add_argument("--wait", action="store_true",
                    help="block until the job finishes and print its report")
    sp.set_defaults(func=_cmd_client)
    sp = csub.add_parser("search", help="submit a search spec file")
    sp.add_argument("spec", help="search spec file (.toml or .json)")
    sp.add_argument("--wait", action="store_true",
                    help="block until the job finishes and print its report")
    sp.set_defaults(func=_cmd_client)
    sp = csub.add_parser("status", help="print a job's status snapshot")
    sp.add_argument("job")
    sp.set_defaults(func=_cmd_client)
    sp = csub.add_parser("events", help="print a job's NDJSON event stream")
    sp.add_argument("job")
    sp.add_argument("--after", type=int, default=0, metavar="SEQ",
                    help="start from this sequence number")
    sp.add_argument("--no-follow", dest="follow", action="store_false",
                    help="print what exists and exit instead of streaming")
    sp.set_defaults(func=_cmd_client)
    sp = csub.add_parser("report", help="print a finished job's report")
    sp.add_argument("job")
    sp.add_argument("--format", choices=["markdown", "json"],
                    default="markdown")
    sp.set_defaults(func=_cmd_client)
    sp = csub.add_parser("stats", help="server and shared-store counters")
    sp.set_defaults(func=_cmd_client)

    p = sub.add_parser("trace", help="write a workload trace to a binary file")
    p.add_argument("workload")
    p.add_argument("output")
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
