"""Trace generation from workload specifications.

A :class:`Workload` compiles its :class:`~repro.workloads.spec.WorkloadSpec`
into a *static body* — a loop of basic blocks with fixed PCs, fixed register
wiring and per-slot stream assignments — and then unrolls that body into a
dynamic instruction trace.  Static PCs repeat across iterations, which is
what lets the PC-indexed structures under test (value predictors, branch
predictor, stride prefetcher, ILP-pred) actually learn.
"""

from __future__ import annotations

import random
import zlib

from repro.isa import Instruction, OpClass
from repro.workloads.spec import AddressPattern, WorkloadSpec
from repro.workloads.streams import AddressStream, BranchOutcomes, ValueStream

#: register used as the loop induction variable (kept serial but cheap)
_COUNTER_REG = 30
#: first general register handed out to generated slots
_FIRST_REG = 1
#: last register handed out to ordinary slots; higher registers are
#: reserved so long-lived values are never clobbered by the allocator
_LAST_REG = 23
#: dedicated pointer registers, one per chase stream: every pointer load
#: of stream s reads and writes _PTR_REG_BASE + s, which is exactly the
#: `node = node->next` register of a real list traversal and makes the
#: whole traversal one serial chain across blocks and iterations
_PTR_REG_BASE = 24

_VALUE_RANGE = 1 << 40

#: distance between the base addresses of distinct streams so regions of
#: different workloads/streams never overlap in the shared hierarchy
_STREAM_SPACING = 1 << 32

#: traces memoized per workload; experiments re-run the same
#: (length, seed) dozens of times per figure, so regeneration dominates
#: harness time without this
_TRACE_MEMO_MAX = 8

#: lane groups memoized per workload: a batched run asks for one trace
#: per seed, and a group of N seeds overflows the per-trace memo above,
#: so retries of a failed lane group would regenerate every trace.  The
#: group memo pins whole (length, seeds) requests instead — small, since
#: only the active campaign's group shape recurs
_GROUP_MEMO_MAX = 2


class _Slot:
    """One static instruction slot in the workload body."""

    __slots__ = (
        "pc", "op", "dst", "srcs", "stream", "offset", "vstream", "branch", "serial",
    )

    def __init__(
        self,
        pc: int,
        op: OpClass,
        dst: int | None = None,
        srcs: tuple[int, ...] = (),
        stream: int | None = None,
        offset: int = 0,
        vstream: int | None = None,
        branch: int | None = None,
        serial: bool = False,
    ) -> None:
        self.pc = pc
        self.op = op
        self.dst = dst
        self.srcs = srcs
        self.stream = stream
        self.offset = offset
        self.vstream = vstream
        self.branch = branch
        self.serial = serial


class Workload:
    """A named, reproducible synthetic benchmark.

    Args:
        spec: The declarative description to compile.

    Traces are deterministic in (spec, seed): two calls to :meth:`trace`
    with the same arguments yield identical instruction sequences.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.suite = spec.suite
        self._body = self._build_body()
        #: generated traces memoized per (resolved length, seed); bounded
        #: so length sweeps cannot pin every trace ever generated
        self._trace_memo: dict[tuple[int, int], list[Instruction]] = {}
        #: lane-group memo: (length, seeds) -> one trace per seed
        self._group_memo: dict[tuple, list[list[Instruction]]] = {}

    # ------------------------------------------------------------------
    def _seed(self, salt: int) -> int:
        return zlib.crc32(self.spec.name.encode()) ^ salt

    def _build_body(self) -> list[_Slot]:
        """Compile the spec into the static basic-block loop."""
        spec = self.spec
        rng = random.Random(self._seed(0xB0D1))
        weights = [m.weight for m in spec.value_mix]
        stream_weights = [st.weight for st in spec.streams]
        stream_ids = list(range(len(spec.streams)))
        slots: list[_Slot] = []
        next_reg = _FIRST_REG
        next_vstream = 0
        next_branch = 0
        pc = 0x10000

        def alloc_reg() -> int:
            nonlocal next_reg
            reg = next_reg
            next_reg += 1
            if next_reg > _LAST_REG:
                next_reg = _FIRST_REG
            return reg

        def emit(op: OpClass, **kwargs) -> _Slot:
            nonlocal pc
            slot = _Slot(pc, op, **kwargs)
            slots.append(slot)
            pc += 4
            return slot

        for _block in range(spec.blocks):
            recent: list[int] = [_COUNTER_REG]
            # which chase streams already advanced their pointer this block
            advanced: set[int] = set()
            for _group in range(spec.loads_per_block):
                stream_idx = rng.choices(stream_ids, weights=stream_weights)[0]
                stream_spec = spec.streams[stream_idx]
                chased = (
                    spec.serial_address
                    and stream_spec.pattern is AddressPattern.CHASE
                )
                vstream = next_vstream
                next_vstream += 1
                serial = False
                if chased and stream_idx not in advanced:
                    # the pointer load (`node = node->next`): reads and
                    # writes the stream's dedicated pointer register, so
                    # the whole traversal is one serial chain across
                    # blocks and iterations
                    serial = True
                    dst = _PTR_REG_BASE + stream_idx
                    srcs = (dst,)
                    advanced.add(stream_idx)
                elif chased:
                    # a field load: its address hangs off the pointer
                    dst = alloc_reg()
                    srcs = (_PTR_REG_BASE + stream_idx,)
                else:
                    dst = alloc_reg()
                    srcs = (_COUNTER_REG,)
                span = max(stream_spec.stride, 64)
                emit(
                    OpClass.LOAD,
                    dst=dst,
                    srcs=srcs,
                    stream=stream_idx,
                    offset=rng.randrange(0, span, 8),
                    vstream=vstream,
                    serial=serial,
                )
                recent.append(dst)
                # dependent chain behind the load
                prev = dst
                for _d in range(spec.chain_depth):
                    chain_dst = alloc_reg()
                    op = self._alu_op(rng)
                    emit(op, dst=chain_dst, srcs=(prev,))
                    prev = chain_dst
                recent.append(prev)
                # independent filler ops (the ILP a wide window can mine)
                for _f in range(spec.independent_ops):
                    filler_dst = alloc_reg()
                    op = self._alu_op(rng)
                    emit(op, dst=filler_dst, srcs=(_COUNTER_REG,))
            for _s in range(spec.stores_per_block):
                stream_idx = rng.choices(stream_ids, weights=stream_weights)[0]
                span = max(spec.streams[stream_idx].stride, 64)
                emit(
                    OpClass.STORE,
                    srcs=(recent[-1],),
                    stream=stream_idx,
                    offset=rng.randrange(0, span, 8),
                )
            # induction-variable bump keeps a cheap serial spine
            emit(OpClass.INT_ALU, dst=_COUNTER_REG, srcs=(_COUNTER_REG,))
            # most loop branches test induction state and resolve at once;
            # a data_branch_frac minority test loaded values and resolve
            # only when the load chain completes
            if rng.random() < spec.data_branch_frac:
                branch_src = recent[-1]
            else:
                branch_src = _COUNTER_REG
            emit(OpClass.BRANCH, srcs=(branch_src,), branch=next_branch)
            next_branch += 1

        # assign value classes to load slots by weight, deterministically
        vrng = random.Random(self._seed(0x5EED))
        self._vclass_of: list[int] = []
        for slot in slots:
            if slot.op is OpClass.LOAD:
                choice = vrng.choices(range(len(spec.value_mix)), weights=weights)[0]
                self._vclass_of.append(choice)
        return slots

    def _alu_op(self, rng: random.Random) -> OpClass:
        spec = self.spec
        if spec.fp_fraction and rng.random() < spec.fp_fraction:
            return OpClass.FP_MUL if rng.random() < 0.4 else OpClass.FP_ALU
        return OpClass.INT_MUL if rng.random() < 0.05 else OpClass.INT_ALU

    # ------------------------------------------------------------------
    @property
    def body_length(self) -> int:
        """Static instructions per loop iteration."""
        return len(self._body)

    def stream_regions(self) -> list[tuple[int, int]]:
        """(base address, region size in bytes) for each memory stream.

        Used by :func:`repro.simulate` to pre-warm the footprints that
        would be cache-resident in steady state.
        """
        return [
            ((i + 1) * _STREAM_SPACING, s.region_bytes)
            for i, s in enumerate(self.spec.streams)
        ]

    @property
    def static_loads(self) -> int:
        """Number of static load slots in the body."""
        return sum(1 for s in self._body if s.op is OpClass.LOAD)

    def trace(self, length: int | None = None, seed: int = 0) -> list[Instruction]:
        """Unroll the body into ``length`` dynamic instructions.

        Args:
            length: Trace length; defaults to the spec's ``default_length``.
            seed: Perturbs the dynamic streams (addresses, values, branch
                outcomes) without changing the static body, so repeated
                experiments can sample fresh behaviour.
        """
        spec = self.spec
        n = spec.default_length if length is None else length
        if n <= 0:
            raise ValueError("trace length must be positive")
        memo_key = (n, seed)
        cached = self._trace_memo.get(memo_key)
        if cached is not None:
            return cached
        rng = random.Random(self._seed(0xD1CE) ^ (seed * 0x9E3779B1))
        streams = [
            AddressStream(s, base=(i + 1) * _STREAM_SPACING, rng=rng)
            for i, s in enumerate(spec.streams)
        ]
        load_slots = [s for s in self._body if s.op is OpClass.LOAD]
        vstreams = [
            ValueStream(spec.value_mix[self._vclass_of[i]], rng)
            for i in range(len(load_slots))
        ]
        branches = [
            BranchOutcomes(spec.branch, rng)
            for s in self._body
            if s.op is OpClass.BRANCH
        ]
        out: list[Instruction] = []
        while len(out) < n:
            for stream in streams:
                stream.advance()
            for slot in self._body:
                if len(out) >= n:
                    break
                if slot.op is OpClass.LOAD:
                    addr = streams[slot.stream].addr(slot.offset)
                    value = vstreams[slot.vstream].next_value()
                    out.append(
                        Instruction(slot.pc, slot.op, slot.srcs, slot.dst, addr, value)
                    )
                elif slot.op is OpClass.STORE:
                    addr = streams[slot.stream].addr(slot.offset)
                    out.append(
                        Instruction(
                            slot.pc,
                            slot.op,
                            slot.srcs,
                            None,
                            addr,
                            rng.randrange(_VALUE_RANGE),
                        )
                    )
                elif slot.op is OpClass.BRANCH:
                    taken = branches[slot.branch].next_outcome()
                    out.append(
                        Instruction(slot.pc, slot.op, slot.srcs, taken=taken)
                    )
                else:
                    out.append(Instruction(slot.pc, slot.op, slot.srcs, slot.dst))
        # the engine treats traces as read-only, so the memoized list can
        # be shared between repeated simulations within this process
        if len(self._trace_memo) >= _TRACE_MEMO_MAX:
            self._trace_memo.pop(next(iter(self._trace_memo)))
        self._trace_memo[memo_key] = out
        return out

    def trace_many(
        self, length: int | None, seeds: tuple[int, ...] | list[int]
    ) -> list[list[Instruction]]:
        """One trace per seed, synthesized at most once per lane group.

        The lane-batched runner replicates a design point over N seeds; the
        per-trace memo holds only :data:`_TRACE_MEMO_MAX` entries, so a
        group larger than that would regenerate every trace on a retry.
        This memoizes the whole group under one key — a batched run (and
        any retry of it) synthesizes each trace exactly once.
        """
        n = self.spec.default_length if length is None else length
        key = (n, tuple(seeds))
        cached = self._group_memo.get(key)
        if cached is not None:
            return cached
        traces = [self.trace(n, seed=s) for s in seeds]
        if len(self._group_memo) >= _GROUP_MEMO_MAX:
            self._group_memo.pop(next(iter(self._group_memo)))
        self._group_memo[key] = traces
        return traces

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, suite={self.suite!r}, body={self.body_length})"
