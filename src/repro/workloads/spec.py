"""Declarative workload specifications.

A :class:`WorkloadSpec` captures, per modeled benchmark, the knobs that
drive every effect studied in the paper:

* **address streams** → cache-miss profile and prefetcher friendliness,
* **value mixes** → load-value predictability (what the value predictors
  can and cannot learn),
* **dependence shape** (``chain_depth`` / ``independent_ops`` /
  ``serial_address``) → how much ILP a wide window can find without value
  prediction,
* **branch model** → front-end quality.
"""

from __future__ import annotations

import dataclasses
import enum


class AddressPattern(enum.Enum):
    """How a memory stream walks its region."""

    #: linear walk with a fixed stride (prefetcher-friendly)
    SEQUENTIAL = "sequential"
    #: mostly-strided walk with random breaks (pointer-chase layouts)
    CHASE = "chase"
    #: uniform random within the region (prefetcher-hostile)
    RANDOM = "random"
    #: small region revisited repeatedly (cache resident)
    RESIDENT = "resident"


class ValueClass(enum.Enum):
    """What the values returned by a static load look like over time."""

    #: the same value every time (last-value / learned-value predictable)
    CONSTANT = "constant"
    #: arithmetic progression (stride / DFCM predictable)
    STRIDED = "strided"
    #: cycles through a small set of values (pattern predictable; the
    #: multiple-value experiments rely on several candidates being live)
    PATTERN = "pattern"
    #: essentially unpredictable
    RANDOM = "random"


class BranchModel(enum.Enum):
    """Outcome process for a static branch."""

    #: taken (period-1) of every (period) executions — loop back-edges
    LOOP = "loop"
    #: independent Bernoulli with probability ``param``
    BIASED = "biased"
    #: deterministic repeating pattern of length ``param``
    PATTERN = "pattern"


@dataclasses.dataclass(frozen=True)
class StreamSpec:
    """One memory address stream.

    Args:
        pattern: Walk type.
        region_bytes: Footprint; relative to the 64KB/512KB/4MB hierarchy
            this determines which level the stream lives in.
        stride: Byte step per loop iteration for SEQUENTIAL/CHASE walks.
        jump_prob: For CHASE — per-iteration probability of a random jump,
            which breaks prefetch streams and value strides together.
        weight: Relative probability a static memory slot binds to this
            stream; the lever that sets what fraction of a workload's
            accesses live in each footprint.
    """

    pattern: AddressPattern
    region_bytes: int
    stride: int = 64
    jump_prob: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.region_bytes <= 0:
            raise ValueError("region_bytes must be positive")
        if not 0.0 <= self.jump_prob <= 1.0:
            raise ValueError("jump_prob must be a probability")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")


@dataclasses.dataclass(frozen=True)
class ValueMix:
    """A weighted value class assigned to static loads.

    Args:
        vclass: The value behaviour.
        weight: Relative probability a static load gets this class.
        stride: Value delta per execution for STRIDED.
        nvalues: Cycle length for PATTERN.
        break_prob: For STRIDED/PATTERN — per-instance probability the
            stream re-seeds randomly (caps achievable accuracy).
    """

    vclass: ValueClass
    weight: float = 1.0
    stride: int = 8
    nvalues: int = 3
    break_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        if not 0.0 <= self.break_prob <= 1.0:
            raise ValueError("break_prob must be a probability")
        if self.nvalues < 1:
            raise ValueError("nvalues must be at least 1")


@dataclasses.dataclass(frozen=True)
class BranchSpec:
    """Outcome model shared by the static branches of a workload.

    ``param`` is the loop/pattern period or the taken probability,
    depending on the model.  ``noise`` flips a fraction of outcomes at
    random, bounding achievable branch-prediction accuracy.
    """

    model: BranchModel = BranchModel.LOOP
    param: float = 16
    noise: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError("noise must be a probability")


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Full description of one modeled benchmark.

    The dynamic trace is a loop over ``blocks`` basic blocks.  Each block
    contains ``loads_per_block`` load groups — a load, ``chain_depth``
    dependent ALU ops, and ``independent_ops`` independent filler ops —
    plus ``stores_per_block`` stores and a terminating branch.

    ``serial_address`` makes every load of a CHASE stream depend on its own
    previous instance (loop-carried pointer chase), the shape that defeats
    wide-window machines but not value prediction (Section 5.7).
    """

    name: str
    suite: str  # "int" or "fp"
    description: str
    streams: tuple[StreamSpec, ...]
    value_mix: tuple[ValueMix, ...]
    branch: BranchSpec = BranchSpec()
    blocks: int = 12
    loads_per_block: int = 3
    chain_depth: int = 3
    independent_ops: int = 4
    stores_per_block: int = 1
    fp_fraction: float = 0.0
    serial_address: bool = False
    #: fraction of block-ending branches that test *loaded data* (and so
    #: resolve only when the load chain completes); the rest test induction
    #: variables and resolve immediately, as most loop branches do
    data_branch_frac: float = 0.25
    default_length: int = 30_000

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ValueError("suite must be 'int' or 'fp'")
        if not self.streams:
            raise ValueError("at least one address stream is required")
        if not self.value_mix:
            raise ValueError("at least one value mix entry is required")
        if sum(m.weight for m in self.value_mix) <= 0:
            raise ValueError("value mix weights must sum to a positive value")
        if not 0.0 <= self.fp_fraction <= 1.0:
            raise ValueError("fp_fraction must be a probability")
        if not 0.0 <= self.data_branch_frac <= 1.0:
            raise ValueError("data_branch_frac must be a probability")
        for field in ("blocks", "loads_per_block", "chain_depth", "independent_ops"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")
        if self.blocks < 1 or self.loads_per_block < 1:
            raise ValueError("blocks and loads_per_block must be at least 1")
