"""Synthetic SPEC CPU2000 workload models.

The paper evaluates on SPEC CPU2000 traces taken at early single SimPoints.
Those binaries and traces are not available here, so this package provides
the documented substitution (see DESIGN.md): for every benchmark/input pair
appearing in the paper's figures there is a :class:`WorkloadSpec` whose
generated instruction trace pins the four properties the paper's effects
depend on — cache-miss profile, load-value predictability, dependence
structure behind loads, and branch predictability.

Use :func:`get_workload` / :data:`SPEC_INT` / :data:`SPEC_FP` to enumerate
the suite, and :meth:`Workload.trace` to materialize instructions.
"""

from repro.workloads.generator import Workload
from repro.workloads.io import (
    TraceFormatError,
    TraceSet,
    iter_trace,
    load_trace,
    load_trace_set,
    save_trace,
)
from repro.workloads.spec import (
    AddressPattern,
    BranchModel,
    BranchSpec,
    StreamSpec,
    ValueClass,
    ValueMix,
    WorkloadSpec,
)
from repro.workloads.suite import (
    ALL_WORKLOADS,
    SPEC_FP,
    SPEC_INT,
    get_workload,
    workload_names,
)

__all__ = [
    "ALL_WORKLOADS",
    "AddressPattern",
    "BranchModel",
    "BranchSpec",
    "SPEC_FP",
    "SPEC_INT",
    "StreamSpec",
    "TraceFormatError",
    "TraceSet",
    "ValueClass",
    "ValueMix",
    "Workload",
    "WorkloadSpec",
    "get_workload",
    "iter_trace",
    "load_trace",
    "load_trace_set",
    "save_trace",
    "workload_names",
]
