"""Stateful address and value stream walkers used by the trace generator.

Address semantics mirror how loop nests touch memory: a stream models one
data structure whose *cursor* advances once per loop iteration (``advance``)
— `node = node->next`, `i += 1` — while the static loads and stores of the
body read fields at fixed byte offsets from the cursor (``addr``).  This
gives every static PC a consistent per-iteration stride, which is what
PC-indexed hardware (stride prefetchers, value predictors) actually sees in
real programs.  RANDOM streams are the exception: every access draws a
fresh line, modeling hash/table lookups.
"""

from __future__ import annotations

import random

from repro.workloads.spec import (
    AddressPattern,
    BranchModel,
    BranchSpec,
    StreamSpec,
    ValueClass,
    ValueMix,
)

_LINE = 64
_VALUE_RANGE = 1 << 40


class AddressStream:
    """Walks one memory region according to its :class:`StreamSpec`."""

    def __init__(self, spec: StreamSpec, base: int, rng: random.Random) -> None:
        self.spec = spec
        self.base = base
        self.rng = rng
        self._pos = 0

    def advance(self) -> None:
        """Move the cursor one loop iteration forward."""
        spec = self.spec
        if spec.pattern is AddressPattern.RANDOM:
            return  # no cursor: every access is independent
        if (
            spec.pattern is AddressPattern.CHASE
            and spec.jump_prob
            and self.rng.random() < spec.jump_prob
        ):
            self._pos = self.rng.randrange(0, spec.region_bytes, _LINE)
            return
        self._pos = (self._pos + spec.stride) % spec.region_bytes

    def addr(self, offset: int) -> int:
        """Address of the field at ``offset`` bytes from the cursor."""
        spec = self.spec
        if spec.pattern is AddressPattern.RANDOM:
            return self.base + self.rng.randrange(0, spec.region_bytes, _LINE) + (
                offset % _LINE
            )
        return self.base + (self._pos + offset) % spec.region_bytes

    def slot_offset(self, rng: random.Random) -> int:
        """Pick a field offset for a static slot bound to this stream.

        Offsets spread across one stride span so that, over successive
        iterations, the body touches the span densely — the layout a
        compiler produces for struct walks and unrolled array loops.
        """
        span = max(self.spec.stride, _LINE)
        return rng.randrange(0, span, 8)


class ValueStream:
    """Produces the value sequence for one static load."""

    def __init__(self, mix: ValueMix, rng: random.Random) -> None:
        self.mix = mix
        self.rng = rng
        self._current = rng.randrange(_VALUE_RANGE)
        self._pattern = [rng.randrange(_VALUE_RANGE) for _ in range(max(1, mix.nvalues))]
        self._index = 0

    def next_value(self) -> int:
        """Produce the next load value."""
        mix = self.mix
        if mix.vclass is ValueClass.CONSTANT:
            if mix.break_prob and self.rng.random() < mix.break_prob:
                self._current = self.rng.randrange(_VALUE_RANGE)
            return self._current
        if mix.vclass is ValueClass.STRIDED:
            if mix.break_prob and self.rng.random() < mix.break_prob:
                self._current = self.rng.randrange(_VALUE_RANGE)
            value = self._current
            self._current = (self._current + mix.stride) % _VALUE_RANGE
            return value
        if mix.vclass is ValueClass.PATTERN:
            if mix.break_prob and self.rng.random() < mix.break_prob:
                # a stutter: the previous value repeats and the cycle
                # holds its phase — the bimodal-successor noise that gives
                # pattern predictors a concentrated secondary candidate
                return self._pattern[(self._index - 1) % len(self._pattern)]
            value = self._pattern[self._index]
            self._index = (self._index + 1) % len(self._pattern)
            return value
        return self.rng.randrange(_VALUE_RANGE)


class BranchOutcomes:
    """Produces the taken/not-taken sequence for one static branch.

    Each static branch gets its own phase/period drawn from the workload's
    :class:`BranchSpec`, so different branches are distinguishable to the
    predictor (as in real code).
    """

    def __init__(self, spec: BranchSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self._count = rng.randrange(max(1, int(spec.param)))
        if spec.model is BranchModel.PATTERN:
            period = max(2, int(spec.param))
            self._pattern = [rng.random() < 0.5 for _ in range(period)]
        else:
            self._pattern = []

    def next_outcome(self) -> bool:
        """Produce the next resolved branch direction."""
        spec = self.spec
        if spec.model is BranchModel.LOOP:
            period = max(2, int(spec.param))
            self._count = (self._count + 1) % period
            taken = self._count != 0
        elif spec.model is BranchModel.PATTERN:
            taken = self._pattern[self._count % len(self._pattern)]
            self._count += 1
        else:  # BIASED
            taken = self.rng.random() < spec.param
        if spec.noise and self.rng.random() < spec.noise:
            taken = not taken
        return taken
