"""The modeled SPEC CPU2000 suite.

One entry per benchmark/input pair shown in the paper's figures (Figures 1,
3, 4, 5).  Parameters pin each program's published *character* — memory
footprint and access pattern, load-value locality, dependence shape, and
branch behaviour — not its absolute IPC.  See DESIGN.md for the
substitution rationale and EXPERIMENTS.md for the calibration notes.

Calibration model against the Table 1 hierarchy (64KB L1 / 512KB L2 /
4MB L3 / 1000-cycle memory, aggressive stream prefetcher):

* RESIDENT streams <= 48KB live in the L1 after warm-up; ~256KB-2MB
  regions live in the L2/L3.
* SEQUENTIAL and low-jump CHASE walks are largely covered by the stream
  prefetcher (as on the paper's baseline); their residual cost is the
  prefetch fill latency.
* RANDOM streams over tens of MB, and CHASE jumps, produce the hard
  memory misses that threaded value prediction targets.  Their stream
  ``weight`` sets the miss spacing: roughly one memory miss per
  ``body/(loads*weight)`` instructions.
* ``serial_address`` threads a load's address through its own previous
  value — the dependence shape that defeats wide windows but not value
  prediction (Section 5.7).
"""

from __future__ import annotations

from repro.workloads.generator import Workload
from repro.workloads.spec import (
    AddressPattern,
    BranchModel,
    BranchSpec,
    StreamSpec,
    ValueMix,
    ValueClass,
    WorkloadSpec,
)

_KB = 1024
_MB = 1024 * 1024

# short aliases keep the table below readable
_SEQ = AddressPattern.SEQUENTIAL
_CHASE = AddressPattern.CHASE
_RAND = AddressPattern.RANDOM
_RES = AddressPattern.RESIDENT
_CONST = ValueClass.CONSTANT
_STRIDE = ValueClass.STRIDED
_PAT = ValueClass.PATTERN
_RANDV = ValueClass.RANDOM

_SPECS: dict[str, WorkloadSpec] = {}


def _define(spec: WorkloadSpec) -> None:
    if spec.name in _SPECS:
        raise ValueError(f"duplicate workload {spec.name}")
    _SPECS[spec.name] = spec


# ----------------------------------------------------------------------
# SPEC INT 2000
# ----------------------------------------------------------------------
_define(WorkloadSpec(
    name="gzip g", suite="int",
    description="compression, graphic input; hot window is L1-resident, "
                "little for value prediction to win",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.85),
             StreamSpec(_SEQ, 2 * _MB, stride=128, weight=0.15)),
    value_mix=(ValueMix(_CONST, 0.25), ValueMix(_STRIDE, 0.2, stride=1),
               ValueMix(_RANDV, 0.55)),
    branch=BranchSpec(BranchModel.PATTERN, 6, noise=0.03),
    blocks=10, loads_per_block=3, chain_depth=2, independent_ops=5,
))

_define(WorkloadSpec(
    name="gzip r", suite="int",
    description="compression, random input; as gzip g with slightly poorer "
                "locality on both axes",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.8),
             StreamSpec(_SEQ, 4 * _MB, stride=128, weight=0.2)),
    value_mix=(ValueMix(_CONST, 0.2), ValueMix(_STRIDE, 0.15, stride=1),
               ValueMix(_RANDV, 0.65)),
    branch=BranchSpec(BranchModel.PATTERN, 6, noise=0.035),
    blocks=10, loads_per_block=3, chain_depth=2, independent_ops=5,
))

_define(WorkloadSpec(
    name="vpr r", suite="int",
    description="place & route; serial netlist chase missing past the L3 "
                "with highly repetitive node values — a big MTVP winner",
    streams=(StreamSpec(_CHASE, 24 * _MB, stride=768, jump_prob=0.18,
                        weight=0.45),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.55)),
    value_mix=(ValueMix(_CONST, 0.5), ValueMix(_PAT, 0.3, nvalues=3, break_prob=0.12),
               ValueMix(_RANDV, 0.2)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.03),
    blocks=12, loads_per_block=4, chain_depth=3, independent_ops=4,
    serial_address=True,
))

_define(WorkloadSpec(
    name="gcc 1", suite="int",
    description="compiler, input 166; resident tables plus IR walks that "
                "spill past the L3",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.7),
             StreamSpec(_CHASE, 8 * _MB, stride=448, jump_prob=0.1,
                        weight=0.3)),
    value_mix=(ValueMix(_CONST, 0.35), ValueMix(_PAT, 0.2, nvalues=4, break_prob=0.12),
               ValueMix(_RANDV, 0.45)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.026),
    blocks=16, loads_per_block=3, chain_depth=2, independent_ops=5,
    serial_address=True,
))

_define(WorkloadSpec(
    name="gcc e", suite="int",
    description="compiler, expr input; the smallest gcc working set",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.78),
             StreamSpec(_CHASE, 3 * _MB, stride=448, jump_prob=0.3,
                        weight=0.22)),
    value_mix=(ValueMix(_CONST, 0.35), ValueMix(_PAT, 0.2, nvalues=4, break_prob=0.12),
               ValueMix(_RANDV, 0.45)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.022),
    blocks=16, loads_per_block=3, chain_depth=2, independent_ops=5,
))

_define(WorkloadSpec(
    name="gcc 2", suite="int",
    description="compiler, 200 input; the largest gcc IR, more hard misses",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.62),
             StreamSpec(_CHASE, 12 * _MB, stride=448, jump_prob=0.12,
                        weight=0.38)),
    value_mix=(ValueMix(_CONST, 0.35), ValueMix(_PAT, 0.15, nvalues=4, break_prob=0.12),
               ValueMix(_RANDV, 0.5)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.03),
    blocks=16, loads_per_block=3, chain_depth=2, independent_ops=5,
    serial_address=True,
))

_define(WorkloadSpec(
    name="gcc i", suite="int",
    description="compiler, integrate input; the most pointer-intensive gcc "
                "run, serial IR chases",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.65),
             StreamSpec(_CHASE, 8 * _MB, stride=448, jump_prob=0.12,
                        weight=0.35)),
    value_mix=(ValueMix(_CONST, 0.4), ValueMix(_PAT, 0.15, nvalues=4, break_prob=0.12),
               ValueMix(_RANDV, 0.45)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.026),
    blocks=16, loads_per_block=3, chain_depth=2, independent_ops=5,
    serial_address=True,
))

_define(WorkloadSpec(
    name="mcf", suite="int",
    description="network simplex; serial pointer chase over a ~100MB arc "
                "array with malloc-ordered (stride-predictable) pointers — "
                "the canonical MTVP winner",
    streams=(StreamSpec(_CHASE, 96 * _MB, stride=1088, jump_prob=0.15,
                        weight=0.6),
             StreamSpec(_RES, 32 * _KB, stride=64, weight=0.4)),
    value_mix=(ValueMix(_CONST, 0.45), ValueMix(_STRIDE, 0.3, stride=1088,
                                                break_prob=0.04),
               ValueMix(_RANDV, 0.25)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.018),
    blocks=8, loads_per_block=4, chain_depth=3, independent_ops=4,
    serial_address=True,
))

_define(WorkloadSpec(
    name="crafty", suite="int",
    description="chess; L1-resident bitboards, unpredictable values — "
                "value prediction rarely pays here",
    streams=(StreamSpec(_RES, 40 * _KB, stride=64, weight=0.9),
             StreamSpec(_RAND, 384 * _KB, weight=0.1)),
    value_mix=(ValueMix(_RANDV, 0.8), ValueMix(_CONST, 0.2)),
    branch=BranchSpec(BranchModel.PATTERN, 10, noise=0.04),
    blocks=14, loads_per_block=3, chain_depth=2, independent_ops=5,
))

_define(WorkloadSpec(
    name="parser", suite="int",
    description="link grammar; dictionary chase whose values cycle through "
                "more candidates than one prediction can follow (the "
                "multiple-value story of Section 5.6)",
    streams=(StreamSpec(_CHASE, 12 * _MB, stride=704, jump_prob=0.08,
                        weight=0.35),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.65)),
    value_mix=(ValueMix(_PAT, 0.45, nvalues=5, break_prob=0.4),
               ValueMix(_CONST, 0.1), ValueMix(_RANDV, 0.45)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.03),
    blocks=12, loads_per_block=3, chain_depth=2, independent_ops=4,
    serial_address=True,
))

_define(WorkloadSpec(
    name="eon r", suite="int",
    description="C++ ray tracer (rushmeier); resident scene, decent ILP, "
                "nothing for VP to chase",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.92),
             StreamSpec(_RAND, 512 * _KB, weight=0.08)),
    value_mix=(ValueMix(_CONST, 0.3), ValueMix(_RANDV, 0.7)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.014),
    blocks=10, loads_per_block=3, chain_depth=2, independent_ops=7,
    fp_fraction=0.2,
))

_define(WorkloadSpec(
    name="perlbmk", suite="int",
    description="perl interpreter; hash/opcode dispatch, mostly warm with "
                "occasional deep misses",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.8),
             StreamSpec(_CHASE, 2 * _MB, stride=320, jump_prob=0.4,
                        weight=0.2)),
    value_mix=(ValueMix(_CONST, 0.4), ValueMix(_PAT, 0.15, nvalues=3, break_prob=0.12),
               ValueMix(_RANDV, 0.45)),
    branch=BranchSpec(BranchModel.PATTERN, 6, noise=0.022),
    blocks=14, loads_per_block=3, chain_depth=2, independent_ops=4,
))

_define(WorkloadSpec(
    name="gap", suite="int",
    description="group theory; strided bag sweeps with a moderate hard-miss "
                "residue and strided element values",
    streams=(StreamSpec(_SEQ, 24 * _MB, stride=192, weight=0.55),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.33),
             StreamSpec(_RAND, 12 * _MB, weight=0.05)),
    value_mix=(ValueMix(_STRIDE, 0.35, stride=8), ValueMix(_CONST, 0.25),
               ValueMix(_RANDV, 0.4)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.014),
    blocks=12, loads_per_block=3, chain_depth=2, independent_ops=5,
))

_define(WorkloadSpec(
    name="vortex", suite="int",
    description="OO database; object-graph chase past the L3 with very "
                "repetitive field values (status words, type tags)",
    streams=(StreamSpec(_CHASE, 16 * _MB, stride=576, jump_prob=0.15,
                        weight=0.4),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.6)),
    value_mix=(ValueMix(_CONST, 0.55), ValueMix(_PAT, 0.2, nvalues=3, break_prob=0.12),
               ValueMix(_RANDV, 0.25)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.014),
    blocks=12, loads_per_block=4, chain_depth=2, independent_ops=5,
    serial_address=True,
))

_define(WorkloadSpec(
    name="bzip g", suite="int",
    description="bzip2, graphic input; block sorting in an L2-sized window",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.7),
             StreamSpec(_RAND, 1 * _MB, weight=0.2),
             StreamSpec(_SEQ, 2 * _MB, stride=64, weight=0.1)),
    value_mix=(ValueMix(_STRIDE, 0.25, stride=1), ValueMix(_CONST, 0.2),
               ValueMix(_RANDV, 0.55)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.03),
    blocks=10, loads_per_block=3, chain_depth=2, independent_ops=5,
))

_define(WorkloadSpec(
    name="bzip p", suite="int",
    description="bzip2, program input; slightly more regular than graphic",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.75),
             StreamSpec(_RAND, 768 * _KB, weight=0.15),
             StreamSpec(_SEQ, 2 * _MB, stride=64, weight=0.1)),
    value_mix=(ValueMix(_STRIDE, 0.3, stride=1), ValueMix(_CONST, 0.25),
               ValueMix(_RANDV, 0.45)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.026),
    blocks=10, loads_per_block=3, chain_depth=2, independent_ops=5,
))

_define(WorkloadSpec(
    name="twolf", suite="int",
    description="standard-cell placement; netlist chase with patterned cost "
                "values, a strong MTVP case",
    streams=(StreamSpec(_CHASE, 8 * _MB, stride=384, jump_prob=0.15,
                        weight=0.4),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.6)),
    value_mix=(ValueMix(_PAT, 0.35, nvalues=3, break_prob=0.12), ValueMix(_CONST, 0.35),
               ValueMix(_RANDV, 0.3)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.03),
    blocks=12, loads_per_block=3, chain_depth=2, independent_ops=5,
    serial_address=True,
))

# ----------------------------------------------------------------------
# SPEC FP 2000
# ----------------------------------------------------------------------
_define(WorkloadSpec(
    name="wupwise", suite="fp",
    description="lattice QCD; prefetch-covered unit strides with a small "
                "irregular residue, strided data values",
    streams=(StreamSpec(_SEQ, 32 * _MB, stride=256, weight=0.55),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.37),
             StreamSpec(_RAND, 24 * _MB, weight=0.08)),
    value_mix=(ValueMix(_STRIDE, 0.4, stride=16), ValueMix(_CONST, 0.3),
               ValueMix(_RANDV, 0.3)),
    branch=BranchSpec(BranchModel.LOOP, 64, noise=0.002),
    blocks=8, loads_per_block=4, chain_depth=2, independent_ops=10,
    fp_fraction=0.6,
))

_define(WorkloadSpec(
    name="swim", suite="fp",
    description="shallow water; giant covered stencil streams plus a hard "
                "irregular residue; values alternate among a few field "
                "states (the multiple-value showcase, Section 5.6)",
    streams=(StreamSpec(_SEQ, 64 * _MB, stride=256, weight=0.5),
             StreamSpec(_SEQ, 64 * _MB, stride=512, weight=0.28),
             StreamSpec(_RAND, 48 * _MB, weight=0.22)),
    value_mix=(ValueMix(_PAT, 0.62, nvalues=4, break_prob=0.4),
               ValueMix(_RANDV, 0.38)),
    branch=BranchSpec(BranchModel.LOOP, 128, noise=0.001),
    blocks=6, loads_per_block=5, chain_depth=2, independent_ops=12,
    fp_fraction=0.65,
))

_define(WorkloadSpec(
    name="mgrid", suite="fp",
    description="multigrid; covered strided sweeps at several granularities",
    streams=(StreamSpec(_SEQ, 24 * _MB, stride=256, weight=0.6),
             StreamSpec(_SEQ, 24 * _MB, stride=1024, weight=0.3),
             StreamSpec(_RAND, 16 * _MB, weight=0.1)),
    value_mix=(ValueMix(_STRIDE, 0.45, stride=8), ValueMix(_CONST, 0.25),
               ValueMix(_RANDV, 0.3)),
    branch=BranchSpec(BranchModel.LOOP, 64, noise=0.002),
    blocks=6, loads_per_block=4, chain_depth=2, independent_ops=11,
    fp_fraction=0.6,
))

_define(WorkloadSpec(
    name="applu", suite="fp",
    description="SSOR PDE solver; blocked strided accesses, modest residue",
    streams=(StreamSpec(_SEQ, 16 * _MB, stride=320, weight=0.62),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.28),
             StreamSpec(_RAND, 12 * _MB, weight=0.1)),
    value_mix=(ValueMix(_STRIDE, 0.35, stride=8), ValueMix(_CONST, 0.3),
               ValueMix(_RANDV, 0.35)),
    branch=BranchSpec(BranchModel.LOOP, 48, noise=0.003),
    blocks=8, loads_per_block=4, chain_depth=2, independent_ops=10,
    fp_fraction=0.6,
))

_define(WorkloadSpec(
    name="mesa", suite="fp",
    description="software rasterizer; resident state, very few deep misses",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.9),
             StreamSpec(_SEQ, 2 * _MB, stride=64, weight=0.1)),
    value_mix=(ValueMix(_CONST, 0.4), ValueMix(_RANDV, 0.6)),
    branch=BranchSpec(BranchModel.PATTERN, 8, noise=0.014),
    blocks=10, loads_per_block=3, chain_depth=2, independent_ops=7,
    fp_fraction=0.45,
))

_define(WorkloadSpec(
    name="galgel", suite="fp",
    description="Galerkin fluid dynamics; dense algebra whose coefficient "
                "loads are highly patterned, with a hard gather residue",
    streams=(StreamSpec(_SEQ, 8 * _MB, stride=256, weight=0.55),
             StreamSpec(_RAND, 12 * _MB, weight=0.18),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.27)),
    value_mix=(ValueMix(_CONST, 0.45), ValueMix(_PAT, 0.25, nvalues=3, break_prob=0.12),
               ValueMix(_RANDV, 0.3)),
    branch=BranchSpec(BranchModel.LOOP, 32, noise=0.004),
    blocks=8, loads_per_block=4, chain_depth=2, independent_ops=10,
    fp_fraction=0.6,
))

_define(WorkloadSpec(
    name="art 1", suite="fp",
    description="neural net, ref 1; scans a >L3 weight array with "
                "overwhelmingly saturated (constant) cell values — huge "
                "latency exposure and huge value locality together",
    streams=(StreamSpec(_RAND, 10 * _MB, weight=0.3),
             StreamSpec(_SEQ, 10 * _MB, stride=256, weight=0.7)),
    value_mix=(ValueMix(_CONST, 0.65), ValueMix(_PAT, 0.15, nvalues=2, break_prob=0.12),
               ValueMix(_RANDV, 0.2)),
    branch=BranchSpec(BranchModel.LOOP, 96, noise=0.002),
    blocks=6, loads_per_block=5, chain_depth=2, independent_ops=8,
    fp_fraction=0.55,
))

_define(WorkloadSpec(
    name="art 4", suite="fp",
    description="neural net, ref 4; as art 1 with a different mix of "
                "saturated cells",
    streams=(StreamSpec(_RAND, 12 * _MB, weight=0.26),
             StreamSpec(_SEQ, 12 * _MB, stride=256, weight=0.74)),
    value_mix=(ValueMix(_CONST, 0.55), ValueMix(_PAT, 0.2, nvalues=2, break_prob=0.12),
               ValueMix(_RANDV, 0.25)),
    branch=BranchSpec(BranchModel.LOOP, 96, noise=0.002),
    blocks=6, loads_per_block=5, chain_depth=2, independent_ops=8,
    fp_fraction=0.55,
))

_define(WorkloadSpec(
    name="equake", suite="fp",
    description="earthquake FEM; serial irregular mesh chase with moderate "
                "value locality",
    streams=(StreamSpec(_CHASE, 20 * _MB, stride=896, jump_prob=0.07,
                        weight=0.3),
             StreamSpec(_SEQ, 8 * _MB, stride=256, weight=0.65)),
    value_mix=(ValueMix(_CONST, 0.35), ValueMix(_STRIDE, 0.2, stride=24),
               ValueMix(_RANDV, 0.45)),
    branch=BranchSpec(BranchModel.LOOP, 48, noise=0.004),
    blocks=8, loads_per_block=4, chain_depth=2, independent_ops=9,
    fp_fraction=0.55, serial_address=True,
))

_define(WorkloadSpec(
    name="facerec", suite="fp",
    description="face recognition; covered gallery sweeps with a gather "
                "residue, patterned features",
    streams=(StreamSpec(_SEQ, 16 * _MB, stride=256, weight=0.65),
             StreamSpec(_RAND, 8 * _MB, weight=0.12),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.23)),
    value_mix=(ValueMix(_PAT, 0.35, nvalues=3, break_prob=0.12), ValueMix(_CONST, 0.25),
               ValueMix(_RANDV, 0.4)),
    branch=BranchSpec(BranchModel.LOOP, 64, noise=0.003),
    blocks=8, loads_per_block=4, chain_depth=2, independent_ops=9,
    fp_fraction=0.55,
))

_define(WorkloadSpec(
    name="ammp", suite="fp",
    description="molecular dynamics; serial neighbour-list chase with poor "
                "value locality — latency exposure VP struggles to exploit "
                "with realistic predictors",
    streams=(StreamSpec(_CHASE, 28 * _MB, stride=1216, jump_prob=0.08,
                        weight=0.25),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.7)),
    value_mix=(ValueMix(_RANDV, 0.65), ValueMix(_CONST, 0.35)),
    branch=BranchSpec(BranchModel.LOOP, 32, noise=0.01),
    blocks=8, loads_per_block=4, chain_depth=2, independent_ops=8,
    fp_fraction=0.55, serial_address=True,
))

_define(WorkloadSpec(
    name="lucas", suite="fp",
    description="Lucas-Lehmer; giant covered FFT sweeps, strided values",
    streams=(StreamSpec(_SEQ, 64 * _MB, stride=512, weight=0.62),
             StreamSpec(_SEQ, 64 * _MB, stride=256, weight=0.3),
             StreamSpec(_RAND, 32 * _MB, weight=0.08)),
    value_mix=(ValueMix(_STRIDE, 0.4, stride=32), ValueMix(_CONST, 0.2),
               ValueMix(_RANDV, 0.4)),
    branch=BranchSpec(BranchModel.LOOP, 128, noise=0.001),
    blocks=6, loads_per_block=4, chain_depth=2, independent_ops=11,
    fp_fraction=0.65,
))

_define(WorkloadSpec(
    name="fma3d", suite="fp",
    description="crash FEM; mixed regular/irregular element data",
    streams=(StreamSpec(_SEQ, 12 * _MB, stride=256, weight=0.55),
             StreamSpec(_CHASE, 12 * _MB, stride=640, jump_prob=0.4,
                        weight=0.25),
             StreamSpec(_RES, 48 * _KB, stride=64, weight=0.2)),
    value_mix=(ValueMix(_CONST, 0.3), ValueMix(_STRIDE, 0.25, stride=16),
               ValueMix(_RANDV, 0.45)),
    branch=BranchSpec(BranchModel.LOOP, 48, noise=0.005),
    blocks=8, loads_per_block=4, chain_depth=2, independent_ops=9,
    fp_fraction=0.55,
))

_define(WorkloadSpec(
    name="sixtrack", suite="fp",
    description="particle tracking; small hot loops, effectively resident",
    streams=(StreamSpec(_RES, 48 * _KB, stride=64, weight=0.85),
             StreamSpec(_SEQ, 1 * _MB, stride=64, weight=0.15)),
    value_mix=(ValueMix(_CONST, 0.35), ValueMix(_STRIDE, 0.2, stride=8),
               ValueMix(_RANDV, 0.45)),
    branch=BranchSpec(BranchModel.LOOP, 32, noise=0.003),
    blocks=8, loads_per_block=3, chain_depth=2, independent_ops=10,
    fp_fraction=0.6,
))

_define(WorkloadSpec(
    name="apsi", suite="fp",
    description="meteorology; covered 3D grid sweeps, small residue",
    streams=(StreamSpec(_SEQ, 12 * _MB, stride=256, weight=0.6),
             StreamSpec(_SEQ, 12 * _MB, stride=768, weight=0.28),
             StreamSpec(_RAND, 8 * _MB, weight=0.12)),
    value_mix=(ValueMix(_STRIDE, 0.3, stride=8), ValueMix(_CONST, 0.3),
               ValueMix(_RANDV, 0.4)),
    branch=BranchSpec(BranchModel.LOOP, 48, noise=0.003),
    blocks=8, loads_per_block=4, chain_depth=2, independent_ops=9,
    fp_fraction=0.6,
))

# ----------------------------------------------------------------------
# public accessors
# ----------------------------------------------------------------------

#: workload names in figure order
SPEC_INT: tuple[str, ...] = tuple(n for n, s in _SPECS.items() if s.suite == "int")
SPEC_FP: tuple[str, ...] = tuple(n for n, s in _SPECS.items() if s.suite == "fp")
ALL_WORKLOADS: tuple[str, ...] = SPEC_INT + SPEC_FP

_CACHE: dict[str, Workload] = {}


def get_workload(name: str) -> Workload:
    """Return the (cached) compiled workload for ``name``.

    Raises:
        KeyError: If the name is not part of the modeled suite.
    """
    if name not in _SPECS:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(ALL_WORKLOADS)}"
        )
    wl = _CACHE.get(name)
    if wl is None:
        wl = Workload(_SPECS[name])
        _CACHE[name] = wl
    return wl


def workload_names(suite: str | None = None) -> tuple[str, ...]:
    """Names in the suite: "int", "fp", or None for all."""
    if suite is None:
        return ALL_WORKLOADS
    if suite == "int":
        return SPEC_INT
    if suite == "fp":
        return SPEC_FP
    raise ValueError("suite must be 'int', 'fp' or None")
