"""Binary trace files: external trace ingestion and archival.

A compact fixed-record format so generated workloads (or traces converted
from other tools) can be stored, diffed and re-simulated bit-identically.
This module is the simulator's *ingestion boundary*: everything that
arrives from outside — converted pin/DynamoRIO traces, traces shipped
between machines, multi-program bundles for the SMT co-schedule — enters
through :func:`load_trace` / :func:`load_trace_set`, so this is where
malformed input must die with a useful error instead of corrupting a run.

Record layout (little-endian, 32 bytes per instruction):

=======  =====  ==========================================================
offset   type   field
=======  =====  ==========================================================
0        u32    pc
4        u8     op class
5        i8     dst register (-1 = none)
6        u8     source count (0-3)
7        u8     flags (bit0: has addr, bit1: has value, bit2: taken,
                bit3: has taken)
8        3*u8   source registers (padded with 0)
11       u8     reserved
12       u64    address (0 when absent)
20       u64    value (0 when absent)
28       u32    reserved
=======  =====  ==========================================================

The file begins with a 16-byte header: magic ``b"RVPT"``, format version
(u32), instruction count (u64).

Loading *streams*: records decode incrementally from bounded read chunks
(:func:`iter_trace`), so a malformed file fails fast at the offending
record — identified by record number — without first materializing
gigabytes, and converters can filter/transform without holding two copies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.isa import Instruction, OpClass

_MAGIC = b"RVPT"
_VERSION = 1
_HEADER = struct.Struct("<4sIQ")
_RECORD = struct.Struct("<IbbBB3sBQQI")

_FLAG_ADDR = 1
_FLAG_VALUE = 2
_FLAG_TAKEN = 4
_FLAG_HAS_TAKEN = 8

#: records decoded per read chunk while streaming (128 KiB of file)
_CHUNK_RECORDS = 4096

_VALID_OPS = frozenset(int(op) for op in OpClass)


class TraceFormatError(ValueError):
    """A trace file violates the format contract.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    callers keep working; the message always names the file and, for
    per-record faults, the zero-based record number.
    """


def save_trace(trace: Iterable[Instruction], path: str | Path) -> None:
    """Write ``trace`` to ``path`` in the binary trace format.

    Accepts any iterable, but needs the count up front for the header, so
    a non-list iterable is materialized once.
    """
    if not isinstance(trace, (list, tuple)):
        trace = list(trace)
    path = Path(path)
    with path.open("wb") as f:
        f.write(_HEADER.pack(_MAGIC, _VERSION, len(trace)))
        for inst in trace:
            flags = 0
            if inst.addr is not None:
                flags |= _FLAG_ADDR
            if inst.value is not None:
                flags |= _FLAG_VALUE
            if inst.taken is not None:
                flags |= _FLAG_HAS_TAKEN
                if inst.taken:
                    flags |= _FLAG_TAKEN
            srcs = bytes(inst.srcs) + b"\x00" * (3 - len(inst.srcs))
            f.write(
                _RECORD.pack(
                    inst.pc,
                    int(inst.op),
                    inst.dst if inst.dst is not None else -1,
                    len(inst.srcs),
                    flags,
                    srcs,
                    0,
                    inst.addr or 0,
                    inst.value or 0,
                    0,
                )
            )


def _decode_record(path: Path, index: int, fields) -> Instruction:
    """One validated record → Instruction; faults name the record."""
    pc, op, dst, nsrcs, flags, srcs, _r0, addr, value, _r1 = fields
    if op not in _VALID_OPS:
        raise TraceFormatError(
            f"{path}: record {index}: unknown op class {op}"
        )
    if nsrcs > 3:
        raise TraceFormatError(
            f"{path}: record {index}: source count {nsrcs} exceeds 3"
        )
    opclass = OpClass(op)
    has_addr = bool(flags & _FLAG_ADDR)
    if opclass.is_memory and not has_addr:
        raise TraceFormatError(
            f"{path}: record {index}: {opclass.name} without an address"
        )
    taken = None
    if flags & _FLAG_HAS_TAKEN:
        taken = bool(flags & _FLAG_TAKEN)
    elif opclass is OpClass.BRANCH:
        raise TraceFormatError(
            f"{path}: record {index}: BRANCH without a taken outcome"
        )
    try:
        return Instruction(
            pc=pc,
            op=opclass,
            srcs=tuple(srcs[:nsrcs]),
            dst=dst if dst >= 0 else None,
            addr=addr if has_addr else None,
            value=value if flags & _FLAG_VALUE else None,
            taken=taken,
        )
    except ValueError as exc:
        # register-range faults from the Instruction constructor
        raise TraceFormatError(f"{path}: record {index}: {exc}") from None


def iter_trace(path: str | Path) -> Iterator[Instruction]:
    """Stream instructions from a trace file, validating each record.

    Decodes from bounded read chunks rather than one ``read_bytes`` of
    the whole file, so arbitrarily large external traces can be inspected
    or filtered with O(chunk) memory.  Any malformed record raises
    :class:`TraceFormatError` naming the file and the zero-based record
    number; a file shorter or longer than its header's count is rejected.
    """
    path = Path(path)
    record_size = _RECORD.size
    chunk_bytes = record_size * _CHUNK_RECORDS
    with path.open("rb") as f:
        header = f.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError(f"{path}: not a trace file (too short)")
        magic, version, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        if version != _VERSION:
            raise TraceFormatError(f"{path}: unsupported version {version}")
        index = 0
        pending = b""
        while index < count:
            chunk = pending + f.read(chunk_bytes - len(pending))
            if len(chunk) < record_size:
                raise TraceFormatError(
                    f"{path}: truncated at record {index} "
                    f"(header promised {count} records)"
                )
            usable = len(chunk) - (len(chunk) % record_size)
            for fields in _RECORD.iter_unpack(chunk[:usable]):
                yield _decode_record(path, index, fields)
                index += 1
                if index == count:
                    break
            pending = chunk[usable:]
        if pending or f.read(1):
            raise TraceFormatError(
                f"{path}: trailing bytes after {count} records"
            )


def load_trace(path: str | Path) -> list[Instruction]:
    """Read a trace previously written by :func:`save_trace`.

    Raises:
        TraceFormatError: On a bad magic number, unsupported version, a
            truncated or oversized file, or any malformed record (unknown
            op class, out-of-range register, memory op without an address,
            branch without an outcome) — the error names the record.
    """
    return list(iter_trace(path))


@dataclass(frozen=True)
class TraceSet:
    """A named bundle of program traces, one per SMT hardware context.

    The multi-program execution model (``mode=smt``) co-schedules
    independent workloads; a TraceSet is how such a bundle moves through
    the API — :func:`repro.simulate` accepts one wherever a workload name
    is accepted and fans its traces out over the configured contexts.
    A single-trace TraceSet is also valid input for every single-program
    mode.

    Attributes:
        name: Bundle label (used in stats attribution and cache keys).
        traces: The program traces, index-aligned with ``labels``.
        labels: Human-readable per-program labels (file stems by default).
    """

    name: str
    traces: tuple[list[Instruction], ...]
    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.traces:
            raise ValueError("TraceSet requires at least one trace")
        if len(self.labels) != len(self.traces):
            raise ValueError("TraceSet labels must match traces one-to-one")

    def __len__(self) -> int:
        return len(self.traces)


def load_trace_set(
    paths: Iterable[str | Path], name: str | None = None
) -> TraceSet:
    """Load several trace files into one :class:`TraceSet`.

    Each file is streamed and validated independently (see
    :func:`iter_trace`); a fault in any file aborts the whole load with
    that file's record-numbered error.
    """
    paths = [Path(p) for p in paths]
    if not paths:
        raise ValueError("load_trace_set requires at least one path")
    traces = tuple(load_trace(p) for p in paths)
    labels = tuple(p.stem for p in paths)
    return TraceSet(
        name=name if name is not None else "+".join(labels),
        traces=traces,
        labels=labels,
    )
