"""Binary trace files: save and load instruction traces.

A compact fixed-record format so generated workloads (or traces converted
from other tools) can be stored, diffed and re-simulated bit-identically.

Record layout (little-endian, 32 bytes per instruction):

=======  =====  ==========================================================
offset   type   field
=======  =====  ==========================================================
0        u32    pc
4        u8     op class
5        i8     dst register (-1 = none)
6        u8     source count (0-3)
7        u8     flags (bit0: has addr, bit1: has value, bit2: taken,
                bit3: has taken)
8        3*u8   source registers (padded with 0)
11       u8     reserved
12       u64    address (0 when absent)
20       u64    value (0 when absent)
28       u32    reserved
=======  =====  ==========================================================

The file begins with a 16-byte header: magic ``b"RVPT"``, format version
(u32), instruction count (u64).
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.isa import Instruction, OpClass

_MAGIC = b"RVPT"
_VERSION = 1
_HEADER = struct.Struct("<4sIQ")
_RECORD = struct.Struct("<IbbBB3sBQQI")

_FLAG_ADDR = 1
_FLAG_VALUE = 2
_FLAG_TAKEN = 4
_FLAG_HAS_TAKEN = 8


def save_trace(trace: list[Instruction], path: str | Path) -> None:
    """Write ``trace`` to ``path`` in the binary trace format."""
    path = Path(path)
    with path.open("wb") as f:
        f.write(_HEADER.pack(_MAGIC, _VERSION, len(trace)))
        for inst in trace:
            flags = 0
            if inst.addr is not None:
                flags |= _FLAG_ADDR
            if inst.value is not None:
                flags |= _FLAG_VALUE
            if inst.taken is not None:
                flags |= _FLAG_HAS_TAKEN
                if inst.taken:
                    flags |= _FLAG_TAKEN
            srcs = bytes(inst.srcs) + b"\x00" * (3 - len(inst.srcs))
            f.write(
                _RECORD.pack(
                    inst.pc,
                    int(inst.op),
                    inst.dst if inst.dst is not None else -1,
                    len(inst.srcs),
                    flags,
                    srcs,
                    0,
                    inst.addr or 0,
                    inst.value or 0,
                    0,
                )
            )


def load_trace(path: str | Path) -> list[Instruction]:
    """Read a trace previously written by :func:`save_trace`.

    Raises:
        ValueError: On a bad magic number, unsupported version, or a
            truncated file.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise ValueError(f"{path}: not a trace file (too short)")
    magic, version, count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError(f"{path}: bad magic {magic!r}")
    if version != _VERSION:
        raise ValueError(f"{path}: unsupported version {version}")
    expected = _HEADER.size + count * _RECORD.size
    if len(data) < expected:
        raise ValueError(f"{path}: truncated ({len(data)} < {expected} bytes)")
    trace: list[Instruction] = []
    offset = _HEADER.size
    for _ in range(count):
        pc, op, dst, nsrcs, flags, srcs, _r0, addr, value, _r1 = _RECORD.unpack_from(
            data, offset
        )
        offset += _RECORD.size
        taken = None
        if flags & _FLAG_HAS_TAKEN:
            taken = bool(flags & _FLAG_TAKEN)
        trace.append(
            Instruction(
                pc=pc,
                op=OpClass(op),
                srcs=tuple(srcs[:nsrcs]),
                dst=dst if dst >= 0 else None,
                addr=addr if flags & _FLAG_ADDR else None,
                value=value if flags & _FLAG_VALUE else None,
                taken=taken,
            )
        )
    return trace
