"""Dispatchers: where a sweep campaign's simulations execute.

See :mod:`repro.dispatch.base` for the protocol and the mode table;
:func:`~repro.sweep.run_sweep` picks an implementation from its
:class:`~repro.harness.policy.ExecutionPolicy` (``dispatch="local" |
"pool" | "workers" | "auto"``, or a ready-made instance).
"""

from repro.dispatch.base import Dispatcher, get_dispatcher
from repro.dispatch.local import LocalDispatcher
from repro.dispatch.pool import PoolDispatcher
from repro.dispatch.workers import WorkerDispatcher

__all__ = [
    "Dispatcher",
    "LocalDispatcher",
    "PoolDispatcher",
    "WorkerDispatcher",
    "get_dispatcher",
]
