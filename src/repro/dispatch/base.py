"""The Dispatcher protocol and mode → implementation resolution.

A *dispatcher* decides where a sweep campaign's simulations execute; the
campaign logic (expansion, leases, commits, summaries) is identical
across all of them because every implementation ultimately runs
:func:`~repro.sweep.drain.drain_store` against the shared store — the
only question is in how many processes, spawned by whom:

========== =========================================================
``local``  serially, in the calling process
``pool``   in the calling process, fanning chunks over a
           ``ProcessPoolExecutor`` (the historical ``jobs > 1`` path)
``workers`` in ``N`` standalone ``repro.sweep.worker`` subprocesses,
           spawned and supervised by a coordinator
========== =========================================================

Anything with a compatible ``run`` method is a dispatcher —
:class:`~repro.harness.policy.ExecutionPolicy` accepts instances in its
``dispatch`` field, which is how tests inject instrumented dispatchers
(e.g. to reach a worker's process handle and kill it).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.harness.policy import ExecutionPolicy
from repro.sweep.store import ResultStore


@runtime_checkable
class Dispatcher(Protocol):
    """Executes a sweep's runnable rows; returns drain counters.

    Implementations receive the shared store, the sweep name, the full
    :class:`~repro.harness.policy.ExecutionPolicy`, and the campaign's
    row scope / interval protocol, and must return a counter dict with
    at least the keys :func:`~repro.sweep.drain.drain_store` produces
    (``simulated``/``retried``/``lost``/``shed``/``ckpt_*``).
    """

    def run(
        self,
        store: ResultStore,
        sweep: str,
        policy: ExecutionPolicy,
        *,
        mine: set | None = None,
        warmup: int = 0,
        sample: int | None = None,
        echo=None,
        progress=None,
    ) -> dict: ...


def get_dispatcher(policy: ExecutionPolicy) -> "Dispatcher":
    """The dispatcher a policy names (mode string or ready instance)."""
    from repro.dispatch.local import LocalDispatcher
    from repro.dispatch.pool import PoolDispatcher
    from repro.dispatch.workers import WorkerDispatcher

    mode = policy.resolved_dispatch()
    if isinstance(mode, str):
        if mode == "local":
            return LocalDispatcher()
        if mode == "pool":
            return PoolDispatcher()
        if mode == "workers":
            return WorkerDispatcher()
        raise ValueError(f"unknown dispatch mode {mode!r}")
    return mode  # a ready-made Dispatcher instance passed through policy
