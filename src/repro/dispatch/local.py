"""Serial in-process dispatch — the simplest, most debuggable mode."""

from __future__ import annotations

from repro.harness.policy import ExecutionPolicy
from repro.sweep.drain import drain_store, worker_token
from repro.sweep.store import ResultStore


class LocalDispatcher:
    """Drain the store serially in the calling process.

    ``jobs`` is forced to 1 — *local* means no process fan-out at all,
    which keeps tracebacks direct and checkpoint/cache counters exact
    (the warmup audit path).  Lane batching still applies; it is a
    kernel-shape choice, not a process one.
    """

    name = "local"

    def run(
        self,
        store: ResultStore,
        sweep: str,
        policy: ExecutionPolicy,
        *,
        mine: set | None = None,
        warmup: int = 0,
        sample: int | None = None,
        echo=None,
        progress=None,
    ) -> dict:
        return drain_store(
            store,
            sweep,
            policy.merged(jobs=1),
            mine=mine,
            owner=worker_token(),
            warmup=warmup,
            sample=sample,
            echo=echo,
            progress=progress,
        )
