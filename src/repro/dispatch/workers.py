"""Coordinator dispatch: standalone worker subprocesses over one store.

:class:`WorkerDispatcher` turns a sweep campaign into ``N`` independent
``python -m repro.sweep.worker`` processes sharing the SQLite store, the
result cache and the warmup checkpoint store.  The coordinator itself
simulates nothing — it spawns workers with every execution setting
passed explicitly on their command line, watches their exits, respawns
casualties while work remains (a bounded budget prevents crash loops),
and folds each worker's final JSON counter line into one campaign-level
counter dict.

Fault model: a worker that dies silently (SIGKILL, OOM) stops
heartbeating; its leases go stale after ``stale_after`` seconds and the
survivors reclaim them through the ordinary
:meth:`~repro.sweep.store.ResultStore.claim` path.  Owner-conditional
commits make the handover exactly-once, and the shared cache usually
turns the re-run into a hit.  The coordinator's respawn only restores
*capacity*; correctness never depends on it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.harness.policy import ExecutionPolicy
from repro.sweep.store import ResultStore


def _repro_pythonpath() -> str:
    """A PYTHONPATH guaranteeing workers can import this very ``repro``."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if existing and src_root not in existing.split(os.pathsep):
        return src_root + os.pathsep + existing
    return existing or src_root


class _Worker:
    """One supervised worker subprocess and its captured stdout."""

    def __init__(self, worker_id: str, proc: subprocess.Popen) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.lines: list[str] = []
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self) -> None:
        for line in self.proc.stdout:
            self.lines.append(line.rstrip("\n"))

    def counters(self) -> dict | None:
        """The final JSON counter line, if the worker got that far."""
        self._reader.join(timeout=2.0)
        for line in reversed(self.lines):
            if line.startswith("{"):
                try:
                    return json.loads(line)
                except ValueError:
                    continue
        return None


class WorkerDispatcher:
    """Spawn and supervise ``repro.sweep.worker`` subprocesses.

    Args:
        workers: Worker-process count (``None`` defers to the policy,
            then ``$REPRO_WORKERS``, then 2).
        poll: Seconds between supervision sweeps.
        respawns: Replacement budget for dead workers (``None`` = twice
            the worker count).

    The spawned :class:`subprocess.Popen` handles are exposed as
    ``procs`` (in spawn order, replacements appended) — chaos tests
    reach in and SIGKILL one mid-campaign.
    """

    name = "workers"

    #: defaults for the lease-liveness protocol when the policy is silent —
    #: distributed campaigns *must* run with a staleness window, unlike the
    #: single-process modes where ``None`` is the historical default
    DEFAULT_STALE_AFTER = 60.0

    def __init__(
        self,
        workers: int | None = None,
        poll: float = 0.2,
        respawns: int | None = None,
    ) -> None:
        self.workers = workers
        self.poll = poll
        self.respawns = respawns
        self.procs: list[subprocess.Popen] = []
        self.spawned = 0

    # ------------------------------------------------------------------
    def _spawn(
        self, worker_id: str, argv: list[str], env: dict
    ) -> _Worker:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.sweep.worker",
             "--worker-id", worker_id, *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        self.procs.append(proc)
        self.spawned += 1
        return _Worker(worker_id, proc)

    def run(
        self,
        store: ResultStore,
        sweep: str,
        policy: ExecutionPolicy,
        *,
        mine: set | None = None,
        warmup: int = 0,
        sample: int | None = None,
        echo=None,
        progress=None,
    ) -> dict:
        say = echo if echo is not None else (lambda *_: None)
        n = self.workers if self.workers is not None else policy.resolved_workers()
        n = max(1, n)
        budget = self.respawns if self.respawns is not None else 2 * n
        retries = policy.retries if policy.retries is not None else 0
        stale_after = (
            policy.stale_after
            if policy.stale_after is not None
            else self.DEFAULT_STALE_AFTER
        )
        heartbeat = (
            policy.heartbeat
            if policy.heartbeat is not None
            else max(0.5, min(10.0, stale_after / 6.0))
        )
        cache_obj = policy.resolved_cache()
        ckpt_store = policy.resolved_checkpoints() if warmup else None

        argv = [
            "--db", str(store.path),
            "--sweep", sweep,
            "--peers", str(n),
            "--retries", str(retries),
            "--stale-after", str(stale_after),
            "--heartbeat", str(heartbeat),
            "--quiet",
        ]
        if policy.jobs is not None:
            argv += ["--jobs", str(policy.jobs)]
        if policy.lanes is not None:
            argv += ["--lanes", str(policy.lanes)]
        if policy.chunk is not None:
            argv += ["--chunk", str(policy.chunk)]
        if cache_obj is not None:
            argv += ["--cache-dir", str(cache_obj.directory)]
        else:
            argv += ["--no-cache"]
        if ckpt_store is not None:
            argv += ["--checkpoint-dir", str(ckpt_store.directory)]
        if warmup:
            argv += ["--warmup", str(warmup)]
        if sample is not None:
            argv += ["--sample", str(sample)]
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()

        def work_remains() -> bool:
            return bool(
                store.runnable(sweep, retries, stale_after=stale_after)
                or store.running(sweep, stale_after=stale_after)
            )

        def done_among_mine() -> tuple[int, int]:
            rows = store.rows(sweep)
            if mine is not None:
                rows = [
                    r for r in rows if (r["point_id"], r["seed"]) in mine
                ]
            done = sum(1 for r in rows if r["status"] == "done")
            return done, len(rows)

        say(f"{sweep}: spawning {n} workers on {store.path}")
        alive = [self._spawn(f"w{i}", argv, env) for i in range(n)]
        finished: list[_Worker] = []
        last_done = -1

        while alive:
            still = []
            for worker in alive:
                code = worker.proc.poll()
                if code is None:
                    still.append(worker)
                    continue
                finished.append(worker)
                if code != 0:
                    say(
                        f"{sweep}: worker {worker.worker_id} exited "
                        f"with code {code}"
                    )
                    if budget > 0 and work_remains():
                        budget -= 1
                        say(f"{sweep}: respawning {worker.worker_id}")
                        still.append(
                            self._spawn(worker.worker_id, argv, env)
                        )
            alive = still
            if not alive and budget > 0 and work_remains():
                # every worker exited cleanly yet rows remain (e.g. they
                # all drained while a claim was live and gave up after a
                # kill): field one more to finish the tail
                budget -= 1
                alive.append(self._spawn(f"w{self.spawned}", argv, env))
            if progress is not None:
                done, total = done_among_mine()
                if done != last_done:
                    last_done = done
                    try:
                        progress({
                            "source": "workers",
                            "completed": done,
                            "total": total,
                        })
                    except Exception:
                        pass
            if alive:
                time.sleep(self.poll)

        totals = {
            "simulated": 0, "retried": 0, "lost": 0, "shed": 0,
            "ckpt_enabled": 0, "ckpt_hits": 0, "ckpt_stores": 0,
            "workers": self.spawned,
        }
        for worker in finished:
            counters = worker.counters()
            if counters is None:
                continue  # killed before its summary line: counts lost
            for key in (
                "simulated", "retried", "lost", "shed",
                "ckpt_enabled", "ckpt_hits", "ckpt_stores",
            ):
                totals[key] += int(counters.get(key, 0))
        totals["ckpt_enabled"] = int(bool(totals["ckpt_enabled"]))
        return totals
