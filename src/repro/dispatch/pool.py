"""Process-pool dispatch — the historical ``jobs > 1`` fan-out."""

from __future__ import annotations

import os

from repro.harness.policy import ExecutionPolicy
from repro.sweep.drain import drain_store, worker_token
from repro.sweep.store import ResultStore


class PoolDispatcher:
    """Drain the store in-process, fanning each chunk over a pool.

    Chunks of leased rows go through
    :func:`~repro.harness.parallel.run_simulations` with ``jobs``
    workers (a ``ProcessPoolExecutor``); claims, commits and heartbeats
    stay in the coordinating process.  Asking for the pool explicitly
    while ``jobs`` resolves to 1 means "use every core" — serial callers
    want ``local`` instead.
    """

    name = "pool"

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = jobs

    def run(
        self,
        store: ResultStore,
        sweep: str,
        policy: ExecutionPolicy,
        *,
        mine: set | None = None,
        warmup: int = 0,
        sample: int | None = None,
        echo=None,
        progress=None,
    ) -> dict:
        jobs = self.jobs if self.jobs is not None else policy.resolved_jobs()
        if jobs <= 1:
            jobs = os.cpu_count() or 1
        return drain_store(
            store,
            sweep,
            policy.merged(jobs=jobs),
            mine=mine,
            owner=worker_token(),
            warmup=warmup,
            sample=sample,
            echo=echo,
            progress=progress,
        )
