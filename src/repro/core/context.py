"""Per-hardware-context state for the timestamp pipeline."""

from __future__ import annotations

from collections import deque

from repro.isa import NUM_LOGICAL_REGS


class ThreadContext:
    """One SMT hardware context executing a window of the trace.

    A context owns everything the paper replicates per thread: the logical
    register map (here, per-register *ready times* — values live in the
    trace), its reorder buffer, fetch stream state, branch history, and the
    bookkeeping used for confirmation and kill (spawn order, visibility set
    for the tagged store buffer, parent/children links).

    Attributes of note:
        order: Monotonic spawn order; the store-buffer tag from Section 3.3.
        visible: Spawn orders whose buffered stores this thread may consume
            (its ancestors and itself).
        arch_limit: Trace position of the load this context spawned on.
            Commits at or before this position are architectural when the
            context is (or becomes) non-speculative; commits beyond it
            belong to the doomed parent path (no-stall fetch policy only).
    """

    __slots__ = (
        "slot",
        "order",
        "pos",
        "start_pos",
        "trace",
        "trace_len",
        "stream",
        "speculative",
        "parent",
        "children",
        "spawn_record_as_child",
        "reg_ready",
        "visible",
        "rob",
        "last_fetch",
        "last_commit",
        "commit_cycle",
        "commits_in_cycle",
        "bhist",
        "fetched_count",
        "within_commits",
        "beyond_commits",
        "last_within_commit",
        "arch_limit",
        "pending_spawn",
        "spawn_record_as_parent",
        "alive",
        "blocked",
        "sb_paused",
        "done",
        "resume_at",
        "pending_measures",
        "measures_min_end",
    )

    def __init__(
        self,
        slot: int,
        order: int,
        pos: int,
        start_time: int = 0,
        parent: "ThreadContext | None" = None,
        speculative: bool = False,
    ) -> None:
        self.slot = slot
        self.order = order
        self.pos = pos
        self.start_pos = pos
        self.speculative = speculative
        self.parent = parent
        self.children: list[ThreadContext] = []
        #: the spawn record in which this context is (currently) the child
        self.spawn_record_as_child = None
        if parent is None:
            self.reg_ready = [0] * NUM_LOGICAL_REGS
            self.visible: tuple[int, ...] = (order,)
            self.bhist = 0
            #: instruction stream this context executes; the engine assigns
            #: root contexts their trace (roots are built before the engine
            #: knows them), children inherit the parent's
            self.trace: list | None = None
            self.trace_len = 0
            #: index of ``trace`` in the engine's trace list (0 except for
            #: multi-program roots); what snapshots persist instead of the
            #: trace itself
            self.stream = 0
        else:
            # flash register-map copy (Section 3.2): ready times carry over
            self.reg_ready = parent.reg_ready.copy()
            self.visible = parent.visible + (order,)
            self.bhist = parent.bhist
            self.trace = parent.trace
            self.trace_len = parent.trace_len
            self.stream = parent.stream
        self.rob: deque[int] = deque()
        self.last_fetch = start_time
        self.last_commit = start_time
        self.commit_cycle = -1
        self.commits_in_cycle = 0
        self.fetched_count = 0
        self.within_commits = 0
        self.beyond_commits = 0
        self.last_within_commit = start_time
        self.arch_limit: int | None = None
        #: True while this thread's own value-predicted spawn is unresolved;
        #: each thread tracks at most one outstanding spawn (the paper's
        #: single-entry child table)
        self.pending_spawn = False
        #: this thread's own outstanding spawn record (it is the parent);
        #: lets a kill void the record directly instead of scanning the
        #: engine's whole pending heap
        self.spawn_record_as_parent = None
        self.alive = True
        self.blocked = False
        self.sb_paused = False
        self.done = False
        self.resume_at = start_time
        #: deferred ILP-pred episodes: (pc, kind, start_t, end_t, start_count)
        self.pending_measures: deque[tuple[int, int, int, int, int]] = deque()
        #: earliest ``end_t`` among pending measures, or a huge sentinel
        #: when none are pending — lets the engine's per-instruction hot
        #: path skip the finalize scan without touching the deque
        self.measures_min_end = 1 << 62

    #: scalar fields copied verbatim by snapshot/restore; link fields
    #: (parent, children, spawn records) serialize as ids at the engine
    #: level, which alone knows the whole context graph
    _SNAP_FIELDS = (
        "slot",
        "order",
        "pos",
        "start_pos",
        "stream",
        "speculative",
        "last_fetch",
        "last_commit",
        "commit_cycle",
        "commits_in_cycle",
        "bhist",
        "fetched_count",
        "within_commits",
        "beyond_commits",
        "last_within_commit",
        "arch_limit",
        "pending_spawn",
        "alive",
        "blocked",
        "sb_paused",
        "done",
        "resume_at",
        "measures_min_end",
    )

    def snapshot(self) -> dict:
        """Serialize this context's own state to a versioned dict.

        Links to other contexts and spawn records are *not* included —
        the engine serializes those as ids and re-wires them on restore.
        """
        data: dict = {"version": 1}
        for field in self._SNAP_FIELDS:
            data[field] = getattr(self, field)
        data["reg_ready"] = list(self.reg_ready)
        data["visible"] = list(self.visible)
        data["rob"] = list(self.rob)
        data["pending_measures"] = [list(m) for m in self.pending_measures]
        return data

    def restore(self, data: dict) -> None:
        """Restore own state from a :meth:`snapshot` payload (links untouched)."""
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported ThreadContext snapshot version: "
                f"{data.get('version')!r}"
            )
        for field in self._SNAP_FIELDS:
            setattr(self, field, data[field])
        self.reg_ready = list(data["reg_ready"])
        self.visible = tuple(data["visible"])
        self.rob = deque(data["rob"])
        self.pending_measures = deque(tuple(m) for m in data["pending_measures"])

    @classmethod
    def from_snapshot(cls, data: dict) -> "ThreadContext":
        """Build an unlinked context shell from a snapshot payload."""
        ctx = cls.__new__(cls)
        ctx.parent = None
        ctx.children = []
        ctx.spawn_record_as_child = None
        ctx.spawn_record_as_parent = None
        # the engine re-binds the trace from the restored stream index; the
        # shell starts unbound so a missed re-bind fails loudly
        ctx.trace = None
        ctx.trace_len = 0
        ctx.restore(data)
        return ctx

    # ------------------------------------------------------------------
    @property
    def runnable(self) -> bool:
        """True when the scheduler may step this context."""
        return self.alive and not (self.blocked or self.sb_paused or self.done)

    @property
    def next_time_hint(self) -> int:
        """Approximate time of the next instruction (scheduler ordering key)."""
        return self.last_fetch if self.last_fetch > self.resume_at else self.resume_at

    def commit_slot(self, t: int, width: int) -> int:
        """In-order commit with per-thread commit bandwidth.

        Returns the cycle this instruction commits: at or after ``t``, not
        before the previous commit, at most ``width`` per cycle.
        """
        cycle = t if t > self.last_commit else self.last_commit
        if cycle == self.commit_cycle:
            if self.commits_in_cycle >= width:
                cycle += 1
                self.commit_cycle = cycle
                self.commits_in_cycle = 1
            else:
                self.commits_in_cycle += 1
        else:
            self.commit_cycle = cycle
            self.commits_in_cycle = 1
        self.last_commit = cycle
        return cycle

    def __repr__(self) -> str:
        flags = "".join(
            f
            for f, on in (
                ("S", self.speculative),
                ("B", self.blocked),
                ("P", self.sb_paused),
                ("D", self.done),
            )
            if on
        )
        return f"ThreadContext(slot={self.slot}, order={self.order}, pos={self.pos}, {flags})"
