"""Prophet-style speculative multithreading (SPMT).

A thread spawns at a control-flow boundary — a branch — and starts
executing ``spmt_skip`` instructions *ahead* of the parent, with its
live-ins pre-computed: every register reads ready at the spawn latency,
modeling Prophet's pre-computation slice delivering the live-in set with
the spawn.  The parent keeps executing the skipped region; when it
reaches the child's start position the spawn resolves *positionally*
(there is no load value to wait for, unlike MTVP's time-ordered pending
heap):

* if the control speculation held (the spawning branch was correctly
  predicted at spawn time), the parent retires into the child exactly as
  a confirmed MTVP spawn would — same store-buffer promotion, same
  context splice, same commit accounting;
* otherwise the child and everything it spawned squash through the
  ordinary kill machinery, and the parent continues into the region the
  child wrongly ran ahead of.

The squash criterion folds all control *and* live-in misspeculation into
the spawn-point branch prediction: a trace-driven simulator executes the
one real path, so "the child ran the wrong path" is modeled as losing the
work rather than executing wrong instructions.
"""

from __future__ import annotations

from repro.core.config import SimMode
from repro.core.context import ThreadContext
from repro.core.engine.records import SpawnRecord
from repro.core.modes.base import ExecutionModel
from repro.isa import NUM_LOGICAL_REGS


class SpmtModel(ExecutionModel):
    """Spawn on branches ahead of the parent; verify by position."""

    key = "spmt"
    spawn_capable = True
    spawn_on_branches = True
    lockstep_safe = False

    def on_branch(self, engine, ctx, inst, t_queue, t_complete, predicted_ok):
        if ctx.pending_spawn:
            return
        start = ctx.pos + 1 + engine._spmt_skip
        if start >= ctx.trace_len:
            # too close to the end: the skipped region must leave the
            # child at least one instruction to run
            return
        slot = engine._free_slot()
        if slot is None:
            engine.stats.spawn_denied_no_context += 1
            return
        record = SpawnRecord(
            resolve_time=0,
            parent=ctx,
            actual=1,
            pc=inst.pc,
            start_time=t_queue,
            kind=SimMode.SPMT,
        )
        record.start_global = engine._global_fetched
        record.resolve_pos = start
        spawn_ready = t_queue + engine._spawn_latency
        child = ThreadContext(
            slot=slot,
            order=engine._alloc_order(),
            pos=start,
            start_time=spawn_ready,
            parent=ctx,
            speculative=True,
        )
        # pre-computed live-ins: the spawn slice delivers the whole live-in
        # set with the spawn, so the child never waits on parent in-flight
        # values (Prophet's latency-tolerance mechanism)
        child.reg_ready = [spawn_ready] * NUM_LOGICAL_REGS
        child.spawn_record_as_child = record
        ctx.children.append(child)
        engine._contexts[slot] = child
        record.children.append((child, 1 if predicted_ok else 0))
        engine.stats.spawns += 1
        engine.stats.spmt_spawns += 1
        # the parent's remaining work is exactly the skipped region; its
        # commits there are architectural, the child owns everything after
        ctx.arch_limit = start - 1
        ctx.pending_spawn = True
        ctx.spawn_record_as_parent = record
        # NOT pushed onto the time-ordered pending heap: the step kernel
        # resolves this record when the parent's position reaches `start`
        obs = engine._obs
        if obs is not None:
            obs.predict(t_queue, ctx.order, inst.pc, "spmt", start)
            obs.spawn(t_queue, ctx.order, child.order, inst.pc, start)
            obs.context_count(t_queue, len(engine._alive_contexts()))

    # ------------------------------------------------------------------
    # verify / squash
    # ------------------------------------------------------------------
    def child_wins(self, record, child, value):
        # value carries the control-speculation validity bit set at spawn
        return bool(value)

    def on_mispredict(self, engine, record, resolve_time):
        engine.stats.spmt_squashes += 1
