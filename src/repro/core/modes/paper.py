"""The four HPCA-05 paper modes as :class:`ExecutionModel` strategies.

Each class reproduces, operation for operation, the behaviour the staged
engine used to select with inline ``SimMode`` branches — the golden-digest
suite holds every one of these modes to bit-identity with the pre-refactor
engine, so the call order into the predictor, selector and stats counters
below is load-bearing.  Do not "clean up" the sequencing without re-running
the golden tests.
"""

from __future__ import annotations

from repro.core.config import SimMode
from repro.core.modes.base import ExecutionModel
from repro.select import PredictionKind


class BaselineModel(ExecutionModel):
    """No value prediction at all — the speedup denominator everywhere."""

    key = "baseline"
    single_context = True


class _ResolvingModel(ExecutionModel):
    """Shared verify/squash attribution for the spawning paper modes.

    Resolution always charges the selector an MTVP-kind episode — for
    spawn-only records too, exactly as the inline code did (the selector
    learns spawn worth, not prediction kind).
    """

    def on_mispredict(self, engine, record, resolve_time):
        engine.selector.record(
            record.pc,
            PredictionKind.MTVP,
            0,
            max(1, resolve_time - record.start_time),
        )

    def on_confirm(self, engine, record, winner, resolve_time):
        engine.selector.record(
            record.pc,
            PredictionKind.MTVP,
            max(0, engine._global_fetched - record.start_global),
            max(1, resolve_time - record.start_time),
            committed=winner.within_commits,
        )


class SpawnOnlyModel(_ResolvingModel):
    """Section 5.7's 'spawn only' machine: split window, no prediction.

    The child waits for the load's real value, so any alive child is the
    survivor at resolution.
    """

    key = "spawn_only"
    uses_value_prediction = True
    spawn_capable = True

    def handle_load_prediction(
        self, engine, ctx, inst, t_queue, t_complete, expected_level
    ):
        stats = engine.stats
        # every unpredicted load contributes a no-prediction episode so the
        # ILP-pred baseline exists even for PCs that always hit the L1
        # (those are exactly the loads it must learn not to spawn on)
        spawn_possible = self.spawn_possible(engine, ctx)
        kind = engine.selector.choose(inst, spawn_possible, expected_level)
        if kind is not PredictionKind.MTVP or not spawn_possible:
            if kind is PredictionKind.MTVP:
                stats.spawn_denied_no_context += 1
            engine._defer_measure(
                ctx, inst.pc, PredictionKind.NONE, t_queue, t_complete
            )
            return t_complete, None
        # spawn-only: the child waits for the real value (no VP)
        if engine._obs is not None:
            engine._obs.predict(
                t_queue, ctx.order, inst.pc, "spawn", inst.value or 0
            )
        record = engine._spawn(
            ctx, inst, [(inst.value or 0, t_complete)], t_queue, t_complete,
            SimMode.SPAWN_ONLY,
        )
        return t_complete, record

    def child_wins(self, record, child, value):
        return True


class _PredictiveModel(_ResolvingModel):
    """The shared STVP/MTVP load path; subclasses set the routing flags."""

    uses_value_prediction = True
    #: demote MTVP selector choices to STVP (the single-threaded machine)
    demote_to_stvp = False
    #: count confident predictions lost to context exhaustion
    count_denied_spawns = False

    def handle_load_prediction(
        self, engine, ctx, inst, t_queue, t_complete, expected_level
    ):
        stats = engine.stats
        predictor = engine.predictor
        spawn_possible = self.spawn_possible(engine, ctx)

        prediction = predictor.predict(inst)
        if prediction is None:
            engine._defer_measure(
                ctx, inst.pc, PredictionKind.NONE, t_queue, t_complete
            )
            return t_complete, None

        if self.count_denied_spawns and not spawn_possible:
            # a confident prediction arrived while every context was busy —
            # the lost-opportunity statistic behind the thread-count studies
            stats.spawn_denied_no_context += 1

        kind = engine.selector.choose(inst, spawn_possible, expected_level)
        if self.demote_to_stvp and kind is PredictionKind.MTVP:
            kind = PredictionKind.STVP
        if kind is PredictionKind.NONE:
            stats.declined_predictions += 1
            engine._defer_measure(
                ctx, inst.pc, PredictionKind.NONE, t_queue, t_complete
            )
            return t_complete, None

        # Figure 5 instrumentation: was the right value available even when
        # the primary prediction is wrong?
        if engine._collect_multivalue:
            stats.followed_predictions += 1
            if prediction.value != inst.value:
                candidates = predictor.predict_all(inst)
                if any(p.value == inst.value for p in candidates):
                    stats.primary_wrong_candidate_present += 1

        if kind is PredictionKind.MTVP and not spawn_possible:
            kind = PredictionKind.STVP

        if kind is PredictionKind.STVP:
            stats.stvp_predictions += 1
            correct = prediction.value == inst.value
            predictor.record_outcome(correct)
            if engine._obs is not None:
                engine._obs.predict(
                    t_queue, ctx.order, inst.pc, "stvp", prediction.value
                )
                engine._obs.stvp_outcome(t_complete, ctx.order, inst.pc, correct)
            engine._defer_measure(
                ctx, inst.pc, PredictionKind.STVP, t_queue, t_complete
            )
            if correct:
                stats.stvp_correct += 1
                return t_queue, None
            stats.stvp_incorrect += 1
            # selective re-issue: dependents re-execute once the true value
            # arrives; commit was never early, so only the dependents pay
            return t_complete + engine._reissue_penalty, None

        # MTVP: spawn one thread per followed value (multi-value capable)
        values: list[tuple[int, int]] = []
        spawn_ready = t_queue + engine._spawn_latency
        if engine._multi_value > 1:
            for cand in predictor.predict_all(inst)[: engine._multi_value]:
                values.append((cand.value, spawn_ready))
        else:
            values.append((prediction.value, spawn_ready))
        stats.mtvp_predictions += 1
        if engine._obs is not None:
            engine._obs.predict(
                t_queue, ctx.order, inst.pc, "mtvp", prediction.value
            )
        record = engine._spawn(ctx, inst, values, t_queue, t_complete, SimMode.MTVP)
        return t_complete, record


class StvpModel(_PredictiveModel):
    """Single-threaded value prediction with selective re-issue recovery."""

    key = "stvp"
    single_context = True
    demote_to_stvp = True


class MtvpModel(_PredictiveModel):
    """Threaded value prediction — the paper's contribution."""

    key = "mtvp"
    spawn_capable = True
    count_denied_spawns = True

    def child_wins(self, record, child, value):
        return value == record.actual

    def on_mispredict(self, engine, record, resolve_time):
        engine.stats.mtvp_incorrect += 1
        engine.predictor.record_outcome(False)
        super().on_mispredict(engine, record, resolve_time)

    def on_confirm(self, engine, record, winner, resolve_time):
        engine.stats.mtvp_correct += 1
        engine.predictor.record_outcome(True)
        super().on_confirm(engine, record, winner, resolve_time)
