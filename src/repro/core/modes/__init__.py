"""Execution models: the mode-policy strategy layer of the engine.

One :class:`~repro.core.modes.base.ExecutionModel` per simulation mode,
registered in the same string-keyed :class:`~repro.registry.Registry` the
value predictors and load selectors use.  The registry keys equal the
``SimMode`` enum values, so every spelling that already travels through
configs, caches, snapshots and sweep specs resolves directly::

    >>> from repro.core.modes import names, resolve_model
    >>> names()
    ('baseline', 'stvp', 'spawn_only', 'mtvp', 'smt', 'spmt')
    >>> resolve_model("mtvp").spawn_capable
    True

Models are stateless; :func:`resolve_model` hands out one shared instance
per mode.
"""

from __future__ import annotations

from repro.core.modes.base import ExecutionModel
from repro.core.modes.paper import (
    BaselineModel,
    MtvpModel,
    SpawnOnlyModel,
    StvpModel,
)
from repro.core.modes.smt import SmtModel
from repro.core.modes.spmt import SpmtModel
from repro.registry import Registry

#: the execution-model registry, keyed by ``SimMode`` value
MODELS = Registry(
    "execution model",
    {
        "baseline": BaselineModel,
        "stvp": StvpModel,
        "spawn_only": SpawnOnlyModel,
        "mtvp": MtvpModel,
        "smt": SmtModel,
        "spmt": SpmtModel,
    },
)

_instances: dict[str, ExecutionModel] = {}


def names() -> tuple[str, ...]:
    """Registered execution-model names, in presentation order."""
    return MODELS.names()


def get(name: str) -> type[ExecutionModel]:
    """The model class registered under ``name``."""
    return MODELS.get(name)


def resolve_model(mode) -> ExecutionModel:
    """The shared model instance for a ``SimMode`` member or its string key."""
    key = getattr(mode, "value", mode)
    model = _instances.get(key)
    if model is None:
        model = _instances[key] = MODELS.create(key)
    return model


__all__ = [
    "BaselineModel",
    "ExecutionModel",
    "MODELS",
    "MtvpModel",
    "SmtModel",
    "SpawnOnlyModel",
    "SpmtModel",
    "StvpModel",
    "get",
    "names",
    "resolve_model",
]
