"""Multi-program SMT co-scheduling: N independent workloads, one core.

The substrate the paper's machine descends from (and the setting of
Durbhakula's multithreaded branch-prediction study): every hardware
context runs its *own* program, and the interesting measurement is
interference — how much slower each program runs when co-scheduled over
the shared instruction queues, rename pool, issue ports, fetch bandwidth
and cache hierarchy than it would run alone.

No speculation of any kind: no value prediction, no spawns, no store
buffering (every context is non-speculative, so stores go straight to the
shared hierarchy, which is itself a genuine interference channel).  The
scheduler breaks time-hint ties ICOUNT-style — the context with the
fewest fetched instructions goes first — so no program starves even when
their clocks synchronize on a shared structural stall.
"""

from __future__ import annotations

from repro.core.modes.base import ExecutionModel


class SmtModel(ExecutionModel):
    """N workload contexts co-scheduled over the shared pipeline."""

    key = "smt"
    multi_program = True
    lockstep_safe = False

    def context_priority(self, ctx) -> int:
        # ICOUNT fairness: among contexts ready at the same cycle, favor
        # the one that has made the least forward progress
        return ctx.fetched_count

    def finalize_stats(self, engine) -> None:
        rows = []
        for ctx in sorted(
            (c for c in engine._contexts if c is not None),
            key=lambda c: c.stream,
        ):
            cycles = ctx.last_within_commit
            rows.append(
                {
                    "stream": ctx.stream,
                    "instructions": ctx.within_commits,
                    "cycles": cycles,
                    "ipc": round(ctx.within_commits / cycles, 6) if cycles else 0.0,
                }
            )
        engine.stats.per_context = rows
