"""The :class:`ExecutionModel` protocol: pluggable per-mode engine policy.

Everything the staged engine used to decide by branching on ``SimMode``
inline lives here as a strategy object: whether loads go through the
value-prediction path at all, when a spawn is eligible, how the
prediction kind is routed, how an outstanding spawn is verified or
squashed, how resolutions attribute statistics, and how contexts are
prioritized by the scheduler.  The engine binds one (stateless, shared)
model instance at construction and consults it only at mode-policy
decision points — the per-instruction hot path still reads plain engine
attributes that the model populated once.

Models hold **no per-run state**; every method receives the engine.  That
keeps one module-level instance per mode shareable across engines,
processes and snapshots (a snapshot stores the mode string; restore
re-resolves the model from the registry).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import ThreadContext
    from repro.core.engine.records import SpawnRecord
    from repro.isa import Instruction
    from repro.memory import MemLevel


class ExecutionModel:
    """Base strategy object; subclasses override flags and policy hooks.

    Class attributes (the *capability flags* the engine hoists into its
    hot-loop bindings at construction):

    ``uses_value_prediction``
        Loads enter :meth:`handle_load_prediction`; False routes every
        load through the plain baseline timing path.
    ``spawn_capable``
        The model may allocate speculative contexts on predicted loads
        (the MTVP/spawn-only family).  Gates the spawn-eligibility check.
    ``spawn_on_branches``
        The step kernel offers every branch to :meth:`on_branch` and
        checks for position-triggered resolutions after each step (the
        SPMT family).
    ``single_context``
        Config normalization forces ``num_contexts = 1``.
    ``multi_program``
        The engine runs one root context per entry of its trace list
        (the SMT co-schedule family); requires ``traces=`` at
        construction and disables functional fast-forward.
    ``lockstep_safe``
        The lane-batched lockstep kernel may replay this model's step
        sequence.  Models that spawn outside the load-prediction path or
        schedule several root contexts must opt out.
    ``context_priority``
        ``None``, or a method ``(ctx) -> int`` used as the scheduler's
        tie-break between contexts with equal time hints (smaller wins).
        Leaving it ``None`` keeps the optimized slot-order scheduler.
    """

    #: registry key; equals the ``SimMode`` value it implements
    key: str = ""

    uses_value_prediction: bool = False
    spawn_capable: bool = False
    spawn_on_branches: bool = False
    single_context: bool = False
    multi_program: bool = False
    lockstep_safe: bool = True
    context_priority = None

    # ------------------------------------------------------------------
    # spawn eligibility
    # ------------------------------------------------------------------
    def spawn_possible(self, engine, ctx: "ThreadContext") -> bool:
        """Whether ``ctx`` may spawn a speculative child right now.

        The short-circuit order is load-bearing for determinism *and*
        speed: non-spawning models never scan the slot table.
        """
        return (
            self.spawn_capable
            and not ctx.pending_spawn
            and engine._free_slot() is not None
        )

    # ------------------------------------------------------------------
    # prediction-kind routing (the load path)
    # ------------------------------------------------------------------
    def handle_load_prediction(
        self,
        engine,
        ctx: "ThreadContext",
        inst: "Instruction",
        t_queue: int,
        t_complete: int,
        expected_level: "MemLevel | None",
    ) -> "tuple[int, SpawnRecord | None]":
        """Decide on and apply a value prediction for a load.

        Returns ``(destination ready time, spawn record or None)``.  Only
        called when ``uses_value_prediction`` is True.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not route load predictions"
        )

    # ------------------------------------------------------------------
    # branch hook (spawn_on_branches models only)
    # ------------------------------------------------------------------
    def on_branch(
        self,
        engine,
        ctx: "ThreadContext",
        inst: "Instruction",
        t_queue: int,
        t_complete: int,
        predicted_ok: bool,
    ) -> None:
        """Offered every branch instruction when ``spawn_on_branches``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not spawn on branches"
        )

    # ------------------------------------------------------------------
    # verify / squash policy
    # ------------------------------------------------------------------
    def child_wins(
        self, record: "SpawnRecord", child: "ThreadContext", value: int
    ) -> bool:
        """Whether an alive child of a resolving record is the survivor."""
        raise NotImplementedError(
            f"{type(self).__name__} never resolves spawn records"
        )

    def on_mispredict(self, engine, record: "SpawnRecord", resolve_time: int) -> None:
        """Stats/selector attribution when no child survives resolution."""

    def on_confirm(
        self,
        engine,
        record: "SpawnRecord",
        winner: "ThreadContext",
        resolve_time: int,
    ) -> None:
        """Stats/selector attribution when ``winner`` survives resolution."""

    # ------------------------------------------------------------------
    # end-of-run stats attribution
    # ------------------------------------------------------------------
    def finalize_stats(self, engine) -> None:
        """Populate model-specific sections of ``engine.stats`` at close."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ExecutionModel {self.key or type(self).__name__}>"
