"""Core simulation: machine config, thread contexts, the MTVP engine."""

from repro.core.allocators import PortedIssue, SlotAllocator
from repro.core.config import FetchPolicy, MachineConfig, SimMode
from repro.core.context import ThreadContext
from repro.core.engine import Engine, SpawnRecord
from repro.core.stats import SimStats

__all__ = [
    "Engine",
    "FetchPolicy",
    "MachineConfig",
    "PortedIssue",
    "SimMode",
    "SimStats",
    "SlotAllocator",
    "SpawnRecord",
    "ThreadContext",
]
