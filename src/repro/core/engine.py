"""The threaded-value-prediction execution engine.

This is the reproduction's SMTSIM stand-in: a trace-driven, timestamp-based
out-of-order timing model with the thread-spawning machinery of Sections
3.2/3.3 layered on top.  See DESIGN.md §2 for the modeling approach and its
documented fidelity compromises.

The engine steps hardware contexts in approximate time order.  Each step
computes one instruction's fetch/queue/issue/complete/commit timestamps
under window, rename, queue and issue-port constraints; loads consult the
store buffer and the cache hierarchy, and may trigger a value prediction.
Value-predicted loads either mark their destination early-ready (STVP) or
spawn a speculative context (MTVP / spawn-only).  A heap of pending spawn
records is resolved as the predicted loads complete, confirming or killing
speculative threads.
"""

from __future__ import annotations

import time
from collections import deque
from heapq import heappop, heappush

from repro.branch import TwoBcGskewPredictor, update_history
from repro.core.allocators import PortedIssue, SlotAllocator
from repro.core.config import FetchPolicy, MachineConfig, SimMode
from repro.core.context import ThreadContext
from repro.core.stats import SimStats
from repro.isa import EXEC_LATENCY, Instruction, OpClass
from repro.memory import Cache, MemLevel, MemoryHierarchy, StoreBuffer, StridePrefetcher
from repro.obs import MetricsRegistry, Probe, Tracer
from repro.select import AlwaysSelector, LoadSelector, PredictionKind
from repro.vp import ValuePredictor
from repro.vp.oracle import OraclePredictor

# ----------------------------------------------------------------------
# hot-loop lookup tables (see DESIGN.md §5c)
#
# _step runs once per simulated instruction; enum property lookups
# (`op.is_memory`, `EXEC_LATENCY[op]` hashing) are measurable there, so the
# per-op decisions are flattened into tuples indexed by the OpClass value.
# Issue *port* and instruction *queue* use the same {int, fp, mem} partition
# (Table 1), so one table serves both.
_LOAD = OpClass.LOAD
_STORE = OpClass.STORE
_BRANCH = OpClass.BRANCH
_QUEUE_OF = tuple(
    "mem" if op.is_memory else ("fp" if op.is_fp else "int") for op in OpClass
)
_EXEC_LAT = tuple(EXEC_LATENCY[op] for op in OpClass)
_OP_NAMES = tuple(op.name.lower() for op in OpClass)
_KIND = (PredictionKind.NONE, PredictionKind.STVP, PredictionKind.MTVP)
_KIND_NONE = PredictionKind.NONE
_ML_L1 = MemLevel.L1
_ML_L2 = MemLevel.L2
_NO_MEASURES = 1 << 62  # pending-measures min-end sentinel: "nothing can fire"


class SpawnRecord:
    """A pending threaded value prediction awaiting its load's return."""

    __slots__ = (
        "resolve_time",
        "parent",
        "children",
        "actual",
        "pc",
        "start_time",
        "start_global",
        "load_commit_time",
        "kind",
        "void",
    )

    def __init__(
        self,
        resolve_time: int,
        parent: ThreadContext,
        actual: int,
        pc: int,
        start_time: int,
        kind: SimMode,
    ) -> None:
        self.resolve_time = resolve_time
        self.parent = parent
        #: (context, predicted value) per spawned alternative
        self.children: list[tuple[ThreadContext, int]] = []
        self.actual = actual
        self.pc = pc
        self.start_time = start_time
        #: processor-wide fetched count at prediction time (ILP-pred metric)
        self.start_global = 0
        self.load_commit_time = 0
        self.kind = kind
        self.void = False


class Engine:
    """Runs one trace through one machine configuration.

    Args:
        trace: Dynamic instruction sequence (see :mod:`repro.workloads`).
        config: Machine parameters and simulation mode.
        predictor: Load value predictor; defaults to the oracle.
        selector: Load selector; defaults to :class:`AlwaysSelector`.
        reference_scheduler: Debug flag — run the straightforward
            rebuild-and-``min()`` scheduler instead of the optimized
            incremental one.  Results must be identical; tests compare the
            two.  The reference path additionally records
            ``max_runnable_observed``.
        tracer: Optional :class:`~repro.obs.Tracer`; when given, the run
            emits structured cycle-stamped events into it.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; when given,
            occupancy/speculation metrics land in ``stats.extended``.
            Instrumentation is strictly read-only: an instrumented run
            produces bit-identical :class:`SimStats` counters.
    """

    def __init__(
        self,
        trace: list[Instruction],
        config: MachineConfig,
        predictor: ValuePredictor | None = None,
        selector: LoadSelector | None = None,
        warm_addresses=None,
        reference_scheduler: bool = False,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not trace:
            raise ValueError("trace must not be empty")
        self.trace = trace
        self.config = config
        self.reference_scheduler = reference_scheduler
        #: peak simultaneously-runnable contexts (reference scheduler only)
        self.max_runnable_observed = 0
        self.predictor = predictor if predictor is not None else OraclePredictor()
        self.selector = selector if selector is not None else AlwaysSelector()
        self.stats = SimStats()

        prefetcher = None
        if config.prefetch_enabled:
            prefetcher = StridePrefetcher(
                table_entries=config.prefetch_entries,
                num_streams=config.prefetch_streams,
                depth=config.prefetch_depth,
                line_size=config.line_size,
                fill_latency=config.prefetch_fill_latency,
                hit_latency=config.l1_latency + 2,
            )
        self.hierarchy = MemoryHierarchy(
            l1=Cache(config.l1_size, config.l1_assoc, config.line_size,
                     config.l1_latency, "L1D"),
            l2=Cache(config.l2_size, config.l2_assoc, config.line_size,
                     config.l2_latency, "L2"),
            l3=Cache(config.l3_size, config.l3_assoc, config.line_size,
                     config.l3_latency, "L3"),
            mem_latency=config.mem_latency,
            prefetcher=prefetcher,
            mshrs=config.mshrs,
        )
        self.branch_predictor = TwoBcGskewPredictor()
        self.store_buffer = StoreBuffer(capacity=config.store_buffer_entries)
        # SMT: one shared set of queues/rename/issue/fetch (slot index 0);
        # CMP: private per-core copies (indexed by hardware context slot)
        n_groups = 1 if config.smt_shared else config.num_contexts
        self._issue_groups = [
            PortedIssue(
                config.issue_width, config.int_issue, config.fp_issue,
                config.mem_issue,
            )
            for _ in range(n_groups)
        ]
        self._fetch_groups = [
            SlotAllocator(config.fetch_width, "fetch") for _ in range(n_groups)
        ]
        # instruction queues (IQ / FQ / MQ): min-heaps of issue times of
        # occupant entries — a slot frees when its entry issues, in any
        # order (real IQs are not FIFOs)
        self._iq_groups = [
            {"int": [], "fp": [], "mem": []} for _ in range(n_groups)
        ]
        # rename-register pool: min-heap of commit times of in-flight
        # writers (registers free at commit)
        self._rename_groups: list[list[int]] = [[] for _ in range(n_groups)]

        self._contexts: list[ThreadContext | None] = [None] * config.num_contexts
        self._next_order = 0
        self._pending: list[tuple[int, int, SpawnRecord]] = []
        self._heap_seq = 0
        self._sb_waiters: list[ThreadContext] = []
        self._finish_time = 0
        self._ran = False

        #: processor-wide fetched-instruction counter; ILP-pred episodes are
        #: measured in total forward progress, as in the paper
        self._global_fetched = 0

        # hot-loop bindings: config fields read once per *instruction* are
        # hoisted onto the engine so _step touches plain attributes instead
        # of chasing self.config.<field> every time
        self._trace_len = len(trace)
        self._rob_size = config.rob_size
        self._iq_size = config.iq_size
        self._rename_regs = config.rename_regs
        self._front_latency = config.front_latency
        self._commit_width = config.commit_width
        self._l1_latency = config.l1_latency
        self._smt_shared = config.smt_shared
        self._vp_on = config.mode is not SimMode.BASELINE
        self._fetch_single = config.fetch_policy is FetchPolicy.SINGLE_FETCH_PATH
        self._mode = config.mode
        self._spawn_capable = config.mode in (SimMode.MTVP, SimMode.SPAWN_ONLY)
        self._multi_value = config.multi_value
        self._spawn_latency = config.spawn_latency
        self._reissue_penalty = config.reissue_penalty
        self._collect_multivalue = config.collect_multivalue

        root = ThreadContext(slot=0, order=self._alloc_order(), pos=0)
        self._contexts[0] = root

        #: live observability probe, or None.  The hot loop tests this one
        #: attribute per instruction; components carry the NULL_PROBE when
        #: no probe is attached, so the disabled path costs a single
        #: attribute read at every hook site.
        self._obs: Probe | None = None
        if tracer is not None or metrics is not None:
            obs = self._obs = Probe(tracer=tracer, metrics=metrics)
            self.hierarchy.obs = obs
            if prefetcher is not None:
                prefetcher.obs = obs
            self.branch_predictor.obs = obs
            self.predictor.obs = obs
            obs.register_thread(root.order, "ctx0")
            obs.context_count(0, 1)

        if config.warm_caches:
            self._warm_state(warm_addresses, root)

    def _warm_state(self, addresses, root: ThreadContext) -> None:
        """SimPoint-style warm start for long-lived microarchitectural state.

        A SimPoint window begins mid-execution, with caches, branch
        predictor and value predictor all trained by the preceding
        billions of instructions.  A short synthetic trace would otherwise
        charge all of that warm-up to the timed region:

        * cache contents: the caller supplies the footprints that are
          resident in steady state (regions that fit in the L3; giant
          non-revisiting walks stay cold, as they would be at any point of
          a real long run);
        * branch predictor and value predictor: one functional pass over
          the trace trains the tables exactly as the previous loop
          iterations of the real program would have.

        Stats are reset afterwards so only the timed run is reported.
        """
        hierarchy = self.hierarchy
        if addresses is not None:
            for addr in addresses:
                hierarchy.store(addr, 0)
            hierarchy.reset_stats()
        bp = self.branch_predictor
        vp = self.predictor
        hist = 0
        for inst in self.trace:
            if inst.op is OpClass.BRANCH:
                bp.update(inst.pc, hist, inst.taken)
                hist = update_history(hist, inst.taken)
            elif inst.op is OpClass.LOAD and inst.value is not None:
                vp.train(inst, inst.value)
        # extra value-predictor passes: confidence counters (+1 per hit)
        # need far more history than one short trace to reach the steady
        # state a 100M-instruction run would have — minority pattern values
        # gain confidence a point at a time and need several hundred
        # sightings per static load before their counters mean anything.
        # scale the replay count so each static load sees ~800 trainings.
        load_insts = [
            inst
            for inst in self.trace
            if inst.op is OpClass.LOAD and inst.value is not None
        ]
        if load_insts:
            per_pc = len(load_insts) / max(1, len({i.pc for i in load_insts}))
            passes = min(40, max(1, round(800 / per_pc) - 1))
            for _ in range(passes):
                for inst in load_insts:
                    vp.train(inst, inst.value)
        root.bhist = hist
        vp.lookups = 0
        vp.predictions = 0
        vp.correct = 0
        vp.incorrect = 0

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _alloc_order(self) -> int:
        order = self._next_order
        self._next_order += 1
        return order

    def _free_slot(self) -> int | None:
        for i, ctx in enumerate(self._contexts):
            if ctx is None:
                return i
        return None

    def _alive_contexts(self) -> list[ThreadContext]:
        return [c for c in self._contexts if c is not None and c.alive]

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimStats:
        """Simulate the whole trace; returns the statistics object."""
        if self._ran:
            raise RuntimeError("Engine.run() may only be called once")
        self._ran = True
        t0 = time.perf_counter()
        if self.reference_scheduler:
            self._run_scheduler_reference()
        else:
            self._run_scheduler()
        self._close_final()
        self._collect_component_stats()
        stats = self.stats
        if self._obs is not None:
            stats.extended = self._obs.finalize(self._finish_time)
        stats.instructions_stepped = self._global_fetched
        stats.wall_seconds = time.perf_counter() - t0
        return stats

    def _run_scheduler(self) -> None:
        """Step contexts in approximate time order until the trace drains.

        Scheduling policy (identical to :meth:`_run_scheduler_reference`):
        among runnable contexts, step the one with the smallest
        ``next_time_hint`` (ties break toward the lowest slot), unless a
        pending spawn record resolves at or before that hint.

        Two things make this loop fast without changing any decision:

        * the candidate scan is inlined over the context slots — no list
          build, no ``min(key=lambda)``, no property calls — and with at
          most ``num_contexts`` (8) entries a first-minimum scan is already
          the "small ordered structure" the ≥2-runnable case needs;
        * once a context wins the scan, an inner loop keeps stepping it
          without rescanning for as long as a rescan would provably pick
          it again.  The other contexts' hints and runnable flags can only
          change inside ``_resolve_next`` or when a spawn allocates a new
          context, so between those events the winner keeps winning until
          its own hint passes the runner-up's (ties break by slot, exactly
          as in the scan).  This covers both the single-context modes and
          the dominant MTVP state (parent blocked on its spawn, one child
          running).
        """
        contexts = self._contexts
        pending = self._pending
        step = self._step
        while True:
            best = None
            best_hint = 0
            for c in contexts:
                if (
                    c is None
                    or not c.alive
                    or c.blocked
                    or c.sb_paused
                    or c.done
                ):
                    continue
                hint = c.last_fetch
                if c.resume_at > hint:
                    hint = c.resume_at
                if best is None or hint < best_hint:
                    best = c
                    best_hint = hint
            if best is None:
                if pending:
                    self._resolve_next()
                    continue
                break
            if pending and pending[0][0] <= best_hint:
                self._resolve_next()
                continue
            # runner-up hint and the first slot achieving it: the winner
            # stays the scheduling choice while it beats this bound
            second_hint = -1
            second_slot = 0
            for c in contexts:
                if (
                    c is None
                    or c is best
                    or not c.alive
                    or c.blocked
                    or c.sb_paused
                    or c.done
                ):
                    continue
                hint = c.last_fetch
                if c.resume_at > hint:
                    hint = c.resume_at
                if second_hint < 0 or hint < second_hint:
                    second_hint = hint
                    second_slot = c.slot
            order_snap = self._next_order
            best_slot = best.slot
            c = best
            step(c)
            while (
                c.alive
                and not (c.blocked or c.sb_paused or c.done)
                and self._next_order == order_snap
            ):
                hint = c.last_fetch
                if c.resume_at > hint:
                    hint = c.resume_at
                if second_hint >= 0 and (
                    hint > second_hint
                    or (hint == second_hint and best_slot > second_slot)
                ):
                    break
                if pending and pending[0][0] <= hint:
                    break
                step(c)

    def _run_scheduler_reference(self) -> None:
        """The original rebuild-everything scheduler, kept for A/B tests.

        Bit-for-bit the pre-optimization loop; also tracks the peak number
        of simultaneously runnable contexts so tests can prove a trace
        exercised true multi-context scheduling.
        """
        while True:
            runnable = [
                c for c in self._contexts if c is not None and c.alive and c.runnable
            ]
            if len(runnable) > self.max_runnable_observed:
                self.max_runnable_observed = len(runnable)
            if runnable:
                ctx = min(runnable, key=lambda c: c.next_time_hint)
                if self._pending and self._pending[0][0] <= ctx.next_time_hint:
                    self._resolve_next()
                    continue
                self._step(ctx)
                continue
            if self._pending:
                self._resolve_next()
                continue
            break

    def _close_final(self) -> None:
        """Fold the surviving context(s) into the final accounting."""
        survivors = self._alive_contexts()
        for ctx in survivors:
            # the remaining context is the architectural head; every commit
            # it made within its arch range is useful
            self.stats.useful_instructions += ctx.within_commits
            self.stats.wasted_instructions += ctx.beyond_commits
            if ctx.last_within_commit > self._finish_time:
                self._finish_time = ctx.last_within_commit
            self._flush_measures(ctx)
        self.stats.cycles = self._finish_time

    def _collect_component_stats(self) -> None:
        self.stats.level_counts = dict(self.hierarchy.level_counts)
        self.stats.store_forwards = self.store_buffer.forward_hits
        pf = self.hierarchy.prefetcher
        if pf is not None:
            self.stats.prefetch_stream_hits = pf.stream_hits
            self.stats.prefetch_mistrains = pf.mistrains

    # ------------------------------------------------------------------
    # one instruction
    # ------------------------------------------------------------------
    def _step(self, ctx: ThreadContext) -> None:
        """Fetch/queue/issue/complete/commit one instruction of ``ctx``.

        This is the simulator's innermost function — it runs once per
        simulated instruction — so it trades a little repetition for
        speed: the structural-constraint helpers are inlined, per-op
        decisions come from flat tuples indexed by the op class, and
        hot config fields are pre-bound engine attributes (see DESIGN.md
        §5c).  Every decision is bit-identical to the straightforward
        form this replaced.
        """
        inst = self.trace[ctx.pos]
        op = inst.op

        # --- speculative store gating: never start a store the buffer
        # cannot hold; the thread stalls until a resolution frees space
        if (
            op is _STORE
            and ctx.speculative
            and self.store_buffer.is_full
        ):
            ctx.sb_paused = True
            self.stats.store_buffer_stalls += 1
            self._sb_waiters.append(ctx)
            if self._obs is not None:
                self._obs.sb_stall(
                    max(ctx.last_fetch, ctx.resume_at), ctx.order, inst.pc
                )
            return

        # --- fetch: gated on stream position, redirects, a ROB slot, a
        # rename register and an IQ slot, then fetch bandwidth.  The
        # constraint heaps release their earliest occupant when full —
        # popping models the slot freeing and keeps each heap bounded.
        t = ctx.last_fetch
        if ctx.resume_at > t:
            t = ctx.resume_at
        rob = ctx.rob
        rob_size = self._rob_size
        if len(rob) >= rob_size and rob[0] > t:
            t = rob[0]
        group = 0 if self._smt_shared else ctx.slot
        dst = inst.dst
        writes_reg = dst is not None
        rename_heap = self._rename_groups[group]
        if writes_reg and len(rename_heap) >= self._rename_regs:
            rename_free = heappop(rename_heap)
            if rename_free > t:
                t = rename_free
        queue = _QUEUE_OF[op]
        iq_heap = self._iq_groups[group][queue]
        if len(iq_heap) >= self._iq_size:
            iq_free = heappop(iq_heap)
            if iq_free > t:
                t = iq_free
        t_fetch = self._fetch_groups[group].acquire(t)
        ctx.last_fetch = t_fetch
        obs = self._obs
        if obs is not None:
            # refresh the clock-free components' stamp before any of them
            # can fire below (hierarchy, branch predictor, value predictor)
            obs.now = t_fetch
            obs.tid = ctx.order

        # --- rename/queue, operand ready
        t_ready = t_queue = t_fetch + self._front_latency
        reg_ready = ctx.reg_ready
        for src in inst.srcs:
            if src:
                rt = reg_ready[src]
                if rt > t_ready:
                    t_ready = rt

        # --- issue (issue-port class == queue class, Table 1)
        t_issue = self._issue_groups[group].acquire(queue, t_ready)
        heappush(iq_heap, t_issue)

        # --- execute / memory access / value prediction / branches
        stats = self.stats
        spawn_record: SpawnRecord | None = None
        if op is _LOAD:
            stats.loads += 1
            if self.store_buffer.search(inst.addr, ctx.visible, ctx.pos) is not None:
                t_complete = t_issue + self._l1_latency
                expected_level = _ML_L1
            else:
                expected_level = self.hierarchy.probe_level(inst.addr)
                t_complete, _level = self.hierarchy.load(inst.addr, inst.pc, t_issue)
            if self._vp_on:
                dst_ready, spawn_record = self._handle_load_prediction(
                    ctx, inst, t_queue, t_complete, expected_level
                )
            else:
                dst_ready = t_complete
                if expected_level >= _ML_L2:
                    self._defer_measure(ctx, inst.pc, _KIND_NONE, t_queue, t_complete)
        elif op is _STORE:
            dst_ready = t_complete = t_issue + 1
        else:
            dst_ready = t_complete = t_issue + _EXEC_LAT[op]
            if op is _BRANCH:
                stats.branches += 1
                predicted = self.branch_predictor.predict_and_update(
                    inst.pc, ctx.bhist, inst.taken
                )
                ctx.bhist = update_history(ctx.bhist, inst.taken)
                if predicted != inst.taken:
                    stats.branch_mispredicts += 1
                    redirect = t_complete + 1
                    if redirect > ctx.resume_at:
                        ctx.resume_at = redirect

        # --- writeback
        if writes_reg:
            reg_ready[dst] = dst_ready

        # --- commit (in-order, bandwidth-limited)
        t_commit = ctx.commit_slot(t_complete + 1, self._commit_width)
        if spawn_record is not None:
            spawn_record.load_commit_time = t_commit

        if op is _STORE:
            stats.stores += 1
            if ctx.speculative:
                # pre-checked above: allocation cannot fail here
                self.store_buffer.allocate(
                    ctx.order, ctx.pos, inst.addr, inst.value or 0, t_commit
                )
            else:
                self.hierarchy.store(inst.addr, t_commit)

        # --- window bookkeeping
        rob.append(t_commit)
        if len(rob) > rob_size:
            rob.popleft()
        if writes_reg:
            heappush(rename_heap, t_commit)

        # --- commit accounting (closure-based; see DESIGN.md)
        arch_limit = ctx.arch_limit
        if arch_limit is None or ctx.pos <= arch_limit:
            ctx.within_commits += 1
            ctx.last_within_commit = t_commit
        else:
            ctx.beyond_commits += 1

        # --- predictor training at commit, in program order
        if op is _LOAD and inst.value is not None:
            self.predictor.train(inst, inst.value)

        ctx.fetched_count += 1
        self._global_fetched += 1
        if obs is not None:
            obs.step(
                ctx.order, inst.pc, _OP_NAMES[op], t_fetch, t_issue, t_commit,
                len(rob), len(iq_heap), self.store_buffer.total,
            )
        if t_fetch >= ctx.measures_min_end:
            self._finalize_measures(ctx, t_fetch)
        ctx.pos += 1
        if ctx.pos >= self._trace_len:
            ctx.done = True
        if spawn_record is not None and self._fetch_single:
            ctx.blocked = True

    # ------------------------------------------------------------------
    # value prediction and spawning
    # ------------------------------------------------------------------
    def _handle_load_prediction(
        self,
        ctx: ThreadContext,
        inst: Instruction,
        t_queue: int,
        t_complete: int,
        expected_level: MemLevel | None,
    ) -> tuple[int, SpawnRecord | None]:
        """Decide on and apply a value prediction for this load.

        Returns (destination ready time, spawn record or None).
        """
        stats = self.stats
        predictor = self.predictor
        mode = self._mode
        # every unpredicted load contributes a no-prediction episode so the
        # ILP-pred baseline exists even for PCs that always hit the L1
        # (those are exactly the loads it must learn not to spawn on)
        worth_measuring = True

        spawn_possible = (
            self._spawn_capable
            and not ctx.pending_spawn
            and self._free_slot() is not None
        )

        if mode is SimMode.SPAWN_ONLY:
            kind = self.selector.choose(inst, spawn_possible, expected_level)
            if kind is not PredictionKind.MTVP or not spawn_possible:
                if kind is PredictionKind.MTVP:
                    stats.spawn_denied_no_context += 1
                if worth_measuring:
                    self._defer_measure(
                        ctx, inst.pc, PredictionKind.NONE, t_queue, t_complete
                    )
                return t_complete, None
            # spawn-only: the child waits for the real value (no VP)
            if self._obs is not None:
                self._obs.predict(
                    t_queue, ctx.order, inst.pc, "spawn", inst.value or 0
                )
            record = self._spawn(
                ctx, inst, [(inst.value or 0, t_complete)], t_queue, t_complete,
                SimMode.SPAWN_ONLY,
            )
            return t_complete, record

        prediction = predictor.predict(inst)
        if prediction is None:
            if worth_measuring:
                self._defer_measure(ctx, inst.pc, PredictionKind.NONE, t_queue, t_complete)
            return t_complete, None

        if mode is SimMode.MTVP and not spawn_possible:
            # a confident prediction arrived while every context was busy —
            # the lost-opportunity statistic behind the thread-count studies
            stats.spawn_denied_no_context += 1

        kind = self.selector.choose(inst, spawn_possible, expected_level)
        if mode is SimMode.STVP and kind is PredictionKind.MTVP:
            kind = PredictionKind.STVP
        if kind is PredictionKind.NONE:
            stats.declined_predictions += 1
            if worth_measuring:
                self._defer_measure(ctx, inst.pc, PredictionKind.NONE, t_queue, t_complete)
            return t_complete, None

        # Figure 5 instrumentation: was the right value available even when
        # the primary prediction is wrong?
        if self._collect_multivalue:
            stats.followed_predictions += 1
            if prediction.value != inst.value:
                candidates = predictor.predict_all(inst)
                if any(p.value == inst.value for p in candidates):
                    stats.primary_wrong_candidate_present += 1

        if kind is PredictionKind.MTVP and not spawn_possible:
            kind = PredictionKind.STVP

        if kind is PredictionKind.STVP:
            stats.stvp_predictions += 1
            correct = prediction.value == inst.value
            predictor.record_outcome(correct)
            if self._obs is not None:
                self._obs.predict(
                    t_queue, ctx.order, inst.pc, "stvp", prediction.value
                )
                self._obs.stvp_outcome(t_complete, ctx.order, inst.pc, correct)
            self._defer_measure(ctx, inst.pc, PredictionKind.STVP, t_queue, t_complete)
            if correct:
                stats.stvp_correct += 1
                return t_queue, None
            stats.stvp_incorrect += 1
            # selective re-issue: dependents re-execute once the true value
            # arrives; commit was never early, so only the dependents pay
            return t_complete + self._reissue_penalty, None

        # MTVP: spawn one thread per followed value (multi-value capable)
        values: list[tuple[int, int]] = []
        spawn_ready = t_queue + self._spawn_latency
        if self._multi_value > 1:
            for cand in predictor.predict_all(inst)[: self._multi_value]:
                values.append((cand.value, spawn_ready))
        else:
            values.append((prediction.value, spawn_ready))
        stats.mtvp_predictions += 1
        if self._obs is not None:
            self._obs.predict(t_queue, ctx.order, inst.pc, "mtvp", prediction.value)
        record = self._spawn(ctx, inst, values, t_queue, t_complete, SimMode.MTVP)
        return t_complete, record

    def _spawn(
        self,
        parent: ThreadContext,
        inst: Instruction,
        values: list[tuple[int, int]],
        t_queue: int,
        t_complete: int,
        kind: SimMode,
    ) -> SpawnRecord:
        """Create speculative context(s) for the given predicted values."""
        record = SpawnRecord(
            resolve_time=t_complete,
            parent=parent,
            actual=inst.value or 0,
            pc=inst.pc,
            start_time=t_queue,
            kind=kind,
        )
        record.start_global = self._global_fetched
        for value, ready_time in values:
            slot = self._free_slot()
            if slot is None:
                break
            child = ThreadContext(
                slot=slot,
                order=self._alloc_order(),
                pos=parent.pos + 1,
                start_time=ready_time,
                parent=parent,
                speculative=True,
            )
            child.reg_ready[inst.dst] = ready_time if kind is SimMode.MTVP else t_complete
            child.spawn_record_as_child = record
            if child.pos >= self._trace_len:
                # spawned on the final instruction: nothing left to run,
                # the child only waits for its confirmation
                child.done = True
            parent.children.append(child)
            self._contexts[slot] = child
            record.children.append((child, value))
            self.stats.spawns += 1
        parent.arch_limit = parent.pos
        parent.pending_spawn = True
        parent.spawn_record_as_parent = record
        heappush(self._pending, (t_complete, self._heap_seq, record))
        self._heap_seq += 1
        obs = self._obs
        if obs is not None:
            for child, value in record.children:
                obs.spawn(t_queue, parent.order, child.order, inst.pc, value)
            obs.context_count(t_queue, len(self._alive_contexts()))
        return record

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _resolve_next(self) -> None:
        resolve_time, _seq, record = heappop(self._pending)
        if record.void or not record.parent.alive:
            return
        parent = record.parent
        stats = self.stats
        obs = self._obs
        if obs is not None:
            obs.now = resolve_time
            obs.tid = parent.order

        winner: ThreadContext | None = None
        winner_value = 0
        for child, value in record.children:
            if child.alive and (record.kind is SimMode.SPAWN_ONLY or value == record.actual):
                winner = child
                winner_value = value
                break
        losers = [
            child
            for child, _v in record.children
            if child.alive and child is not winner
        ]
        for loser in losers:
            self._kill_subtree(loser, resolve_time)

        if winner is None:
            # misprediction: parent resumes past the load; the speculative
            # progress made was useless, so ILP-pred sees zero
            if record.kind is SimMode.MTVP:
                stats.mtvp_incorrect += 1
                self.predictor.record_outcome(False)
            self.selector.record(
                record.pc, PredictionKind.MTVP, 0, max(1, resolve_time - record.start_time)
            )
            parent.blocked = False
            parent.pending_spawn = False
            parent.spawn_record_as_parent = None
            if resolve_time + 1 > parent.resume_at:
                parent.resume_at = resolve_time + 1
            # any progress the parent made past the load (no-stall policy)
            # is real execution and becomes architectural
            parent.within_commits += parent.beyond_commits
            parent.beyond_commits = 0
            parent.arch_limit = None
            if obs is not None:
                obs.squash(resolve_time, parent.order, record.pc)
                obs.context_count(resolve_time, len(self._alive_contexts()))
            return

        # confirmation: the parent retires, the winner carries on
        if record.kind is SimMode.MTVP:
            stats.mtvp_correct += 1
            self.predictor.record_outcome(True)
        stats.confirms += 1
        self.selector.record(
            record.pc,
            PredictionKind.MTVP,
            max(0, self._global_fetched - record.start_global),
            max(1, resolve_time - record.start_time),
            committed=winner.within_commits,
        )
        # parent's other children (spawned from its doomed post-load
        # stream under the no-stall policy) die with it
        for other in list(parent.children):
            if other is not winner and other.alive:
                self._kill_subtree(other, resolve_time)
        self._retire_parent(parent, winner, record, resolve_time)
        if obs is not None:
            obs.join(
                resolve_time, winner.order, parent.order, record.pc,
                max(0, self._global_fetched - record.start_global),
                max(1, resolve_time - record.start_time),
            )
            obs.context_count(resolve_time, len(self._alive_contexts()))
        _ = winner_value

    def _retire_parent(
        self,
        parent: ThreadContext,
        winner: ThreadContext,
        record: SpawnRecord,
        resolve_time: int,
    ) -> None:
        """Release the parent after a confirmed prediction; its work stands.

        The parent's architectural contribution (commits up to and
        including the predicted load) folds *into the winner*: it only
        becomes finally useful if the whole chain below the winner
        survives.  If an older outstanding prediction later turns out
        wrong, the winner — now carrying these counts — is killed and the
        work is correctly accounted as wasted.
        """
        # everything up to and including the load travels with the winner
        winner.within_commits += parent.within_commits
        for t in (parent.last_within_commit, record.load_commit_time, resolve_time):
            if t > winner.last_within_commit:
                winner.last_within_commit = t
        # progress past the load (no-stall policy) duplicated work the
        # winner already performed — wasted either way
        self.stats.wasted_instructions += parent.beyond_commits
        self._flush_measures(parent)
        parent.alive = False
        self._contexts[parent.slot] = None
        # splice the chain: the winner replaces the parent everywhere
        grand = parent.parent
        winner.parent = grand
        if grand is not None:
            if parent in grand.children:
                grand.children.remove(parent)
            grand.children.append(winner)
        outer = parent.spawn_record_as_child
        if outer is not None and not outer.void:
            outer.children = [
                (winner if c is parent else c, v) for c, v in outer.children
            ]
            winner.spawn_record_as_child = outer
        else:
            winner.spawn_record_as_child = None
        # speculative status propagates down the chain
        if not parent.speculative:
            self._make_architectural(winner, resolve_time)

    def _make_architectural(self, ctx: ThreadContext, now: int) -> None:
        """Promote a confirmed context to non-speculative status."""
        ctx.speculative = False
        # release this thread's (and dead ancestors') buffered stores
        for entry in self.store_buffer.drain_upto(ctx.order):
            self.hierarchy.store(entry.addr, max(entry.time, now))
        self._wake_sb_waiters(now)
        if ctx.sb_paused:
            ctx.sb_paused = False
            if now > ctx.resume_at:
                ctx.resume_at = now

    def _kill_subtree(self, ctx: ThreadContext, now: int) -> None:
        """Squash a mispredicted context and every thread it spawned."""
        for child in list(ctx.children):
            if child.alive:
                self._kill_subtree(child, now)
        # void the (at most one) pending record where ctx is the parent
        record = ctx.spawn_record_as_parent
        if record is not None:
            record.void = True
            ctx.spawn_record_as_parent = None
        self.stats.kills += 1
        self.stats.wasted_instructions += ctx.within_commits + ctx.beyond_commits
        if self._obs is not None:
            self._obs.kill(now, ctx.order, ctx.within_commits + ctx.beyond_commits)
        self.store_buffer.squash_thread(ctx.order)
        self._flush_measures(ctx, drop=True)
        ctx.alive = False
        if self._contexts[ctx.slot] is ctx:
            self._contexts[ctx.slot] = None
        if ctx.parent is not None and ctx in ctx.parent.children:
            ctx.parent.children.remove(ctx)
        self._wake_sb_waiters(now)

    def _wake_sb_waiters(self, now: int) -> None:
        if not self._sb_waiters:
            return
        waiters, self._sb_waiters = self._sb_waiters, []
        for ctx in waiters:
            if not ctx.alive:
                continue
            ctx.sb_paused = False
            if now > ctx.resume_at:
                ctx.resume_at = now

    # ------------------------------------------------------------------
    # deferred ILP-pred measurements
    # ------------------------------------------------------------------
    def _defer_measure(
        self,
        ctx: ThreadContext,
        pc: int,
        kind: PredictionKind,
        start_time: int,
        end_time: int,
    ) -> None:
        if len(ctx.pending_measures) >= 32:
            self._finalize_oldest(ctx)
        ctx.pending_measures.append(
            (pc, int(kind), start_time, end_time, self._global_fetched)
        )
        if end_time < ctx.measures_min_end:
            ctx.measures_min_end = end_time

    def _finalize_oldest(self, ctx: ThreadContext) -> None:
        pc, kind, start_t, end_t, start_count = ctx.pending_measures.popleft()
        self.selector.record(
            pc,
            _KIND[kind],
            max(0, self._global_fetched - start_count),
            max(1, end_t - start_t),
        )
        pm = ctx.pending_measures
        ctx.measures_min_end = min(e[3] for e in pm) if pm else _NO_MEASURES

    def _finalize_measures(self, ctx: ThreadContext, now: int) -> None:
        """Record every deferred episode whose window has closed.

        ``ctx.measures_min_end`` caches the earliest close time so the
        per-instruction caller can skip this scan entirely (the common
        case); it is refreshed whenever the pending set changes.
        """
        if not ctx.pending_measures:
            return
        selector_record = self.selector.record
        global_fetched = self._global_fetched
        remaining: deque[tuple[int, int, int, int, int]] = deque()
        for entry in ctx.pending_measures:
            pc, kind, start_t, end_t, start_count = entry
            if end_t <= now:
                selector_record(
                    pc,
                    _KIND[kind],
                    max(0, global_fetched - start_count),
                    max(1, end_t - start_t),
                )
            else:
                remaining.append(entry)
        ctx.pending_measures = remaining
        ctx.measures_min_end = (
            min(e[3] for e in remaining) if remaining else _NO_MEASURES
        )

    def _flush_measures(self, ctx: ThreadContext, drop: bool = False) -> None:
        if not drop:
            for pc, kind, start_t, end_t, start_count in ctx.pending_measures:
                self.selector.record(
                    pc,
                    _KIND[kind],
                    max(0, self._global_fetched - start_count),
                    max(1, end_t - start_t),
                )
        ctx.pending_measures.clear()
        ctx.measures_min_end = _NO_MEASURES
