"""Cycle-granular bandwidth allocators shared between SMT contexts.

The timestamp-based pipeline has no central clock, so structural bandwidth
(issue ports, shared fetch in the no-stall policy) is arbitrated by these
allocators: ``acquire(t)`` books the earliest cycle at or after ``t`` with a
free slot.  Contexts are stepped in approximate time order by the engine,
so bookings arrive nearly monotonically and the search loop is short.
"""

from __future__ import annotations


class SlotAllocator:
    """Books up to ``capacity`` events per cycle.

    Sparse dict from cycle to booked count; entries older than the pruning
    horizon are dropped opportunistically so memory stays bounded over long
    simulations.
    """

    def __init__(self, capacity: int, name: str = "slots") -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.name = name
        self._booked: dict[int, int] = {}
        self._min_interesting = 0
        self.acquired = 0

    def acquire(self, t: int) -> int:
        """Book one slot at the earliest cycle >= ``t``; returns that cycle."""
        cycle = int(t)
        booked = self._booked
        while booked.get(cycle, 0) >= self.capacity:
            cycle += 1
        booked[cycle] = booked.get(cycle, 0) + 1
        self.acquired += 1
        if len(booked) > 1 << 16:
            self._prune(cycle)
        return cycle

    def peek(self, t: int) -> int:
        """Earliest cycle >= ``t`` with a free slot, without booking it."""
        cycle = int(t)
        while self._booked.get(cycle, 0) >= self.capacity:
            cycle += 1
        return cycle

    def _prune(self, now: int) -> None:
        horizon = now - (1 << 14)
        for cycle in [c for c in self._booked if c < horizon]:
            del self._booked[cycle]

    def booked_at(self, t: int) -> int:
        """How many slots are already booked in cycle ``t`` (for tests)."""
        return self._booked.get(int(t), 0)

    def snapshot(self) -> dict:
        """Serialize bookings and counters to a versioned picklable dict."""
        return {
            "version": 1,
            "capacity": self.capacity,
            "booked": [[c, n] for c, n in self._booked.items()],
            "min_interesting": self._min_interesting,
            "acquired": self.acquired,
        }

    def restore(self, data: dict) -> None:
        """Restore from a :meth:`snapshot` payload (same capacity)."""
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported SlotAllocator snapshot version: "
                f"{data.get('version')!r}"
            )
        if data["capacity"] != self.capacity:
            raise ValueError("SlotAllocator snapshot capacity mismatch")
        self._booked = {c: n for c, n in data["booked"]}
        self._min_interesting = data["min_interesting"]
        self.acquired = data["acquired"]


class PortedIssue:
    """Issue bandwidth: per-class port limits under a global width cap.

    Table 1: "8 instructions per cycle, up to 6 Integer, 2 FP, 4
    load/store".  ``acquire`` books one slot in both the class allocator
    and the global allocator at a common cycle.
    """

    def __init__(self, total: int = 8, int_ports: int = 6, fp_ports: int = 2,
                 mem_ports: int = 4) -> None:
        self._total = SlotAllocator(total, "issue-total")
        self._classes = {
            "int": SlotAllocator(int_ports, "issue-int"),
            "fp": SlotAllocator(fp_ports, "issue-fp"),
            "mem": SlotAllocator(mem_ports, "issue-mem"),
        }

    def acquire(self, port: str, t: int) -> int:
        """Book an issue slot of class ``port`` at or after ``t``.

        Equivalent to alternating ``peek`` calls on the class and total
        allocators until they agree, then ``acquire`` on both — but fused
        over the two booking dicts directly, since this runs once per
        simulated instruction and the calls dominated its cost.
        """
        class_alloc = self._classes[port]
        total = self._total
        class_booked = class_alloc._booked
        total_booked = total._booked
        class_cap = class_alloc.capacity
        total_cap = total.capacity
        cycle = int(t)
        while True:
            while class_booked.get(cycle, 0) >= class_cap:
                cycle += 1
            total_cycle = cycle
            while total_booked.get(total_cycle, 0) >= total_cap:
                total_cycle += 1
            if total_cycle == cycle:
                class_booked[cycle] = class_booked.get(cycle, 0) + 1
                class_alloc.acquired += 1
                if len(class_booked) > 1 << 16:
                    class_alloc._prune(cycle)
                total_booked[cycle] = total_booked.get(cycle, 0) + 1
                total.acquired += 1
                if len(total_booked) > 1 << 16:
                    total._prune(cycle)
                return cycle
            cycle = total_cycle

    @property
    def issued(self) -> int:
        """Total issue slots booked."""
        return self._total.acquired

    def snapshot(self) -> dict:
        """Serialize the total and per-class allocators (versioned)."""
        return {
            "version": 1,
            "total": self._total.snapshot(),
            "classes": {
                name: alloc.snapshot() for name, alloc in self._classes.items()
            },
        }

    def restore(self, data: dict) -> None:
        """Restore from a :meth:`snapshot` payload (same port structure)."""
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported PortedIssue snapshot version: "
                f"{data.get('version')!r}"
            )
        if set(data["classes"]) != set(self._classes):
            raise ValueError("PortedIssue snapshot port classes mismatch")
        self._total.restore(data["total"])
        for name, alloc in self._classes.items():
            alloc.restore(data["classes"][name])
