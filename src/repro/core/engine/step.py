"""The per-instruction step kernel.

One call advances one context by one instruction: fetch/queue/issue/
complete/commit timestamps under window, rename, queue and issue-port
constraints.  Architectural state it touches: the register ready map,
cache/store-buffer contents, predictor tables, branch history and the trace
position.  Everything else it manipulates — heaps of in-flight entries,
port reservations, deferred measures — is timing state.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.branch import update_history
from repro.core.context import ThreadContext
from repro.core.engine.records import (
    _BRANCH,
    _EXEC_LAT,
    _KIND_NONE,
    _LOAD,
    _ML_L1,
    _ML_L2,
    _OP_NAMES,
    _QUEUE_OF,
    _STORE,
    SpawnRecord,
)


def decode_static(trace, start: int = 0):
    """Per-position static structure of ``trace`` from position ``start``.

    This is the contract between the scalar step kernel and the
    lane-batched kernel (:mod:`repro.core.engine.batch`): everything
    ``_step`` reads from an instruction that does *not* depend on the
    trace seed — op class, issue/queue class, destination register,
    the nonzero source registers it waits on, execution latency.  Seed
    replicates of one workload share this structure at every position,
    which is what lets N lanes fetch through one set of vectorized
    constraint checks.
    """
    return [
        (
            inst.op,
            _QUEUE_OF[inst.op],
            inst.dst,
            tuple(src for src in inst.srcs if src),
            _EXEC_LAT[inst.op],
        )
        for inst in trace[start:]
    ]


class StepMixin:
    """Fetch/queue/issue/complete/commit one instruction per call."""

    def _step(self, ctx: ThreadContext) -> None:
        """Fetch/queue/issue/complete/commit one instruction of ``ctx``.

        This is the simulator's innermost function — it runs once per
        simulated instruction — so it trades a little repetition for
        speed: the structural-constraint helpers are inlined, per-op
        decisions come from flat tuples indexed by the op class, and
        hot config fields are pre-bound engine attributes (see DESIGN.md
        §5c).  Every decision is bit-identical to the straightforward
        form this replaced.
        """
        inst = ctx.trace[ctx.pos]
        op = inst.op

        # --- speculative store gating: never start a store the buffer
        # cannot hold; the thread stalls until a resolution frees space
        if (
            op is _STORE
            and ctx.speculative
            and self.store_buffer.is_full
        ):
            ctx.sb_paused = True
            self.stats.store_buffer_stalls += 1
            self._sb_waiters.append(ctx)
            if self._obs is not None:
                self._obs.sb_stall(
                    max(ctx.last_fetch, ctx.resume_at), ctx.order, inst.pc
                )
            return

        # --- fetch: gated on stream position, redirects, a ROB slot, a
        # rename register and an IQ slot, then fetch bandwidth.  The
        # constraint heaps release their earliest occupant when full —
        # popping models the slot freeing and keeps each heap bounded.
        t = ctx.last_fetch
        if ctx.resume_at > t:
            t = ctx.resume_at
        rob = ctx.rob
        rob_size = self._rob_size
        if len(rob) >= rob_size and rob[0] > t:
            t = rob[0]
        group = 0 if self._smt_shared else ctx.slot
        dst = inst.dst
        writes_reg = dst is not None
        rename_heap = self._rename_groups[group]
        if writes_reg and len(rename_heap) >= self._rename_regs:
            rename_free = heappop(rename_heap)
            if rename_free > t:
                t = rename_free
        queue = _QUEUE_OF[op]
        iq_heap = self._iq_groups[group][queue]
        if len(iq_heap) >= self._iq_size:
            iq_free = heappop(iq_heap)
            if iq_free > t:
                t = iq_free
        t_fetch = self._fetch_groups[group].acquire(t)
        ctx.last_fetch = t_fetch
        obs = self._obs
        if obs is not None:
            # refresh the clock-free components' stamp before any of them
            # can fire below (hierarchy, branch predictor, value predictor)
            obs.now = t_fetch
            obs.tid = ctx.order

        # --- rename/queue, operand ready
        t_ready = t_queue = t_fetch + self._front_latency
        reg_ready = ctx.reg_ready
        for src in inst.srcs:
            if src:
                rt = reg_ready[src]
                if rt > t_ready:
                    t_ready = rt

        # --- issue (issue-port class == queue class, Table 1)
        t_issue = self._issue_groups[group].acquire(queue, t_ready)
        heappush(iq_heap, t_issue)

        # --- execute / memory access / value prediction / branches
        stats = self.stats
        spawn_record: SpawnRecord | None = None
        if op is _LOAD:
            stats.loads += 1
            if self.store_buffer.search(inst.addr, ctx.visible, ctx.pos) is not None:
                t_complete = t_issue + self._l1_latency
                expected_level = _ML_L1
            else:
                expected_level = self.hierarchy.probe_level(inst.addr)
                t_complete, _level = self.hierarchy.load(inst.addr, inst.pc, t_issue)
            if self._vp_on:
                dst_ready, spawn_record = self._handle_load_prediction(
                    ctx, inst, t_queue, t_complete, expected_level
                )
            else:
                dst_ready = t_complete
                if expected_level >= _ML_L2:
                    self._defer_measure(ctx, inst.pc, _KIND_NONE, t_queue, t_complete)
        elif op is _STORE:
            dst_ready = t_complete = t_issue + 1
        else:
            dst_ready = t_complete = t_issue + _EXEC_LAT[op]
            if op is _BRANCH:
                stats.branches += 1
                predicted = self.branch_predictor.predict_and_update(
                    inst.pc, ctx.bhist, inst.taken
                )
                ctx.bhist = update_history(ctx.bhist, inst.taken)
                if predicted != inst.taken:
                    stats.branch_mispredicts += 1
                    redirect = t_complete + 1
                    if redirect > ctx.resume_at:
                        ctx.resume_at = redirect
                if self._branch_spawn:
                    # SPMT family: offer this control-flow boundary to the
                    # execution model as a spawn point
                    self.model.on_branch(
                        self, ctx, inst, t_queue, t_complete,
                        predicted == inst.taken,
                    )

        # --- writeback
        if writes_reg:
            reg_ready[dst] = dst_ready

        # --- commit (in-order, bandwidth-limited)
        t_commit = ctx.commit_slot(t_complete + 1, self._commit_width)
        if spawn_record is not None:
            spawn_record.load_commit_time = t_commit

        if op is _STORE:
            stats.stores += 1
            if ctx.speculative:
                # pre-checked above: allocation cannot fail here
                self.store_buffer.allocate(
                    ctx.order, ctx.pos, inst.addr, inst.value or 0, t_commit
                )
            else:
                self.hierarchy.store(inst.addr, t_commit)

        # --- window bookkeeping
        rob.append(t_commit)
        if len(rob) > rob_size:
            rob.popleft()
        if writes_reg:
            heappush(rename_heap, t_commit)

        # --- commit accounting (closure-based; see DESIGN.md)
        arch_limit = ctx.arch_limit
        if arch_limit is None or ctx.pos <= arch_limit:
            ctx.within_commits += 1
            ctx.last_within_commit = t_commit
        else:
            ctx.beyond_commits += 1

        # --- predictor training at commit, in program order
        if op is _LOAD and inst.value is not None:
            self.predictor.train(inst, inst.value)

        ctx.fetched_count += 1
        self._global_fetched += 1
        if obs is not None:
            obs.step(
                ctx.order, inst.pc, _OP_NAMES[op], t_fetch, t_issue, t_commit,
                len(rob), len(iq_heap), self.store_buffer.total,
            )
        if t_fetch >= ctx.measures_min_end:
            self._finalize_measures(ctx, t_fetch)
        ctx.pos += 1
        if ctx.pos >= ctx.trace_len:
            ctx.done = True
        if spawn_record is not None and self._fetch_single:
            ctx.blocked = True
        if self._branch_spawn:
            # SPMT resolution is position-triggered: the spawn resolves the
            # moment the parent has executed the whole skipped region
            record = ctx.spawn_record_as_parent
            if record is not None and ctx.pos >= record.resolve_pos:
                self._resolve_record(record, t_commit)
