"""Warm start and functional fast-forward.

Two distinct mechanisms live here, both touching *architectural* state
only:

* :meth:`WarmupMixin._warm_state` — the legacy SimPoint-style warm start
  (``config.warm_caches``): pre-touch the steady-state footprint and train
  the predictors by replaying the trace functionally, without advancing
  the trace position.  The timed run still covers the whole trace.
* :meth:`WarmupMixin.fast_forward` — functional fast-forward: *advance*
  the root context through the first N instructions with architectural
  effects only (cache contents, prefetcher streams, branch/value predictor
  tables, branch history, trace position) and zero timing bookkeeping.
  The timed run then covers only the remaining instructions.  Component
  counters accumulated during the pass are reset so stats describe the
  measured interval alone.
"""

from __future__ import annotations

from repro.branch import update_history
from repro.core.context import ThreadContext
from repro.isa import OpClass


class WarmupMixin:
    """Architectural-only trace replay: warm start and fast-forward."""

    def _warm_state(self, addresses, roots: list[ThreadContext]) -> None:
        """SimPoint-style warm start for long-lived microarchitectural state.

        A SimPoint window begins mid-execution, with caches, branch
        predictor and value predictor all trained by the preceding
        billions of instructions.  A short synthetic trace would otherwise
        charge all of that warm-up to the timed region:

        * cache contents: the caller supplies the footprints that are
          resident in steady state (regions that fit in the L3; giant
          non-revisiting walks stay cold, as they would be at any point of
          a real long run);
        * branch predictor and value predictor: one functional pass over
          the trace trains the tables exactly as the previous loop
          iterations of the real program would have.

        Stats are reset afterwards so only the timed run is reported.
        """
        hierarchy = self.hierarchy
        if addresses is not None:
            for addr in addresses:
                hierarchy.store(addr, 0)
            hierarchy.reset_stats()
        bp = self.branch_predictor
        vp = self.predictor
        # one functional pass per program: single-program engines have one
        # root over self.trace (the historical behaviour, bit for bit),
        # multi-program co-schedules train the shared tables from every
        # stream — itself a realistic interference channel
        for root in roots:
            hist = 0
            for inst in root.trace:
                if inst.op is OpClass.BRANCH:
                    bp.update(inst.pc, hist, inst.taken)
                    hist = update_history(hist, inst.taken)
                elif inst.op is OpClass.LOAD and inst.value is not None:
                    vp.train(inst, inst.value)
            # extra value-predictor passes: confidence counters (+1 per hit)
            # need far more history than one short trace to reach the steady
            # state a 100M-instruction run would have — minority pattern
            # values gain confidence a point at a time and need several
            # hundred sightings per static load before their counters mean
            # anything.  scale the replay count so each static load sees
            # ~800 trainings.
            load_insts = [
                inst
                for inst in root.trace
                if inst.op is OpClass.LOAD and inst.value is not None
            ]
            if load_insts:
                per_pc = len(load_insts) / max(1, len({i.pc for i in load_insts}))
                passes = min(40, max(1, round(800 / per_pc) - 1))
                for _ in range(passes):
                    for inst in load_insts:
                        vp.train(inst, inst.value)
            root.bhist = hist
        vp.lookups = 0
        vp.predictions = 0
        vp.correct = 0
        vp.incorrect = 0

    # ------------------------------------------------------------------
    def fast_forward(self, n: int, warm_components: bool = True) -> int:
        """Functionally advance the root context by ``n`` instructions.

        Architectural state only: the trace position and branch history
        move, the memory image flows through the cache hierarchy and
        prefetcher, and the branch/value predictor tables train exactly as
        a timed run would have trained them at commit.  No timestamps, no
        window/port/queue bookkeeping, no spawns, no stats — timing starts
        from a clean slate at the new position.

        Must be called before the timed run starts (it is the "cheap
        warmup" half of the warmup+sample protocol; see DESIGN.md §5f for
        the fidelity caveats).  Returns the number of instructions
        skipped.

        Args:
            n: Instructions to fast-forward past.  Must leave at least one
                instruction for the timed region.
            warm_components: When False, only the trace position and
                branch history advance — caches and predictors stay cold
                (useful for pure region selection).
        """
        if self._started:
            raise RuntimeError("fast_forward() must run before Engine.run()")
        if self.model.multi_program:
            raise RuntimeError(
                "fast_forward() advances the single root context; "
                "multi-program co-schedules have no single warmup stream"
            )
        if n < 0:
            raise ValueError("fast-forward distance must be non-negative")
        root = self._contexts[0]
        if n >= self._trace_len - root.pos:
            raise ValueError(
                f"fast-forward of {n} leaves no instructions to simulate "
                f"(trace has {self._trace_len - root.pos} left)"
            )
        if n == 0:
            return 0
        bp = self.branch_predictor
        vp = self.predictor
        hierarchy = self.hierarchy
        hist = root.bhist
        start = root.pos
        for inst in self.trace[start : start + n]:
            op = inst.op
            if op is OpClass.LOAD:
                if warm_components:
                    hierarchy.warm_access(inst.addr, inst.pc)
                    if inst.value is not None:
                        vp.train(inst, inst.value)
            elif op is OpClass.STORE:
                if warm_components:
                    hierarchy.store(inst.addr, 0)
            elif op is OpClass.BRANCH:
                if warm_components:
                    bp.update(inst.pc, hist, inst.taken)
                hist = update_history(hist, inst.taken)
        root.bhist = hist
        root.pos = start + n
        root.start_pos = root.pos
        # the pass is warmup, not measurement: drop the component counters
        # it inflated so the timed interval reports only itself
        if warm_components:
            hierarchy.reset_stats()
            pf = hierarchy.prefetcher
            if pf is not None:
                pf.reset_stats()
        self.stats.warmup_instructions += n
        return n
