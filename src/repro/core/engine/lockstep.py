"""The SoA state and vectorized step loop of the lockstep kernel.

:class:`_LockstepBatch` holds the hot timestamp state of N lanes —
register ready times, ROB/rename/IQ occupancy, fetch and issue-port
bookings, commit-bandwidth counters — as structure-of-arrays with one
row per lane, and drives the whole batch through one step loop so the
per-instruction arithmetic of
:meth:`~repro.core.engine.step.StepMixin._step` runs once per *position*
instead of once per *lane*.  Per-lane scalar phases and the detach path
live in :mod:`~repro.core.engine.lockstep_lanes`; eligibility and
dispatch in :mod:`~repro.core.engine.batch`.
"""

from __future__ import annotations

import time
from itertools import islice

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the batch module gates on numpy
    _np = None

from repro.core.engine.lockstep_lanes import (
    _CLASS_SHIFT,
    _LaneOpsMixin,
    _QUEUES,
    _SPREAD_EVERY,
    _TAG_SHIFT,
    _TOTAL_SHIFT,
    _WALK_WINDOW,
)
from repro.core.engine.records import _BRANCH, _LOAD, _STORE
from repro.core.engine.step import decode_static


class _LockstepBatch(_LaneOpsMixin):
    """The SoA state and step loop for one batch of lockstep lanes.

    Arrays indexed by a per-step *slot* (one ROB/rename ring row, one
    architectural register's ready times) are laid out ``(depth, L)`` so
    the hot loop touches contiguous rows; the IQ arrays are ``(L, depth)``
    because their hot operation is a per-lane ``argmin``.
    """

    def __init__(self, engines) -> None:
        e0 = engines[0]
        cfg = e0.config
        self.engines = list(engines)
        self.ctxs = [e._contexts[0] for e in engines]
        self.traces = [e.trace for e in engines]
        self.base_global = [e._global_fetched for e in engines]
        self.start_pos = self.ctxs[0].pos
        self.trace_len = len(e0.trace)
        qidx = {name: i for i, name in enumerate(_QUEUES)}
        self.static = [
            (op, qidx[q], dst, srcs, lat)
            for op, q, dst, srcs, lat in decode_static(e0.trace, self.start_pos)
        ]
        self.rob_size = cfg.rob_size
        self.iq_size = cfg.iq_size
        self.rename_regs = cfg.rename_regs
        self.front_latency = cfg.front_latency
        self.commit_width = cfg.commit_width
        self.fetch_cap = cfg.fetch_width
        self.class_caps = (cfg.int_issue, cfg.fp_issue, cfg.mem_issue)
        self.total_cap = cfg.issue_width
        #: per-queue packed issue-ring constants: booking increment (one
        #: total slot + one class slot), SWAR saturation magic, and the
        #: two top bits the magic exposes saturation through
        self.incs = tuple(
            (1 << _TOTAL_SHIFT) + (1 << _CLASS_SHIFT[qi]) for qi in range(3)
        )
        self.magics = tuple(
            ((128 - self.class_caps[qi]) << _CLASS_SHIFT[qi])
            + ((128 - self.total_cap) << _TOTAL_SHIFT)
            for qi in range(3)
        )
        self.hibits = tuple(
            (128 << _CLASS_SHIFT[qi]) + (128 << _TOTAL_SHIFT)
            for qi in range(3)
        )
        self.vp_on = e0._vp_on
        self.spawn_capable = e0._spawn_capable
        # issue-ring width: a booking at cycle c may only overwrite a slot
        # whose old cycle is a full ring behind it, and such a cycle is
        # already below every future probe (probes start at t_queue, which
        # only grows) — PROVIDED the fetch->issue spread stays under the
        # ring width.  Observed spreads run to ~6x mem_latency
        # (pointer-chase miss chains filling the ROB); the guard detaches
        # everyone to scalar the moment the spread crosses the limit, and
        # because one step can add at most one memory round trip plus a
        # short contention walk, the limit leaves _SPREAD_EVERY steps of
        # worst-case growth between checks.
        per_step = 2 * cfg.mem_latency + cfg.front_latency + 256
        self.ring = 1 << max(
            16, (_SPREAD_EVERY * per_step + 4096).bit_length()
        )
        self.spread_limit = self.ring - _SPREAD_EVERY * per_step

        L = len(engines)
        i64 = _np.int64
        ctxs = self.ctxs
        self.last_fetch = _np.array([c.last_fetch for c in ctxs], dtype=i64)
        self.resume_at = _np.array([c.resume_at for c in ctxs], dtype=i64)
        self.last_commit = _np.array([c.last_commit for c in ctxs], dtype=i64)
        self.commit_cycle = _np.array([c.commit_cycle for c in ctxs], dtype=i64)
        self.commits_in_cycle = _np.array(
            [c.commits_in_cycle for c in ctxs], dtype=i64
        )
        self.reg_ready = _np.ascontiguousarray(
            _np.array([c.reg_ready for c in ctxs], dtype=i64).T
        )
        self.min_end = _np.array([c.measures_min_end for c in ctxs], dtype=i64)
        self.fetch_cnt = _np.zeros(L, dtype=i64)
        self.rob = _np.zeros((self.rob_size, L), dtype=i64)
        self.ren = _np.zeros((self.rename_regs, L), dtype=i64)
        self.iqs = [_np.zeros((L, self.iq_size), dtype=i64) for _ in _QUEUES]
        self.iq_len = [0, 0, 0]
        #: issue bookings, one packed entry per (lane, cycle mod ring)
        self.issue_ring = _np.zeros((L, self.ring), dtype=i64)
        #: contention-walk memo, per queue: ``[walk_base, walk_sel)`` is a
        #: cycle interval proven fully booked for that lane's queue test.
        #: Sound because port counts only ever increase — a busy cycle
        #: stays busy — so the next walk may skip the interval instead of
        #: re-probing the saturated prefix.
        self.walk_base = [_np.zeros(L, dtype=i64) for _ in _QUEUES]
        self.walk_sel = [_np.zeros(L, dtype=i64) for _ in _QUEUES]
        self._alloc_scratch(L)

        # per-lane component handles, hoisted out of the phase loops
        self.hiers = [e.hierarchy for e in engines]
        self.bps = [e.branch_predictor for e in engines]
        self.preds = [e.predictor for e in engines]
        self.handlers = [e._handle_load_prediction for e in engines]

        #: shared progress counters (structure is lane-invariant)
        self.steps = 0
        self.wcount = 0
        self.q_acq = [0, 0, 0]
        self.n_loads = 0
        self.n_stores = 0
        self.n_branches = 0
        self.lanes0 = L
        self.t0 = time.perf_counter()

    def _alloc_scratch(self, L: int) -> None:
        """(Re)build the scratch buffers the per-step ufuncs write into."""
        i64 = _np.int64
        self._ar = _np.arange(_WALK_WINDOW, dtype=i64)
        self.rows = _np.arange(L)
        self.row_off = self.rows * self.ring
        for name in ("_bt", "_btf", "_btr", "_bti", "_bdr", "_bcy",
                     "_bs", "_be"):
            setattr(self, name, _np.empty(L, dtype=i64))
        self._bb1 = _np.empty(L, dtype=bool)
        self._bb2 = _np.empty(L, dtype=bool)

    # ------------------------------------------------------------------
    # the lockstep step loop
    # ------------------------------------------------------------------
    def advance(self) -> None:
        """Step every lane through the trace; detach divergent lanes."""
        k = self.start_pos
        while k < self.trace_len and len(self.engines) >= 2:
            k = self._segment(k)
        for lane in range(len(self.engines)):
            self._detach(lane, self.start_pos + self.steps, False)
        self.engines = []

    def _segment(self, k0: int) -> int:
        """Run the vector loop from position ``k0`` until a lane detaches.

        Returns the position the next segment starts at.  All hot state
        is bound to locals here; a detach compresses the arrays, so the
        caller re-enters to rebind.
        """
        np_ = _np
        maximum = np_.maximum
        add, subtract, multiply = np_.add, np_.subtract, np_.multiply
        greater, greater_equal = np_.greater, np_.greater_equal
        equal, logical_and, logical_xor = (
            np_.equal, np_.logical_and, np_.logical_xor
        )
        bitwise_and, right_shift, left_shift = (
            np_.bitwise_and, np_.right_shift, np_.left_shift
        )
        flatnonzero = np_.flatnonzero
        rob_size, rename_regs, iq_size = (
            self.rob_size, self.rename_regs, self.iq_size
        )
        front, commit_width, fetch_cap = (
            self.front_latency, self.commit_width, self.fetch_cap
        )
        ring_mask = self.ring - 1
        spread_limit = self.spread_limit
        rows, row_off = self.rows, self.row_off
        engines, ctxs = self.engines, self.ctxs
        base_global = self.base_global
        resume_at, reg_ready = self.resume_at, self.reg_ready
        rob, ren, iqs, iq_len = self.rob, self.ren, self.iqs, self.iq_len
        fetch_cnt, min_end = self.fetch_cnt, self.min_end
        ring_flat = self.issue_ring.reshape(-1)
        cic = self.commits_in_cycle
        last_fetch, last_commit = self.last_fetch, self.last_commit
        commit_cycle = self.commit_cycle
        t, tf, tr = self._bt, self._btf, self._btr
        cy, s_buf, e_buf = self._bcy, self._bs, self._be
        ti_scratch, dr_scratch = self._bti, self._bdr
        b1, b2 = self._bb1, self._bb2
        q_acq = self.q_acq
        incs, magics, hibits = self.incs, self.magics, self.hibits

        steps = self.steps
        wcount = self.wcount
        n_loads, n_stores, n_branches = (
            self.n_loads, self.n_stores, self.n_branches
        )
        start_pos = self.start_pos
        stream = islice(self.static, k0 - start_pos, None)
        for k, (op, qi, dst, srcs, lat) in enumerate(stream, start=k0):
            n = steps

            # --- fetch gates: redirects, ROB slot, rename reg, IQ slot
            maximum(last_fetch, resume_at, out=t)
            if n >= rob_size:
                maximum(t, rob[n % rob_size], out=t)
            writes_reg = dst is not None
            if writes_reg and wcount >= rename_regs:
                maximum(t, ren[wcount % rename_regs], out=t)
            iq = iqs[qi]
            iq_full = iq_len[qi] >= iq_size
            if iq_full:
                # the heap pops its minimum entry to free a slot; the
                # unsorted array pops *a* minimum — same multiset
                iq_pos = iq.argmin(axis=1)
                maximum(t, iq[rows, iq_pos], out=t)

            # --- fetch bandwidth: bookings are monotone, so the sparse
            # allocator dict reduces to its frontier cycle plus a count
            greater_equal(fetch_cnt, fetch_cap, out=b1)
            add(last_fetch, b1, out=tf)
            maximum(t, tf, out=tf)
            greater(tf, last_fetch, out=b1)
            fetch_cnt += 1
            fetch_cnt[b1] = 1
            self.last_fetch = tf
            last_fetch, tf = tf, last_fetch  # old array recycled as scratch

            # --- operand ready
            add(last_fetch, front, out=tr)
            if op is _LOAD:
                tq_list = tr.tolist()
            for src in srcs:
                maximum(tr, reg_ready[src], out=tr)

            # --- issue ports: one packed gather/scatter books both the
            # class and the total slot; the SWAR add exposes "some
            # relevant count is at its cap" as two testable top bits
            bitwise_and(tr, ring_mask, out=s_buf)
            s_buf += row_off
            entry = ring_flat[s_buf]
            right_shift(entry, _TAG_SHIFT, out=e_buf)
            equal(e_buf, tr, out=b1)           # live booking at t_ready?
            multiply(entry, b1, out=entry)     # stale entries read as 0
            add(entry, magics[qi], out=e_buf)
            bitwise_and(e_buf, hibits[qi], out=e_buf)
            equal(e_buf, 0, out=b1)            # class and total both free
            if b1.all():
                left_shift(tr, _TAG_SHIFT, out=e_buf)
                maximum(entry, e_buf, out=entry)  # keep live counts else tag
                entry += incs[qi]
                ring_flat[s_buf] = entry
                t_issue = tr
            else:
                # book the free lanes vectorized, walk only the contended
                left_shift(tr, _TAG_SHIFT, out=e_buf)
                maximum(entry, e_buf, out=entry)
                entry += incs[qi]
                ring_flat[s_buf[b1]] = entry[b1]
                t_issue = ti_scratch
                t_issue[:] = tr
                self._acquire_walk(qi, flatnonzero(~b1), tr, t_issue)
            q_acq[qi] += 1
            if iq_full:
                iq[rows, iq_pos] = t_issue
            else:
                iq[:, iq_len[qi]] = t_issue
                iq_len[qi] += 1

            # --- execute / memory access / prediction / branches
            spawned = None
            if op is _LOAD:
                n_loads += 1
                t_complete, dr, spawned = self._load_phase(
                    k, n, tq_list, t_issue.tolist()
                )
            elif op is _STORE:
                n_stores += 1
                dr = dr_scratch
                add(t_issue, 1, out=dr)
                t_complete = dr
            else:
                dr = dr_scratch
                add(t_issue, lat, out=dr)
                t_complete = dr
                if op is _BRANCH:
                    n_branches += 1
                    self._branch_phase(k, dr)

            # --- writeback
            if writes_reg:
                reg_ready[dst] = dr

            # --- commit (in-order, bandwidth-limited), vectorized
            add(t_complete, 1, out=cy)
            maximum(cy, last_commit, out=cy)
            equal(cy, commit_cycle, out=b1)          # same cycle?
            greater_equal(cic, commit_width, out=b2)
            logical_and(b1, b2, out=b2)              # over bandwidth?
            add(cy, b2, out=cy)
            logical_xor(b1, b2, out=b1)              # same & not over
            multiply(cic, b1, out=cic)
            cic += 1
            # after the first step last_commit == commit_cycle always;
            # rotate the buffers so neither needs a copy
            self.last_commit = self.commit_cycle = cy
            last_commit, cy = cy, last_commit
            commit_cycle = last_commit
            t_commit = last_commit

            if op is _LOAD:
                if spawned:
                    for lane, record in spawned:
                        record.load_commit_time = int(t_commit[lane])
                self._train_phase(k)
            elif op is _STORE:
                tc_list = t_commit.tolist()
                for i, hier in enumerate(self.hiers):
                    hier.store(self.traces[i][k].addr, tc_list[i])

            rob[n % rob_size] = t_commit
            if writes_reg:
                ren[wcount % rename_regs] = t_commit
                wcount += 1
            steps = n + 1

            greater_equal(last_fetch, min_end, out=b1)
            if b1.any():
                for i in flatnonzero(b1):
                    eng, ctx = engines[i], ctxs[i]
                    eng._global_fetched = base_global[i] + steps
                    eng._finalize_measures(ctx, int(last_fetch[i]))
                    min_end[i] = ctx.measures_min_end

            if spawned is not None or not steps % _SPREAD_EVERY:
                subtract(t_issue, last_fetch, out=t)
                spread = int(t.max())
                if spawned or spread >= spread_limit:
                    self.steps, self.wcount = steps, wcount
                    self.n_loads, self.n_stores, self.n_branches = (
                        n_loads, n_stores, n_branches
                    )
                    self._bcy = cy
                    out = (
                        list(range(len(engines)))
                        if spread >= spread_limit
                        else [lane for lane, _ in spawned]
                    )
                    spawn_rows = {lane for lane, _ in (spawned or ())}
                    for lane in out:
                        self._detach(lane, k + 1, lane in spawn_rows)
                    self._compress(
                        [i for i in range(len(engines)) if i not in out]
                    )
                    return k + 1
        self.steps, self.wcount = steps, wcount
        self.n_loads, self.n_stores, self.n_branches = (
            n_loads, n_stores, n_branches
        )
        self._bcy = cy
        return self.trace_len
