"""Engine checkpointing: full-state and architectural-only snapshots.

Two scopes, matching the architectural/timing state boundary the engine
package is organized around (DESIGN.md §5f):

* ``scope="full"`` captures *everything* — the whole context graph with
  its speculative threads and spawn records, every component's tables and
  contents, allocator bookings, pending measures, stats.  Restoring into a
  freshly built engine and resuming produces bit-identical results to the
  uninterrupted run; determinism tests rely on this.
* ``scope="arch"`` captures only long-lived *architectural* state — the
  root thread's trace position and branch history plus the cache
  hierarchy, branch predictor and value predictor tables.  This is the
  warmup-checkpoint format: it deliberately excludes all timing state
  (and the load selector, whose episodes are timing measurements), so one
  checkpoint is shared by every configuration that differs only in
  timing-state axes.

Payloads are versioned dicts of plain picklable types.  Snapshots are
taken between run segments (``run(max_steps=...)`` pauses between
instructions), never mid-step.
"""

from __future__ import annotations

from repro.core.config import SimMode
from repro.core.context import ThreadContext
from repro.core.engine.records import SpawnRecord
from repro.core.stats import SimStats

#: schema version for engine-level snapshot payloads
SNAPSHOT_VERSION = 1


class SnapshotMixin:
    """Serializes and restores engine state at the two supported scopes."""

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def snapshot(self, scope: str = "full") -> dict:
        """Serialize engine state to a versioned picklable dict.

        Args:
            scope: ``"full"`` for an exact resumable checkpoint of the
                whole engine, ``"arch"`` for an architectural-only warmup
                checkpoint (see the module docstring for the contract).
        """
        if self._obs is not None:
            raise RuntimeError(
                "snapshot() does not support instrumented runs: the "
                "observability probe holds unserializable stream state"
            )
        if scope == "arch":
            return self._snapshot_arch()
        if scope == "full":
            return self._snapshot_full()
        raise ValueError(f"unknown snapshot scope: {scope!r}")

    def _snapshot_arch(self) -> dict:
        root = self._contexts[0]
        if root is None or root.speculative or len(self._alive_contexts()) != 1:
            raise RuntimeError(
                "arch snapshots require exactly the one non-speculative "
                "root context (take them before the timed run starts)"
            )
        if self._pending:
            raise RuntimeError("arch snapshots cannot carry pending spawns")
        return {
            "version": SNAPSHOT_VERSION,
            "scope": "arch",
            "pos": root.pos,
            "bhist": root.bhist,
            "warmup_instructions": self.stats.warmup_instructions,
            "hierarchy": self.hierarchy.snapshot(),
            "branch": self.branch_predictor.snapshot(),
            "predictor": self.predictor.snapshot(),
        }

    def _snapshot_full(self) -> dict:
        ctx_by_order = self._collect_context_graph()
        orders = sorted(ctx_by_order)
        # enumerate spawn records deterministically: records reachable from
        # contexts (in order-id order), then any still only on the heap
        rec_index: dict[int, int] = {}
        records: list[SpawnRecord] = []

        def note(rec: SpawnRecord | None) -> None:
            if rec is not None and id(rec) not in rec_index:
                rec_index[id(rec)] = len(records)
                records.append(rec)

        for order in orders:
            ctx = ctx_by_order[order]
            note(ctx.spawn_record_as_parent)
            note(ctx.spawn_record_as_child)
        for _t, _s, rec in self._pending:
            note(rec)

        contexts_payload = []
        for order in orders:
            ctx = ctx_by_order[order]
            entry = ctx.snapshot()
            entry["parent"] = None if ctx.parent is None else ctx.parent.order
            entry["children"] = [c.order for c in ctx.children]
            entry["rec_as_parent"] = (
                None
                if ctx.spawn_record_as_parent is None
                else rec_index[id(ctx.spawn_record_as_parent)]
            )
            entry["rec_as_child"] = (
                None
                if ctx.spawn_record_as_child is None
                else rec_index[id(ctx.spawn_record_as_child)]
            )
            contexts_payload.append(entry)

        records_payload = [
            {
                "resolve_time": rec.resolve_time,
                "parent": rec.parent.order,
                "children": [[c.order, v] for c, v in rec.children],
                "actual": rec.actual,
                "pc": rec.pc,
                "start_time": rec.start_time,
                "start_global": rec.start_global,
                "load_commit_time": rec.load_commit_time,
                "kind": rec.kind.value,
                "void": rec.void,
                "resolve_pos": rec.resolve_pos,
            }
            for rec in records
        ]

        return {
            "version": SNAPSHOT_VERSION,
            "scope": "full",
            # sanity anchors checked on restore
            "mode": self.config.mode.value,
            "trace_len": self._trace_len,
            "num_contexts": len(self._contexts),
            # run lifecycle
            "started": self._started,
            "finished": self._finished,
            "global_fetched": self._global_fetched,
            "next_order": self._next_order,
            "heap_seq": self._heap_seq,
            "finish_time": self._finish_time,
            "max_runnable_observed": self.max_runnable_observed,
            # context graph (serialized in heap order, which is preserved)
            "contexts": contexts_payload,
            "records": records_payload,
            "slots": [
                None if c is None else c.order for c in self._contexts
            ],
            "pending": [
                [t, seq, rec_index[id(rec)]] for t, seq, rec in self._pending
            ],
            "sb_waiters": [c.order for c in self._sb_waiters],
            "stats": self.stats.to_dict(),
            # components
            "hierarchy": self.hierarchy.snapshot(),
            "branch": self.branch_predictor.snapshot(),
            "store_buffer": self.store_buffer.snapshot(),
            "predictor": self.predictor.snapshot(),
            "selector": self.selector.snapshot(),
            # shared structural allocators
            "issue_groups": [g.snapshot() for g in self._issue_groups],
            "fetch_groups": [g.snapshot() for g in self._fetch_groups],
            "iq_groups": [
                {q: list(heap) for q, heap in group.items()}
                for group in self._iq_groups
            ],
            "rename_groups": [list(h) for h in self._rename_groups],
        }

    def _collect_context_graph(self) -> dict[int, ThreadContext]:
        """Every context reachable from the engine, keyed by unique order.

        Live contexts sit in the slot table, but retired parents stay
        reachable through spawn records on the pending heap and through
        parent/child links; a full checkpoint must carry them all.
        """
        found: dict[int, ThreadContext] = {}
        stack: list[ThreadContext] = [
            c for c in self._contexts if c is not None
        ]
        stack.extend(self._sb_waiters)
        for _t, _s, rec in self._pending:
            stack.append(rec.parent)
            stack.extend(c for c, _v in rec.children)
        while stack:
            ctx = stack.pop()
            if ctx.order in found:
                continue
            found[ctx.order] = ctx
            if ctx.parent is not None:
                stack.append(ctx.parent)
            stack.extend(ctx.children)
            for rec in (ctx.spawn_record_as_parent, ctx.spawn_record_as_child):
                if rec is not None:
                    stack.append(rec.parent)
                    stack.extend(c for c, _v in rec.children)
        return found

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    def restore(self, data: dict) -> None:
        """Load a :meth:`snapshot` payload into this (freshly built) engine.

        The engine must have been constructed with the same trace, config
        and component classes as the one that produced the snapshot, and
        must not have run yet.
        """
        if self._started:
            raise RuntimeError("restore() requires a freshly built engine")
        if self._obs is not None:
            raise RuntimeError("restore() does not support instrumented runs")
        if data.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported engine snapshot version: {data.get('version')!r}"
            )
        scope = data.get("scope")
        if scope == "arch":
            self._restore_arch(data)
        elif scope == "full":
            self._restore_full(data)
        else:
            raise ValueError(f"unknown snapshot scope: {scope!r}")

    def _restore_arch(self, data: dict) -> None:
        if data["pos"] >= self._trace_len:
            raise ValueError(
                "arch snapshot position lies beyond this engine's trace"
            )
        root = self._contexts[0]
        root.pos = data["pos"]
        root.start_pos = data["pos"]
        root.bhist = data["bhist"]
        self.hierarchy.restore(data["hierarchy"])
        self.branch_predictor.restore(data["branch"])
        self.predictor.restore(data["predictor"])
        self.stats.warmup_instructions = data["warmup_instructions"]

    def _restore_full(self, data: dict) -> None:
        if data["trace_len"] != self._trace_len:
            raise ValueError("engine snapshot trace length mismatch")
        if data["mode"] != self.config.mode.value:
            raise ValueError("engine snapshot simulation mode mismatch")
        if data["num_contexts"] != len(self._contexts):
            raise ValueError("engine snapshot context count mismatch")

        # components first: a failure here leaves the engine unstarted
        self.hierarchy.restore(data["hierarchy"])
        self.branch_predictor.restore(data["branch"])
        self.store_buffer.restore(data["store_buffer"])
        self.predictor.restore(data["predictor"])
        self.selector.restore(data["selector"])
        for group, payload in zip(self._issue_groups, data["issue_groups"]):
            group.restore(payload)
        for group, payload in zip(self._fetch_groups, data["fetch_groups"]):
            group.restore(payload)
        self._iq_groups = [
            {q: list(heap) for q, heap in group.items()}
            for group in data["iq_groups"]
        ]
        self._rename_groups = [list(h) for h in data["rename_groups"]]

        # rebuild the context graph: shells first, then links
        ctx_by_order: dict[int, ThreadContext] = {}
        for entry in data["contexts"]:
            ctx = ThreadContext.from_snapshot(entry)
            # contexts persist their stream index, not the trace itself;
            # re-bind against this engine's (identical) trace list
            ctx.trace = self._traces[ctx.stream]
            ctx.trace_len = len(ctx.trace)
            ctx_by_order[ctx.order] = ctx
        records: list[SpawnRecord] = []
        for rd in data["records"]:
            rec = SpawnRecord.__new__(SpawnRecord)
            rec.resolve_time = rd["resolve_time"]
            rec.parent = ctx_by_order[rd["parent"]]
            rec.children = [
                (ctx_by_order[order], value) for order, value in rd["children"]
            ]
            rec.actual = rd["actual"]
            rec.pc = rd["pc"]
            rec.start_time = rd["start_time"]
            rec.start_global = rd["start_global"]
            rec.load_commit_time = rd["load_commit_time"]
            rec.kind = SimMode(rd["kind"])
            rec.void = rd["void"]
            rec.resolve_pos = rd.get("resolve_pos", 0)
            records.append(rec)
        for entry in data["contexts"]:
            ctx = ctx_by_order[entry["order"]]
            if entry["parent"] is not None:
                ctx.parent = ctx_by_order[entry["parent"]]
            ctx.children = [ctx_by_order[o] for o in entry["children"]]
            if entry["rec_as_parent"] is not None:
                ctx.spawn_record_as_parent = records[entry["rec_as_parent"]]
            if entry["rec_as_child"] is not None:
                ctx.spawn_record_as_child = records[entry["rec_as_child"]]

        self._contexts = [
            None if order is None else ctx_by_order[order]
            for order in data["slots"]
        ]
        # serialized in heap order, so the list is a valid heap as-is
        self._pending = [
            (t, seq, records[idx]) for t, seq, idx in data["pending"]
        ]
        self._sb_waiters = [ctx_by_order[o] for o in data["sb_waiters"]]

        self.stats = SimStats.from_dict(data["stats"])
        self._global_fetched = data["global_fetched"]
        self._next_order = data["next_order"]
        self._heap_seq = data["heap_seq"]
        self._finish_time = data["finish_time"]
        self.max_runnable_observed = data["max_runnable_observed"]
        self._started = data["started"]
        self._finished = data["finished"]
