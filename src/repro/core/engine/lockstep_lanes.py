"""Per-lane scalar operations and SoA↔scalar boundary of the lockstep kernel.

Everything here runs per *lane*: the stateful-component phases (memory
hierarchy, branch predictor, value-predictor training — invoked through
the ordinary scalar methods so behaviour is bit-identical by
construction), the vectorized-but-contended issue-port walk, and the
detach path that materializes a lane's SoA rows back into its engine's
scalar state.  The packed issue-ring entry layout shared with the step
loop (:mod:`~repro.core.engine.lockstep`) is defined here.
"""

from __future__ import annotations

import time
from collections import deque

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the batch module gates on numpy
    _np = None

from repro.branch import update_history
from repro.core.engine.records import _KIND_NONE, _ML_L2

#: queue-name order used to index the per-class issue-port count fields
_QUEUES = ("int", "fp", "mem")

#: packed issue-ring entry:
#:   cycle << 32 | total << 24 | mem << 16 | fp << 8 | int
#: Count fields are 8 bits wide so the SWAR saturation test — add
#: ``128 - cap`` to a field and look at its top bit — can never carry
#: into a neighbouring field (counts stay <= their caps <= 127).  An
#: empty slot is the integer zero: a real booking always has a nonzero
#: count, and zero entries read as "free" through the same arithmetic.
_TAG_SHIFT = 32
_TOTAL_SHIFT = 24
_CLASS_SHIFT = (0, 8, 16)

#: vector steps between overwrite-safety checks of the issue ring; the
#: ring is sized so the spread can grow for this many steps unchecked
_SPREAD_EVERY = 16

#: cycles probed per round of the vectorized contention walk.  The first
#: round probes a narrow window (with the known-busy hint the effective
#: walk is a few cycles even in port-saturated FP codes); lanes that
#: miss widen geometrically up to this cap
_WALK_FIRST = 8
_WALK_WINDOW = 256


class _LaneOpsMixin:
    """Mixed into :class:`~repro.core.engine.lockstep._LockstepBatch`."""

    def _load_phase(self, k: int, n: int, tq_list, ti_list):
        """Per-lane memory access and (optionally) the prediction path."""
        tc_list = []
        dr_list = []
        spawned = None
        vp_on, spawn_capable = self.vp_on, self.spawn_capable
        min_end, reg_ready = self.min_end, self.reg_ready
        base_global = self.base_global
        for i, (eng, ctx, trace, hier, handler) in enumerate(
            zip(self.engines, self.ctxs, self.traces, self.hiers, self.handlers)
        ):
            inst = trace[k]
            # the store buffer is empty by invariant (no speculative
            # context ever runs batched), so search() is a no-op miss
            level = hier.probe_level(inst.addr)
            tc, _level = hier.load(inst.addr, inst.pc, ti_list[i])
            if vp_on:
                # n = _global_fetched before this instruction retires
                eng._global_fetched = base_global[i] + n
                ctx.pos = k
                if spawn_capable:
                    # _spawn flash-copies the parent register map
                    ctx.reg_ready[:] = reg_ready[:, i].tolist()
                ready, record = handler(ctx, inst, tq_list[i], tc, level)
                if record is not None:
                    if spawned is None:
                        spawned = []
                    spawned.append((i, record))
                dr_list.append(ready)
                min_end[i] = ctx.measures_min_end
            else:
                dr_list.append(tc)
                if level >= _ML_L2:
                    eng._global_fetched = base_global[i] + n
                    eng._defer_measure(ctx, inst.pc, _KIND_NONE, tq_list[i], tc)
                    min_end[i] = ctx.measures_min_end
            tc_list.append(tc)
        return (
            _np.array(tc_list, dtype=_np.int64),
            _np.array(dr_list, dtype=_np.int64),
            spawned,
        )

    def _branch_phase(self, k: int, t_complete) -> None:
        resume_at = self.resume_at
        for i, (ctx, trace, bp) in enumerate(
            zip(self.ctxs, self.traces, self.bps)
        ):
            inst = trace[k]
            taken = inst.taken
            predicted = bp.predict_and_update(inst.pc, ctx.bhist, taken)
            ctx.bhist = update_history(ctx.bhist, taken)
            if predicted != taken:
                self.engines[i].stats.branch_mispredicts += 1
                redirect = int(t_complete[i]) + 1
                if redirect > int(resume_at[i]):
                    resume_at[i] = redirect

    def _train_phase(self, k: int) -> None:
        for trace, pred in zip(self.traces, self.preds):
            inst = trace[k]
            if inst.value is not None:
                pred.train(inst, inst.value)

    # ------------------------------------------------------------------
    # issue-ring slow path: the vectorized contention walk
    # ------------------------------------------------------------------
    def _acquire_walk(self, qi: int, lanes, tr, t_issue) -> None:
        """Resolve port contention for ``lanes``; writes into ``t_issue``.

        The scalar allocator's class/total agreement walk
        (:meth:`~repro.core.allocators.PortedIssue.acquire`) only ever
        skips a cycle after observing its class *or* total count at cap,
        so it terminates at the first cycle at/after ``t_ready`` where
        both are under cap — which is exactly the packed SWAR free test.
        This probes a window of consecutive cycles for every contended
        lane at once and books at each lane's first free cycle; lanes
        whose whole window is saturated advance a window and go again.
        """
        np_ = _np
        ar = self._ar
        ring_mask = self.ring - 1
        ring_flat = self.issue_ring.reshape(-1)
        inc = self.incs[qi]
        magic = self.magics[qi]
        hibit = self.hibits[qi]
        s0 = tr[lanes] + 1  # the fast path proved cycle tr itself is busy
        base, selp = self.walk_base[qi], self.walk_sel[qi]
        b, sp = base[lanes], selp[lanes]
        # the just-proven-busy cycle s0-1 merges with the known-busy
        # interval whenever it touches it (inside or adjacent at the end),
        # extending the interval instead of re-anchoring; first free is
        # then at/after the interval end
        overlap = (s0 > b) & (s0 <= sp + 1)
        cand = np_.where(overlap, np_.maximum(s0, sp), s0)
        base[lanes] = np_.where(overlap, b, s0 - 1)
        rowoff = self.row_off[lanes]
        w = _WALK_FIRST
        while lanes.size:
            cyc2 = cand[:, None] + ar[:w]
            entry2 = ring_flat[(cyc2 & ring_mask) + rowoff[:, None]]
            np_.multiply(entry2, (entry2 >> _TAG_SHIFT) == cyc2, out=entry2)
            free = ((entry2 + magic) & hibit) == 0
            hit = free.any(axis=1)
            if hit.any():
                sel = (cand + free.argmax(axis=1))[hit]
                s = (sel & ring_mask) + rowoff[hit]
                e = ring_flat[s]
                np_.multiply(e, (e >> _TAG_SHIFT) == sel, out=e)
                np_.maximum(e, sel << _TAG_SHIFT, out=e)
                e += inc
                ring_flat[s] = e
                hl = lanes[hit]
                t_issue[hl] = sel
                selp[hl] = sel
                if hit.all():
                    return
                keep = ~hit
                lanes = lanes[keep]
                cand = cand[keep]
                rowoff = rowoff[keep]
            cand += w
            if w < _WALK_WINDOW:
                w *= 4

    # ------------------------------------------------------------------
    # leaving the batch: materialize SoA rows back into scalar state
    # ------------------------------------------------------------------
    def _detach(self, lane: int, pos: int, spawned: bool) -> None:
        """Write lane ``lane`` back into its engine at trace position ``pos``.

        Values cross back as plain Python ints — np.int64 must never leak
        into contexts or stats (it would poison JSON serialization of
        cached results and goldens).
        """
        eng, ctx = self.engines[lane], self.ctxs[lane]
        n, wcount = self.steps, self.wcount
        ctx.last_fetch = int(self.last_fetch[lane])
        ctx.resume_at = int(self.resume_at[lane])
        ctx.last_commit = int(self.last_commit[lane])
        ctx.commit_cycle = int(self.commit_cycle[lane])
        ctx.commits_in_cycle = int(self.commits_in_cycle[lane])
        ctx.reg_ready = [int(v) for v in self.reg_ready[:, lane]]
        ctx.rob = deque(
            int(self.rob[j % self.rob_size, lane])
            for j in range(max(0, n - self.rob_size), n)
        )
        ctx.fetched_count += n
        ctx.within_commits += n
        if n:
            # arch_limit is None right up to a spawn, and a spawning step
            # still commits within (pos == arch_limit), so every batched
            # commit was architectural and the last one closes the run
            ctx.last_within_commit = int(self.last_commit[lane])
        ctx.pos = pos
        if pos >= self.trace_len:
            ctx.done = True
        if spawned and eng._fetch_single:
            ctx.blocked = True

        # in-flight writers arrived in commit order, so the FIFO ring is
        # already the sorted list a heap would hold
        eng._rename_groups[0] = [
            int(self.ren[j % self.rename_regs, lane])
            for j in range(max(0, wcount - self.rename_regs), wcount)
        ]
        iq_groups = eng._iq_groups[0]
        for qi, name in enumerate(_QUEUES):
            iq_groups[name] = sorted(
                int(v) for v in self.iqs[qi][lane, : self.iq_len[qi]]
            )
        fetch = eng._fetch_groups[0]
        if n:
            fetch._booked = {
                int(self.last_fetch[lane]): int(self.fetch_cnt[lane])
            }
        fetch.acquired += n
        self._rebuild_issue(eng._issue_groups[0], lane, n)

        eng._global_fetched = self.base_global[lane] + n
        stats = eng.stats
        stats.loads += self.n_loads
        stats.stores += self.n_stores
        stats.branches += self.n_branches
        eng._wall_accum += (time.perf_counter() - self.t0) / self.lanes0

    def _rebuild_issue(self, ported, lane: int, n: int) -> None:
        """Unpack one lane's ring into the scalar PortedIssue dicts.

        Only cycles a future probe can still reach matter — probes start
        above the lane's fetch frontier — which keeps the rebuilt dicts
        near the scalar allocator's own pruned size.
        """
        row = self.issue_ring[lane]
        tags = row >> _TAG_SHIFT
        live = _np.flatnonzero(
            (tags >= int(self.last_fetch[lane])) & (row != 0)
        )
        total_booked: dict[int, int] = {}
        class_booked: list[dict[int, int]] = [{}, {}, {}]
        for s in live:
            entry = int(row[s])
            cycle = entry >> _TAG_SHIFT
            count = (entry >> _TOTAL_SHIFT) & 255
            if count:
                total_booked[cycle] = count
            for qi in range(3):
                count = (entry >> _CLASS_SHIFT[qi]) & 255
                if count:
                    class_booked[qi][cycle] = count
        ported._total._booked = total_booked
        ported._total.acquired += n
        for qi, name in enumerate(_QUEUES):
            alloc = ported._classes[name]
            alloc._booked = class_booked[qi]
            alloc.acquired += self.q_acq[qi]

    def _compress(self, keep: list[int]) -> None:
        """Drop detached lanes from every SoA array."""
        self.engines = [self.engines[i] for i in keep]
        self.ctxs = [self.ctxs[i] for i in keep]
        self.traces = [self.traces[i] for i in keep]
        self.base_global = [self.base_global[i] for i in keep]
        self.hiers = [self.hiers[i] for i in keep]
        self.bps = [self.bps[i] for i in keep]
        self.preds = [self.preds[i] for i in keep]
        self.handlers = [self.handlers[i] for i in keep]
        idx = _np.array(keep, dtype=_np.intp)
        for name in (
            "last_fetch", "resume_at", "last_commit", "commit_cycle",
            "commits_in_cycle", "min_end", "fetch_cnt", "issue_ring",
        ):
            setattr(self, name, _np.ascontiguousarray(getattr(self, name)[idx]))
        for name in ("reg_ready", "rob", "ren"):
            setattr(
                self, name, _np.ascontiguousarray(getattr(self, name)[:, idx])
            )
        self.iqs = [_np.ascontiguousarray(a[idx]) for a in self.iqs]
        self.walk_base = [a[idx] for a in self.walk_base]
        self.walk_sel = [a[idx] for a in self.walk_sel]
        self._alloc_scratch(len(keep))
