"""Shared hot-loop tables and the spawn record.

The per-instruction kernel runs once per simulated instruction; enum
property lookups (``op.is_memory``, ``EXEC_LATENCY[op]`` hashing) are
measurable there, so the per-op decisions are flattened into tuples indexed
by the OpClass value (see DESIGN.md §5c).  Issue *port* and instruction
*queue* use the same {int, fp, mem} partition (Table 1), so one table
serves both.  Every staged engine module imports these names so the split
keeps the exact globals the monolithic engine resolved.
"""

from __future__ import annotations

from repro.core.config import SimMode
from repro.core.context import ThreadContext
from repro.isa import EXEC_LATENCY, OpClass
from repro.memory import MemLevel
from repro.select import PredictionKind

_LOAD = OpClass.LOAD
_STORE = OpClass.STORE
_BRANCH = OpClass.BRANCH
_QUEUE_OF = tuple(
    "mem" if op.is_memory else ("fp" if op.is_fp else "int") for op in OpClass
)
_EXEC_LAT = tuple(EXEC_LATENCY[op] for op in OpClass)
_OP_NAMES = tuple(op.name.lower() for op in OpClass)
_KIND = (PredictionKind.NONE, PredictionKind.STVP, PredictionKind.MTVP)
_KIND_NONE = PredictionKind.NONE
_ML_L1 = MemLevel.L1
_ML_L2 = MemLevel.L2
_NO_MEASURES = 1 << 62  # pending-measures min-end sentinel: "nothing can fire"


class SpawnRecord:
    """A pending threaded value prediction awaiting its load's return."""

    __slots__ = (
        "resolve_time",
        "parent",
        "children",
        "actual",
        "pc",
        "start_time",
        "start_global",
        "load_commit_time",
        "kind",
        "void",
        "resolve_pos",
    )

    def __init__(
        self,
        resolve_time: int,
        parent: ThreadContext,
        actual: int,
        pc: int,
        start_time: int,
        kind: SimMode,
    ) -> None:
        self.resolve_time = resolve_time
        self.parent = parent
        #: (context, predicted value) per spawned alternative
        self.children: list[tuple[ThreadContext, int]] = []
        self.actual = actual
        self.pc = pc
        self.start_time = start_time
        #: processor-wide fetched count at prediction time (ILP-pred metric)
        self.start_global = 0
        self.load_commit_time = 0
        self.kind = kind
        self.void = False
        #: SPMT only: trace position whose reach by the parent resolves
        #: this record (position-triggered, not on the time-ordered heap)
        self.resolve_pos = 0
