"""Lane-batched lockstep execution: N seed replicates in one vectorized pass.

Sweep campaigns replicate every design point over seeds, and seed
replicates of one :class:`~repro.core.MachineConfig` share their *static*
structure completely: the workload body is seed-independent (only dynamic
addresses, values and branch outcomes differ), so at every trace position
all replicates fetch the same op class through the same window, rename,
queue, port and commit constraints.  This module is the entry point that
exploits that: it steps N single-context engines in lockstep through the
structure-of-arrays kernel in :mod:`~repro.core.engine.lockstep`, holding
the hot timestamp state (register ready times, ROB/rename/IQ occupancy,
fetch and issue-port bookings, the commit-bandwidth counters) with one
row per lane, so the per-instruction arithmetic of
:meth:`~repro.core.engine.step.StepMixin._step` runs once per *position*
instead of once per *lane*.

Stateful components — the cache hierarchy, prefetcher, branch predictor,
value predictor, selector and measures — stay live on each lane's own
engine and are invoked through the ordinary scalar methods in short
per-lane loops (loads, stores and branches are ~15% of a trace), so their
behaviour is bit-identical by construction.

Results are byte-identical to sequential scalar runs, enforced three ways:

* equivalence arguments per structure (a single non-speculative context
  makes the scheduler pure lockstep; the rename heap receives monotone
  commit times and degrades to a FIFO ring; the ROB deque is a ring; the
  fetch allocator under monotone probes is a ``(cycle, count)`` pair; the
  issue-port bookings live in a packed tag ring wide enough that no two
  live cycles alias a slot — guarded at runtime by the observed
  fetch-to-issue spread);
* divergence falls out, it is never approximated: the moment a lane's
  behaviour stops being expressible in lockstep (an MTVP/spawn-only lane
  spawning a second context), that lane's SoA rows are written back into
  its engine mid-run and the engine continues scalar, while the remaining
  lanes keep vectorizing;
* the golden-digest suite compares batched and scalar stats dicts per
  seed and per SimMode (see ``tests/test_batch.py``).

numpy is optional: when it is not importable every batched entry point
falls back to sequential scalar simulation (one warning per process),
which is trivially identical.
"""

from __future__ import annotations

import gc
import warnings

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

from repro.core.engine.lockstep import _LockstepBatch

#: trace positions spot-checked for cross-lane structural identity; the
#: full guarantee comes from construction (one workload body unrolled per
#: seed), the sample catches hand-built engine lists that violate it
_STRUCT_SAMPLES = 64

_warned_no_numpy = False


def have_numpy() -> bool:
    """Whether the vectorized path is available in this process."""
    return _np is not None


def _warn_no_numpy() -> None:
    global _warned_no_numpy
    if not _warned_no_numpy:
        warnings.warn(
            "numpy is not importable; lane batching falls back to "
            "sequential scalar simulation (results are identical)",
            RuntimeWarning,
            stacklevel=4,
        )
        _warned_no_numpy = True


def batchable(engine) -> bool:
    """Whether ``engine`` can join a lockstep lane batch.

    Requires the single-context lockstep property (see
    :func:`~repro.core.engine.scheduler.lockstep_eligible`), pristine
    timing state (fresh constructions and post-``fast_forward`` engines
    qualify; a paused or checkpoint-restored full-scope run does not),
    and issue-port caps small enough for the packed booking ring.
    """
    from repro.core.engine.scheduler import lockstep_eligible

    if not engine.model.lockstep_safe:
        # SPMT spawns on branches (the lockstep kernel only detects
        # load-phase spawns) and SMT is multi-root from construction
        return False
    cfg = engine.config
    if max(cfg.issue_width, cfg.int_issue, cfg.fp_issue, cfg.mem_issue) > 127:
        return False
    return lockstep_eligible(engine) and engine.timing_pristine()


def _same_machine(engines) -> bool:
    first = engines[0]
    return all(
        e.config == first.config
        and len(e.trace) == len(first.trace)
        and e._contexts[0].pos == first._contexts[0].pos
        for e in engines[1:]
    )


def _same_structure(engines, verify: str) -> bool:
    """Cross-lane static-structure check at sampled (or all) positions."""
    t0 = engines[0].trace
    start = engines[0]._contexts[0].pos
    span = len(t0) - start
    if verify == "full":
        positions = range(start, len(t0))
    else:
        stride = max(1, span // _STRUCT_SAMPLES)
        positions = list(range(start, len(t0), stride)) + [len(t0) - 1]
    for k in positions:
        ref = t0[k]
        for e in engines[1:]:
            inst = e.trace[k]
            if (
                inst.pc != ref.pc
                or inst.op is not ref.op
                or inst.dst != ref.dst
                or inst.srcs != ref.srcs
            ):
                return False
    return True


def run_lockstep(engines, verify: str = "sample"):
    """Run every engine to completion; returns one SimStats per engine.

    Engines that qualify (see :func:`batchable`, plus identical machine
    and trace structure) execute through the vectorized lockstep kernel;
    anything else — including the whole batch when numpy is absent — runs
    sequentially through the ordinary scalar path.  Results are identical
    either way.  ``verify="full"`` compares the static structure at every
    position instead of a sample (tests; costs one full trace walk).
    """
    engines = list(engines)
    if not engines:
        return []
    if _np is None:
        if len(engines) > 1:
            _warn_no_numpy()
        return [e.run() for e in engines]
    if (
        len(engines) < 2
        or not all(batchable(e) for e in engines)
        or not _same_machine(engines)
        or not _same_structure(engines, verify)
    ):
        return [e.run() for e in engines]
    # the step loop allocates constantly while holding millions of
    # objects live (N traces of Instruction objects); cyclic-GC passes
    # over that heap cost more than the collections are worth here
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        _LockstepBatch(engines).advance()
    finally:
        if gc_was_enabled:
            gc.enable()
    # finished lanes close their books, diverged lanes continue scalar
    return [e.run() for e in engines]
