"""The threaded-value-prediction execution engine.

This is the reproduction's SMTSIM stand-in: a trace-driven, timestamp-based
out-of-order timing model with the thread-spawning machinery of Sections
3.2/3.3 layered on top.  See DESIGN.md §2 for the modeling approach and its
documented fidelity compromises.

The engine used to be one module; it is now a package of staged components
organized around the boundary between *architectural* state (registers,
trace position, memory image, predictor tables) and *microarchitectural
timing* state (in-flight timestamps, port reservations, pending measures):

* :mod:`~repro.core.engine.records` — shared hot-loop tables and
  :class:`SpawnRecord`;
* :mod:`~repro.core.engine.scheduler` — which context steps next;
* :mod:`~repro.core.engine.step` — the per-instruction timing kernel;
* :mod:`~repro.core.engine.predict` — the load value-prediction path;
* :mod:`~repro.core.engine.lifecycle` — spawn / confirm / kill;
* :mod:`~repro.core.engine.measures` — deferred ILP-pred episode
  retirement;
* :mod:`~repro.core.engine.warmup` — warm start and functional
  fast-forward (architectural state only);
* :mod:`~repro.core.engine.snapshot` — full and architectural-scope
  checkpointing;
* :mod:`~repro.core.engine.core` — the :class:`Engine` facade composing
  them.

``from repro.core.engine import Engine, SpawnRecord`` works exactly as it
did when this was a module, and the old module's private helpers remain
importable from this path for back-compat (resolved lazily below).
"""

from __future__ import annotations

from repro.core.engine.core import Engine
from repro.core.engine.records import SpawnRecord
from repro.core.engine.scheduler import NO_LIMIT
from repro.core.engine.snapshot import SNAPSHOT_VERSION

__all__ = ["Engine", "SpawnRecord", "NO_LIMIT", "SNAPSHOT_VERSION"]

#: legacy private names from the pre-package engine module, mapped to the
#: submodule that now owns them (PEP 562 module __getattr__ below)
_LEGACY_HOMES = {
    "_LOAD": "records",
    "_STORE": "records",
    "_BRANCH": "records",
    "_QUEUE_OF": "records",
    "_EXEC_LAT": "records",
    "_OP_NAMES": "records",
    "_KIND": "records",
    "_KIND_NONE": "records",
    "_ML_L1": "records",
    "_ML_L2": "records",
    "_NO_MEASURES": "records",
}


def __getattr__(name: str):
    home = _LEGACY_HOMES.get(name)
    if home is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(f"{__name__}.{home}"), name)
