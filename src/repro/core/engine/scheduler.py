"""Context scheduling: microarchitectural *timing* control flow.

Both schedulers hold only timing state (local clocks, the pending spawn
heap); all architectural effects happen inside the step kernel and the
spawn lifecycle.  The optimized and reference schedulers must make
bit-identical decisions — tests compare the two.
"""

from __future__ import annotations

#: step budget meaning "run to completion" — a bound far beyond any trace,
#: so the bounded-run check stays one integer compare on the hot path
NO_LIMIT = 1 << 62


def lockstep_eligible(engine) -> bool:
    """Whether scheduling ``engine`` degenerates to pure lockstep.

    With exactly one runnable context and an empty pending-spawn heap,
    both schedulers reduce to ``step(root)`` repeated until the trace
    drains or a spawn lands — every scan picks the same sole candidate
    and the loop keeps no state between iterations, so an external
    driver (the lane-batched kernel) can replay that sequence and hand
    the engine back mid-run with nothing lost.  Instrumented or
    reference-scheduler runs are excluded: the probe hooks and
    ``max_runnable_observed`` are per-step side effects the batched
    replay does not reproduce.
    """
    if engine._obs is not None or engine.reference_scheduler:
        return False
    if engine._pending:
        return False
    live = [c for c in engine._contexts if c is not None and c.alive]
    return len(live) == 1 and live[0].runnable and live[0] is engine._contexts[0]


class SchedulerMixin:
    """Chooses which context steps next; drives the run to completion."""

    def _run_scheduler(self, stop_at: int = NO_LIMIT) -> None:
        """Step contexts in approximate time order until the trace drains.

        Scheduling policy (identical to :meth:`_run_scheduler_reference`):
        among runnable contexts, step the one with the smallest
        ``next_time_hint`` (ties break toward the lowest slot), unless a
        pending spawn record resolves at or before that hint.

        ``stop_at`` bounds the processor-wide fetched count: the loop
        suspends (between steps, never mid-step) once it is reached, which
        is what makes a run pausable for :meth:`Engine.snapshot`.

        Two things make this loop fast without changing any decision:

        * the candidate scan is inlined over the context slots — no list
          build, no ``min(key=lambda)``, no property calls — and with at
          most ``num_contexts`` (8) entries a first-minimum scan is already
          the "small ordered structure" the ≥2-runnable case needs;
        * once a context wins the scan, an inner loop keeps stepping it
          without rescanning for as long as a rescan would provably pick
          it again.  The other contexts' hints and runnable flags can only
          change inside ``_resolve_next`` or when a spawn allocates a new
          context, so between those events the winner keeps winning until
          its own hint passes the runner-up's (ties break by slot, exactly
          as in the scan).  This covers both the single-context modes and
          the dominant MTVP state (parent blocked on its spawn, one child
          running).
        """
        contexts = self._contexts
        pending = self._pending
        step = self._step
        while self._global_fetched < stop_at:
            best = None
            best_hint = 0
            for c in contexts:
                if (
                    c is None
                    or not c.alive
                    or c.blocked
                    or c.sb_paused
                    or c.done
                ):
                    continue
                hint = c.last_fetch
                if c.resume_at > hint:
                    hint = c.resume_at
                if best is None or hint < best_hint:
                    best = c
                    best_hint = hint
            if best is None:
                if pending:
                    self._resolve_next()
                    continue
                return
            if pending and pending[0][0] <= best_hint:
                self._resolve_next()
                continue
            # runner-up hint and the first slot achieving it: the winner
            # stays the scheduling choice while it beats this bound
            second_hint = -1
            second_slot = 0
            for c in contexts:
                if (
                    c is None
                    or c is best
                    or not c.alive
                    or c.blocked
                    or c.sb_paused
                    or c.done
                ):
                    continue
                hint = c.last_fetch
                if c.resume_at > hint:
                    hint = c.resume_at
                if second_hint < 0 or hint < second_hint:
                    second_hint = hint
                    second_slot = c.slot
            order_snap = self._next_order
            best_slot = best.slot
            c = best
            step(c)
            while (
                c.alive
                and not (c.blocked or c.sb_paused or c.done)
                and self._next_order == order_snap
                and self._global_fetched < stop_at
            ):
                hint = c.last_fetch
                if c.resume_at > hint:
                    hint = c.resume_at
                if second_hint >= 0 and (
                    hint > second_hint
                    or (hint == second_hint and best_slot > second_slot)
                ):
                    break
                if pending and pending[0][0] <= hint:
                    break
                step(c)

    def _run_scheduler_priority(self, stop_at: int = NO_LIMIT) -> None:
        """Time-ordered scheduling with a model-supplied fairness tie-break.

        Used when the bound execution model defines ``context_priority``
        (the SMT co-schedule): among runnable contexts the earliest time
        hint still wins — stepping out of time order would change shared
        allocator bookings — but ties resolve by the model's priority
        (ICOUNT-style: fewest fetched instructions first) before slot
        order, so independent programs share fetch bandwidth fairly when
        their clocks synchronize on a shared structural stall.
        """
        prio = self._priority_fn
        contexts = self._contexts
        pending = self._pending
        while self._global_fetched < stop_at:
            best = None
            best_key = None
            for c in contexts:
                if (
                    c is None
                    or not c.alive
                    or c.blocked
                    or c.sb_paused
                    or c.done
                ):
                    continue
                hint = c.last_fetch
                if c.resume_at > hint:
                    hint = c.resume_at
                key = (hint, prio(c), c.slot)
                if best is None or key < best_key:
                    best = c
                    best_key = key
            if best is None:
                if pending:
                    self._resolve_next()
                    continue
                return
            if pending and pending[0][0] <= best_key[0]:
                self._resolve_next()
                continue
            self._step(best)

    def _run_scheduler_reference(self, stop_at: int = NO_LIMIT) -> None:
        """The original rebuild-everything scheduler, kept for A/B tests.

        Bit-for-bit the pre-optimization loop; also tracks the peak number
        of simultaneously runnable contexts so tests can prove a trace
        exercised true multi-context scheduling.
        """
        while self._global_fetched < stop_at:
            runnable = [
                c for c in self._contexts if c is not None and c.alive and c.runnable
            ]
            if len(runnable) > self.max_runnable_observed:
                self.max_runnable_observed = len(runnable)
            if runnable:
                ctx = min(runnable, key=lambda c: c.next_time_hint)
                if self._pending and self._pending[0][0] <= ctx.next_time_hint:
                    self._resolve_next()
                    continue
                self._step(ctx)
                continue
            if self._pending:
                self._resolve_next()
                continue
            return
