"""Deferred ILP-pred measure retirement.

Measures are pure timing bookkeeping: each records the shadow of one load
episode (no prediction / STVP) so the selector can learn forward-progress
rates.  They never touch architectural state — a killed context drops its
pending measures wholesale.
"""

from __future__ import annotations

from collections import deque

from repro.core.context import ThreadContext
from repro.core.engine.records import _KIND, _NO_MEASURES
from repro.select import PredictionKind


class MeasureMixin:
    """Buffers per-context episode measurements until their window closes."""

    def _defer_measure(
        self,
        ctx: ThreadContext,
        pc: int,
        kind: PredictionKind,
        start_time: int,
        end_time: int,
    ) -> None:
        if len(ctx.pending_measures) >= 32:
            self._finalize_oldest(ctx)
        ctx.pending_measures.append(
            (pc, int(kind), start_time, end_time, self._global_fetched)
        )
        if end_time < ctx.measures_min_end:
            ctx.measures_min_end = end_time

    def _finalize_oldest(self, ctx: ThreadContext) -> None:
        pc, kind, start_t, end_t, start_count = ctx.pending_measures.popleft()
        self.selector.record(
            pc,
            _KIND[kind],
            max(0, self._global_fetched - start_count),
            max(1, end_t - start_t),
        )
        pm = ctx.pending_measures
        ctx.measures_min_end = min(e[3] for e in pm) if pm else _NO_MEASURES

    def _finalize_measures(self, ctx: ThreadContext, now: int) -> None:
        """Record every deferred episode whose window has closed.

        ``ctx.measures_min_end`` caches the earliest close time so the
        per-instruction caller can skip this scan entirely (the common
        case); it is refreshed whenever the pending set changes.
        """
        if not ctx.pending_measures:
            return
        selector_record = self.selector.record
        global_fetched = self._global_fetched
        remaining: deque[tuple[int, int, int, int, int]] = deque()
        for entry in ctx.pending_measures:
            pc, kind, start_t, end_t, start_count = entry
            if end_t <= now:
                selector_record(
                    pc,
                    _KIND[kind],
                    max(0, global_fetched - start_count),
                    max(1, end_t - start_t),
                )
            else:
                remaining.append(entry)
        ctx.pending_measures = remaining
        ctx.measures_min_end = (
            min(e[3] for e in remaining) if remaining else _NO_MEASURES
        )

    def _flush_measures(self, ctx: ThreadContext, drop: bool = False) -> None:
        if not drop:
            for pc, kind, start_t, end_t, start_count in ctx.pending_measures:
                self.selector.record(
                    pc,
                    _KIND[kind],
                    max(0, self._global_fetched - start_count),
                    max(1, end_t - start_t),
                )
        ctx.pending_measures.clear()
        ctx.measures_min_end = _NO_MEASURES
