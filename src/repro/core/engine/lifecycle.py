"""Spawn / join / kill lifecycle of speculative contexts.

This is where architectural and timing state meet: spawning flash-copies
the architectural register map into a child, confirmation promotes
speculative store-buffer contents (architectural) and splices the context
chain, and a kill discards both the child's buffered stores and its pending
timing bookkeeping.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.core.config import SimMode
from repro.core.context import ThreadContext
from repro.core.engine.records import SpawnRecord
from repro.isa import Instruction


class LifecycleMixin:
    """Creates, confirms and squashes speculative contexts."""

    def _spawn(
        self,
        parent: ThreadContext,
        inst: Instruction,
        values: list[tuple[int, int]],
        t_queue: int,
        t_complete: int,
        kind: SimMode,
    ) -> SpawnRecord:
        """Create speculative context(s) for the given predicted values."""
        record = SpawnRecord(
            resolve_time=t_complete,
            parent=parent,
            actual=inst.value or 0,
            pc=inst.pc,
            start_time=t_queue,
            kind=kind,
        )
        record.start_global = self._global_fetched
        for value, ready_time in values:
            slot = self._free_slot()
            if slot is None:
                break
            child = ThreadContext(
                slot=slot,
                order=self._alloc_order(),
                pos=parent.pos + 1,
                start_time=ready_time,
                parent=parent,
                speculative=True,
            )
            child.reg_ready[inst.dst] = ready_time if kind is SimMode.MTVP else t_complete
            child.spawn_record_as_child = record
            if child.pos >= parent.trace_len:
                # spawned on the final instruction: nothing left to run,
                # the child only waits for its confirmation
                child.done = True
            parent.children.append(child)
            self._contexts[slot] = child
            record.children.append((child, value))
            self.stats.spawns += 1
        parent.arch_limit = parent.pos
        parent.pending_spawn = True
        parent.spawn_record_as_parent = record
        heappush(self._pending, (t_complete, self._heap_seq, record))
        self._heap_seq += 1
        obs = self._obs
        if obs is not None:
            for child, value in record.children:
                obs.spawn(t_queue, parent.order, child.order, inst.pc, value)
            obs.context_count(t_queue, len(self._alive_contexts()))
        return record

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _resolve_next(self) -> None:
        """Resolve the earliest record on the time-ordered pending heap."""
        resolve_time, _seq, record = heappop(self._pending)
        self._resolve_record(record, resolve_time)

    def _resolve_record(self, record: SpawnRecord, resolve_time: int) -> None:
        """Confirm or squash one outstanding spawn at ``resolve_time``.

        Winner selection and statistics attribution are execution-model
        policy (:mod:`repro.core.modes`); the context-graph surgery —
        killing losers, retiring the parent, promoting the winner — is
        shared mechanism and lives here.  Value-predicted spawns arrive
        through :meth:`_resolve_next` when their load returns; SPMT spawns
        arrive straight from the step kernel when the parent reaches the
        child's start position.
        """
        if record.void or not record.parent.alive:
            return
        parent = record.parent
        stats = self.stats
        model = self.model
        obs = self._obs
        if obs is not None:
            obs.now = resolve_time
            obs.tid = parent.order

        winner: ThreadContext | None = None
        for child, value in record.children:
            if child.alive and model.child_wins(record, child, value):
                winner = child
                break
        losers = [
            child
            for child, _v in record.children
            if child.alive and child is not winner
        ]
        for loser in losers:
            self._kill_subtree(loser, resolve_time)

        if winner is None:
            # misprediction: parent resumes past the load; the speculative
            # progress made was useless, so ILP-pred sees zero
            model.on_mispredict(self, record, resolve_time)
            parent.blocked = False
            parent.pending_spawn = False
            parent.spawn_record_as_parent = None
            if resolve_time + 1 > parent.resume_at:
                parent.resume_at = resolve_time + 1
            # any progress the parent made past the load (no-stall policy)
            # is real execution and becomes architectural
            parent.within_commits += parent.beyond_commits
            parent.beyond_commits = 0
            parent.arch_limit = None
            if obs is not None:
                obs.squash(resolve_time, parent.order, record.pc)
                obs.context_count(resolve_time, len(self._alive_contexts()))
            return

        # confirmation: the parent retires, the winner carries on
        stats.confirms += 1
        model.on_confirm(self, record, winner, resolve_time)
        # parent's other children (spawned from its doomed post-load
        # stream under the no-stall policy) die with it
        for other in list(parent.children):
            if other is not winner and other.alive:
                self._kill_subtree(other, resolve_time)
        self._retire_parent(parent, winner, record, resolve_time)
        if obs is not None:
            obs.join(
                resolve_time, winner.order, parent.order, record.pc,
                max(0, self._global_fetched - record.start_global),
                max(1, resolve_time - record.start_time),
            )
            obs.context_count(resolve_time, len(self._alive_contexts()))

    def _retire_parent(
        self,
        parent: ThreadContext,
        winner: ThreadContext,
        record: SpawnRecord,
        resolve_time: int,
    ) -> None:
        """Release the parent after a confirmed prediction; its work stands.

        The parent's architectural contribution (commits up to and
        including the predicted load) folds *into the winner*: it only
        becomes finally useful if the whole chain below the winner
        survives.  If an older outstanding prediction later turns out
        wrong, the winner — now carrying these counts — is killed and the
        work is correctly accounted as wasted.
        """
        # everything up to and including the load travels with the winner
        winner.within_commits += parent.within_commits
        for t in (parent.last_within_commit, record.load_commit_time, resolve_time):
            if t > winner.last_within_commit:
                winner.last_within_commit = t
        # progress past the load (no-stall policy) duplicated work the
        # winner already performed — wasted either way
        self.stats.wasted_instructions += parent.beyond_commits
        self._flush_measures(parent)
        parent.alive = False
        self._contexts[parent.slot] = None
        # splice the chain: the winner replaces the parent everywhere
        grand = parent.parent
        winner.parent = grand
        if grand is not None:
            if parent in grand.children:
                grand.children.remove(parent)
            grand.children.append(winner)
        outer = parent.spawn_record_as_child
        if outer is not None and not outer.void:
            outer.children = [
                (winner if c is parent else c, v) for c, v in outer.children
            ]
            winner.spawn_record_as_child = outer
        else:
            winner.spawn_record_as_child = None
        # speculative status propagates down the chain
        if not parent.speculative:
            self._make_architectural(winner, resolve_time)

    def _make_architectural(self, ctx: ThreadContext, now: int) -> None:
        """Promote a confirmed context to non-speculative status."""
        ctx.speculative = False
        # release this thread's (and dead ancestors') buffered stores
        for entry in self.store_buffer.drain_upto(ctx.order):
            self.hierarchy.store(entry.addr, max(entry.time, now))
        self._wake_sb_waiters(now)
        if ctx.sb_paused:
            ctx.sb_paused = False
            if now > ctx.resume_at:
                ctx.resume_at = now

    def _kill_subtree(self, ctx: ThreadContext, now: int) -> None:
        """Squash a mispredicted context and every thread it spawned."""
        for child in list(ctx.children):
            if child.alive:
                self._kill_subtree(child, now)
        # void the (at most one) pending record where ctx is the parent
        record = ctx.spawn_record_as_parent
        if record is not None:
            record.void = True
            ctx.spawn_record_as_parent = None
        self.stats.kills += 1
        self.stats.wasted_instructions += ctx.within_commits + ctx.beyond_commits
        if self._obs is not None:
            self._obs.kill(now, ctx.order, ctx.within_commits + ctx.beyond_commits)
        self.store_buffer.squash_thread(ctx.order)
        self._flush_measures(ctx, drop=True)
        ctx.alive = False
        if self._contexts[ctx.slot] is ctx:
            self._contexts[ctx.slot] = None
        if ctx.parent is not None and ctx in ctx.parent.children:
            ctx.parent.children.remove(ctx)
        self._wake_sb_waiters(now)

    def _wake_sb_waiters(self, now: int) -> None:
        if not self._sb_waiters:
            return
        waiters, self._sb_waiters = self._sb_waiters, []
        for ctx in waiters:
            if not ctx.alive:
                continue
            ctx.sb_paused = False
            if now > ctx.resume_at:
                ctx.resume_at = now
