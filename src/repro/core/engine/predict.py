"""The load-prediction path: delegate to the bound execution model.

The actual STVP/MTVP/spawn-only routing lives in strategy objects under
:mod:`repro.core.modes` (see ``paper.py`` there); this mixin is the seam
the step kernel calls through.  It exists as a method (rather than a
direct bound-callable) so subclass engines and tests can still override
or wrap the prediction path in one place.
"""

from __future__ import annotations

from repro.core.context import ThreadContext
from repro.core.engine.records import SpawnRecord
from repro.isa import Instruction
from repro.memory import MemLevel


class PredictMixin:
    """Routes each confidently-predicted load through the execution model."""

    def _handle_load_prediction(
        self,
        ctx: ThreadContext,
        inst: Instruction,
        t_queue: int,
        t_complete: int,
        expected_level: MemLevel | None,
    ) -> tuple[int, SpawnRecord | None]:
        """Decide on and apply a value prediction for this load.

        Returns (destination ready time, spawn record or None).
        """
        return self.model.handle_load_prediction(
            self, ctx, inst, t_queue, t_complete, expected_level
        )
