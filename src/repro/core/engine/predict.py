"""The load-prediction path: decide on and apply a value prediction."""

from __future__ import annotations

from repro.core.config import SimMode
from repro.core.context import ThreadContext
from repro.core.engine.records import SpawnRecord
from repro.isa import Instruction
from repro.memory import MemLevel
from repro.select import PredictionKind


class PredictMixin:
    """Chooses STVP / MTVP / nothing for each confidently-predicted load."""

    def _handle_load_prediction(
        self,
        ctx: ThreadContext,
        inst: Instruction,
        t_queue: int,
        t_complete: int,
        expected_level: MemLevel | None,
    ) -> tuple[int, SpawnRecord | None]:
        """Decide on and apply a value prediction for this load.

        Returns (destination ready time, spawn record or None).
        """
        stats = self.stats
        predictor = self.predictor
        mode = self._mode
        # every unpredicted load contributes a no-prediction episode so the
        # ILP-pred baseline exists even for PCs that always hit the L1
        # (those are exactly the loads it must learn not to spawn on)
        worth_measuring = True

        spawn_possible = (
            self._spawn_capable
            and not ctx.pending_spawn
            and self._free_slot() is not None
        )

        if mode is SimMode.SPAWN_ONLY:
            kind = self.selector.choose(inst, spawn_possible, expected_level)
            if kind is not PredictionKind.MTVP or not spawn_possible:
                if kind is PredictionKind.MTVP:
                    stats.spawn_denied_no_context += 1
                if worth_measuring:
                    self._defer_measure(
                        ctx, inst.pc, PredictionKind.NONE, t_queue, t_complete
                    )
                return t_complete, None
            # spawn-only: the child waits for the real value (no VP)
            if self._obs is not None:
                self._obs.predict(
                    t_queue, ctx.order, inst.pc, "spawn", inst.value or 0
                )
            record = self._spawn(
                ctx, inst, [(inst.value or 0, t_complete)], t_queue, t_complete,
                SimMode.SPAWN_ONLY,
            )
            return t_complete, record

        prediction = predictor.predict(inst)
        if prediction is None:
            if worth_measuring:
                self._defer_measure(ctx, inst.pc, PredictionKind.NONE, t_queue, t_complete)
            return t_complete, None

        if mode is SimMode.MTVP and not spawn_possible:
            # a confident prediction arrived while every context was busy —
            # the lost-opportunity statistic behind the thread-count studies
            stats.spawn_denied_no_context += 1

        kind = self.selector.choose(inst, spawn_possible, expected_level)
        if mode is SimMode.STVP and kind is PredictionKind.MTVP:
            kind = PredictionKind.STVP
        if kind is PredictionKind.NONE:
            stats.declined_predictions += 1
            if worth_measuring:
                self._defer_measure(ctx, inst.pc, PredictionKind.NONE, t_queue, t_complete)
            return t_complete, None

        # Figure 5 instrumentation: was the right value available even when
        # the primary prediction is wrong?
        if self._collect_multivalue:
            stats.followed_predictions += 1
            if prediction.value != inst.value:
                candidates = predictor.predict_all(inst)
                if any(p.value == inst.value for p in candidates):
                    stats.primary_wrong_candidate_present += 1

        if kind is PredictionKind.MTVP and not spawn_possible:
            kind = PredictionKind.STVP

        if kind is PredictionKind.STVP:
            stats.stvp_predictions += 1
            correct = prediction.value == inst.value
            predictor.record_outcome(correct)
            if self._obs is not None:
                self._obs.predict(
                    t_queue, ctx.order, inst.pc, "stvp", prediction.value
                )
                self._obs.stvp_outcome(t_complete, ctx.order, inst.pc, correct)
            self._defer_measure(ctx, inst.pc, PredictionKind.STVP, t_queue, t_complete)
            if correct:
                stats.stvp_correct += 1
                return t_queue, None
            stats.stvp_incorrect += 1
            # selective re-issue: dependents re-execute once the true value
            # arrives; commit was never early, so only the dependents pay
            return t_complete + self._reissue_penalty, None

        # MTVP: spawn one thread per followed value (multi-value capable)
        values: list[tuple[int, int]] = []
        spawn_ready = t_queue + self._spawn_latency
        if self._multi_value > 1:
            for cand in predictor.predict_all(inst)[: self._multi_value]:
                values.append((cand.value, spawn_ready))
        else:
            values.append((prediction.value, spawn_ready))
        stats.mtvp_predictions += 1
        if self._obs is not None:
            self._obs.predict(t_queue, ctx.order, inst.pc, "mtvp", prediction.value)
        record = self._spawn(ctx, inst, values, t_queue, t_complete, SimMode.MTVP)
        return t_complete, record
