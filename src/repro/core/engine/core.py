"""The :class:`Engine` facade: construction, the run loop and final stats.

The engine's behaviour lives in focused mixins (see the package docstring
in :mod:`repro.core.engine`); this module owns the state they share —
construction wires every component, :meth:`Engine.run` drives the scheduler
and closes the books.  The facade is also where the run's *lifecycle*
flags live: a run can be paused (``run(max_steps=...)`` returns ``None``)
and resumed, or checkpointed between segments via the snapshot mixin.
"""

from __future__ import annotations

import time

from repro.branch import TwoBcGskewPredictor
from repro.core.allocators import PortedIssue, SlotAllocator
from repro.core.config import FetchPolicy, MachineConfig
from repro.core.context import ThreadContext
from repro.core.engine.lifecycle import LifecycleMixin
from repro.core.engine.measures import MeasureMixin
from repro.core.engine.predict import PredictMixin
from repro.core.engine.records import SpawnRecord
from repro.core.engine.scheduler import NO_LIMIT, SchedulerMixin
from repro.core.engine.snapshot import SnapshotMixin
from repro.core.engine.step import StepMixin
from repro.core.engine.warmup import WarmupMixin
from repro.core.modes import resolve_model
from repro.core.stats import SimStats
from repro.isa import Instruction
from repro.memory import Cache, MemoryHierarchy, StoreBuffer, StridePrefetcher
from repro.obs import MetricsRegistry, Probe, Tracer
from repro.select import AlwaysSelector, LoadSelector
from repro.vp import ValuePredictor
from repro.vp.oracle import OraclePredictor


class Engine(
    SchedulerMixin,
    StepMixin,
    PredictMixin,
    LifecycleMixin,
    MeasureMixin,
    WarmupMixin,
    SnapshotMixin,
):
    """Runs one trace through one machine configuration.

    Args:
        trace: Dynamic instruction sequence (see :mod:`repro.workloads`).
        config: Machine parameters and simulation mode.
        predictor: Load value predictor; defaults to the oracle.
        selector: Load selector; defaults to :class:`AlwaysSelector`.
        reference_scheduler: Debug flag — run the straightforward
            rebuild-and-``min()`` scheduler instead of the optimized
            incremental one.  Results must be identical; tests compare the
            two.  The reference path additionally records
            ``max_runnable_observed``.
        tracer: Optional :class:`~repro.obs.Tracer`; when given, the run
            emits structured cycle-stamped events into it.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; when given,
            occupancy/speculation metrics land in ``stats.extended``.
            Instrumentation is strictly read-only: an instrumented run
            produces bit-identical :class:`SimStats` counters.
    """

    def __init__(
        self,
        trace: list[Instruction],
        config: MachineConfig,
        predictor: ValuePredictor | None = None,
        selector: LoadSelector | None = None,
        warm_addresses=None,
        reference_scheduler: bool = False,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        traces: list[list[Instruction]] | None = None,
    ) -> None:
        model = self.model = resolve_model(config.mode)
        if traces is None:
            traces = [trace]
        else:
            traces = list(traces)
            if not traces:
                raise ValueError("traces must not be empty")
            trace = traces[0]
        if any(not t for t in traces):
            raise ValueError("trace must not be empty")
        if model.multi_program:
            if len(traces) != config.num_contexts:
                raise ValueError(
                    f"{config.mode.value} runs one program per context: got "
                    f"{len(traces)} trace(s) for {config.num_contexts} "
                    f"context(s) (pass traces=[...], one per program)"
                )
        elif len(traces) != 1:
            raise ValueError(
                f"mode {config.mode.value} runs a single program; got "
                f"{len(traces)} traces"
            )
        self.trace = trace
        self._traces = traces
        self.config = config
        self.reference_scheduler = reference_scheduler
        #: peak simultaneously-runnable contexts (reference scheduler only)
        self.max_runnable_observed = 0
        self.predictor = predictor if predictor is not None else OraclePredictor()
        self.selector = selector if selector is not None else AlwaysSelector()
        self.stats = SimStats()

        prefetcher = None
        if config.prefetch_enabled:
            prefetcher = StridePrefetcher(
                table_entries=config.prefetch_entries,
                num_streams=config.prefetch_streams,
                depth=config.prefetch_depth,
                line_size=config.line_size,
                fill_latency=config.prefetch_fill_latency,
                hit_latency=config.l1_latency + 2,
            )
        self.hierarchy = MemoryHierarchy(
            l1=Cache(config.l1_size, config.l1_assoc, config.line_size,
                     config.l1_latency, "L1D"),
            l2=Cache(config.l2_size, config.l2_assoc, config.line_size,
                     config.l2_latency, "L2"),
            l3=Cache(config.l3_size, config.l3_assoc, config.line_size,
                     config.l3_latency, "L3"),
            mem_latency=config.mem_latency,
            prefetcher=prefetcher,
            mshrs=config.mshrs,
        )
        self.branch_predictor = TwoBcGskewPredictor()
        self.store_buffer = StoreBuffer(capacity=config.store_buffer_entries)
        # SMT: one shared set of queues/rename/issue/fetch (slot index 0);
        # CMP: private per-core copies (indexed by hardware context slot)
        n_groups = 1 if config.smt_shared else config.num_contexts
        self._issue_groups = [
            PortedIssue(
                config.issue_width, config.int_issue, config.fp_issue,
                config.mem_issue,
            )
            for _ in range(n_groups)
        ]
        self._fetch_groups = [
            SlotAllocator(config.fetch_width, "fetch") for _ in range(n_groups)
        ]
        # instruction queues (IQ / FQ / MQ): min-heaps of issue times of
        # occupant entries — a slot frees when its entry issues, in any
        # order (real IQs are not FIFOs)
        self._iq_groups = [
            {"int": [], "fp": [], "mem": []} for _ in range(n_groups)
        ]
        # rename-register pool: min-heap of commit times of in-flight
        # writers (registers free at commit)
        self._rename_groups: list[list[int]] = [[] for _ in range(n_groups)]

        self._contexts: list[ThreadContext | None] = [None] * config.num_contexts
        self._next_order = 0
        self._pending: list[tuple[int, int, SpawnRecord]] = []
        self._heap_seq = 0
        self._sb_waiters: list[ThreadContext] = []
        self._finish_time = 0
        #: run lifecycle: ``_started`` flips on the first ``run()`` call,
        #: ``_finished`` when the trace drains; between the two the engine
        #: may be paused (``run(max_steps=...)`` returned None)
        self._started = False
        self._finished = False
        self._wall_accum = 0.0

        #: processor-wide fetched-instruction counter; ILP-pred episodes are
        #: measured in total forward progress, as in the paper
        self._global_fetched = 0

        # hot-loop bindings: config fields read once per *instruction* are
        # hoisted onto the engine so _step touches plain attributes instead
        # of chasing self.config.<field> every time
        self._trace_len = len(trace)
        self._rob_size = config.rob_size
        self._iq_size = config.iq_size
        self._rename_regs = config.rename_regs
        self._front_latency = config.front_latency
        self._commit_width = config.commit_width
        self._l1_latency = config.l1_latency
        self._smt_shared = config.smt_shared
        # mode policy is a strategy object (repro.core.modes); its
        # capability flags are hoisted here so the step kernel keeps
        # reading plain attributes
        self._vp_on = model.uses_value_prediction
        self._fetch_single = config.fetch_policy is FetchPolicy.SINGLE_FETCH_PATH
        self._mode = config.mode
        self._spawn_capable = model.spawn_capable
        self._branch_spawn = model.spawn_on_branches
        self._priority_fn = model.context_priority
        self._multi_value = config.multi_value
        self._spawn_latency = config.spawn_latency
        self._spmt_skip = config.spmt_skip
        self._reissue_penalty = config.reissue_penalty
        self._collect_multivalue = config.collect_multivalue

        roots = []
        for i, tr in enumerate(traces):
            root = ThreadContext(slot=i, order=self._alloc_order(), pos=0)
            root.trace = tr
            root.trace_len = len(tr)
            root.stream = i
            self._contexts[i] = root
            roots.append(root)
        root = roots[0]

        #: live observability probe, or None.  The hot loop tests this one
        #: attribute per instruction; components carry the NULL_PROBE when
        #: no probe is attached, so the disabled path costs a single
        #: attribute read at every hook site.
        self._obs: Probe | None = None
        if tracer is not None or metrics is not None:
            obs = self._obs = Probe(tracer=tracer, metrics=metrics)
            self.hierarchy.obs = obs
            if prefetcher is not None:
                prefetcher.obs = obs
            self.branch_predictor.obs = obs
            self.predictor.obs = obs
            for r in roots:
                obs.register_thread(r.order, f"ctx{r.slot}")
            obs.context_count(0, len(roots))

        if config.warm_caches:
            self._warm_state(warm_addresses, roots)

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _alloc_order(self) -> int:
        order = self._next_order
        self._next_order += 1
        return order

    def _free_slot(self) -> int | None:
        for i, ctx in enumerate(self._contexts):
            if ctx is None:
                return i
        return None

    def _alive_contexts(self) -> list[ThreadContext]:
        return [c for c in self._contexts if c is not None and c.alive]

    def _has_work(self) -> bool:
        """True while the run can still make progress (paused, not done)."""
        if self._pending:
            return True
        return any(
            c is not None and c.alive and c.runnable for c in self._contexts
        )

    def timing_pristine(self) -> bool:
        """True while no *timing* state has accumulated.

        Fresh constructions and functionally-warmed engines
        (:meth:`fast_forward`, ``warm_caches``) qualify — their caches and
        predictor tables may hold architectural state, but no instruction
        has booked a window slot, port cycle or deferred measure yet.  A
        paused or checkpoint-restored run does not.  The lane-batched
        kernel (:mod:`repro.core.engine.batch`) requires this: it attaches
        to an engine by materializing its timing state as array rows, and
        a pristine engine makes that initial state a constant.
        """
        if self._started or self._pending or self.store_buffer.total:
            return False
        root = self._contexts[0]
        if root is None or root.rob or root.pending_measures:
            return False
        if any(self._rename_groups) or any(
            heap for group in self._iq_groups for heap in group.values()
        ):
            return False
        if any(alloc.acquired or alloc._booked for alloc in self._fetch_groups):
            return False
        return not any(ported.issued for ported in self._issue_groups)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, max_steps: int | None = None) -> SimStats | None:
        """Simulate the trace; returns the statistics object.

        Without ``max_steps`` the whole remaining trace runs, exactly as
        before.  With ``max_steps`` the engine steps at most that many
        instructions and then *pauses*, returning ``None``; the caller may
        resume with another ``run()`` call (or snapshot the paused state).
        Segmenting a run never changes its results — the scheduler stops
        between instructions, at a point every decision has already been
        made for.
        """
        if self._finished:
            raise RuntimeError("Engine.run() may only be called once")
        self._started = True
        t0 = time.perf_counter()
        stop_at = (
            NO_LIMIT if max_steps is None else self._global_fetched + max_steps
        )
        if self.reference_scheduler:
            self._run_scheduler_reference(stop_at)
        elif self._priority_fn is not None:
            self._run_scheduler_priority(stop_at)
        else:
            self._run_scheduler(stop_at)
        if self._has_work():
            # budget exhausted mid-run: pause, resumable
            self._wall_accum += time.perf_counter() - t0
            return None
        self._finished = True
        self._close_final()
        self._collect_component_stats()
        stats = self.stats
        if self._obs is not None:
            stats.extended = self._obs.finalize(self._finish_time)
        stats.instructions_stepped = self._global_fetched
        self._wall_accum += time.perf_counter() - t0
        stats.wall_seconds = self._wall_accum
        return stats

    def _close_final(self) -> None:
        """Fold the surviving context(s) into the final accounting."""
        survivors = self._alive_contexts()
        for ctx in survivors:
            # the remaining context is the architectural head; every commit
            # it made within its arch range is useful
            self.stats.useful_instructions += ctx.within_commits
            self.stats.wasted_instructions += ctx.beyond_commits
            if ctx.last_within_commit > self._finish_time:
                self._finish_time = ctx.last_within_commit
            self._flush_measures(ctx)
        self.stats.cycles = self._finish_time
        self.model.finalize_stats(self)

    def _collect_component_stats(self) -> None:
        self.stats.level_counts = dict(self.hierarchy.level_counts)
        self.stats.store_forwards = self.store_buffer.forward_hits
        pf = self.hierarchy.prefetcher
        if pf is not None:
            self.stats.prefetch_stream_hits = pf.stream_hits
            self.stats.prefetch_mistrains = pf.mistrains
