"""Machine configuration (Table 1) and simulation modes."""

from __future__ import annotations

import dataclasses
import enum


class SimMode(enum.Enum):
    """Which latency-tolerance architecture the engine models."""

    #: no value prediction at all (the speedup denominator everywhere)
    BASELINE = "baseline"
    #: single-threaded value prediction with selective re-issue recovery
    STVP = "stvp"
    #: threaded value prediction (the paper's contribution)
    MTVP = "mtvp"
    #: thread split without value prediction — the "spawn only" comparator
    #: of Section 5.7 (window separation, no dependence breaking)
    SPAWN_ONLY = "spawn_only"
    #: N independent programs co-scheduled over the shared pipeline — the
    #: classic multiprogrammed SMT substrate the paper's machine descends
    #: from; measures inter-program interference, no speculation at all
    SMT = "smt"
    #: Prophet-style speculative multithreading: spawn a thread at a
    #: control-flow boundary ahead of the parent with pre-computed
    #: live-ins; squash when the control speculation was wrong
    SPMT = "spmt"


class FetchPolicy(enum.Enum):
    """Parent-thread fetch behaviour after spawning (Section 5.5)."""

    #: the paper's default: the spawning thread stops fetching until the
    #: prediction is confirmed ("single fetch path MTVP")
    SINGLE_FETCH_PATH = "single_fetch_path"
    #: the aggressive policy: the parent keeps fetching and executing,
    #: competing with the speculative thread (shown to be counterproductive)
    NO_STALL = "no_stall"


@dataclasses.dataclass
class MachineConfig:
    """All architectural parameters of the simulated machine.

    Defaults reproduce Table 1 of the paper.  The front end is a 30-stage
    pipe fetching 16 instructions per cycle; ``front_latency`` is the
    fetch-to-queue depth and ``redirect_penalty`` the full refill charged
    on a branch misprediction.
    """

    # pipeline
    pipeline_depth: int = 30
    fetch_width: int = 16
    front_latency: int = 15
    redirect_penalty: int = 30
    # windows
    rob_size: int = 256
    rename_regs: int = 224
    iq_size: int = 64  # each of IQ, FQ and MQ
    # issue
    issue_width: int = 8
    int_issue: int = 6
    fp_issue: int = 2
    mem_issue: int = 4
    commit_width: int = 8
    # memory hierarchy (sizes in bytes, latencies in cycles)
    l1_size: int = 64 * 1024
    l1_assoc: int = 2
    l1_latency: int = 2
    l2_size: int = 512 * 1024
    l2_assoc: int = 8
    l2_latency: int = 20
    l3_size: int = 4 * 1024 * 1024
    l3_assoc: int = 16
    l3_latency: int = 50
    mem_latency: int = 1000
    line_size: int = 64
    #: outstanding memory-miss limit (MSHRs) — the machine's MLP cap
    mshrs: int = 16
    # prefetcher (Table 1: PC based, 256 entry, 8 stream buffers)
    prefetch_enabled: bool = True
    prefetch_entries: int = 256
    prefetch_streams: int = 8
    prefetch_depth: int = 32
    #: time for a prefetched line to arrive in a stream buffer; prefetches
    #: usually target lines far from the core, so this sits between the L3
    #: and main-memory latencies (pipelined, aggressively ahead)
    prefetch_fill_latency: int = 250
    # threading
    num_contexts: int = 8
    #: True models SMT (Section 3.2's default substrate): contexts share
    #: the instruction queues, rename pool, issue ports and fetch
    #: bandwidth.  False models a chip multiprocessor: every context owns
    #: private copies of all four — more aggregate resources, but thread
    #: spawns must copy register state between cores, which is why the
    #: CMP preset uses a far larger spawn latency.
    smt_shared: bool = True
    spawn_latency: int = 8
    store_buffer_entries: int | None = 128
    fetch_policy: FetchPolicy = FetchPolicy.SINGLE_FETCH_PATH
    # prediction behaviour
    mode: SimMode = SimMode.MTVP
    multi_value: int = 1
    reissue_penalty: int = 2
    #: SPMT only: how many instructions past the spawning branch the
    #: speculative thread starts (the skipped region the parent still
    #: executes; Prophet's "future execution region" distance)
    spmt_skip: int = 48
    # instrumentation
    collect_multivalue: bool = False
    #: pre-touch the trace's memory footprint before timing starts, so a
    #: short trace behaves like the steady-state SimPoint window it models
    #: rather than a cold-cache startup transient
    warm_caches: bool = True

    def __post_init__(self) -> None:
        if self.num_contexts < 1:
            raise ValueError("need at least one hardware context")
        if self.multi_value < 1:
            raise ValueError("multi_value must be at least 1")
        # the execution model owns per-mode normalization (single-threaded
        # modes use exactly one context, so experiment code can vary only
        # `mode`); the import is local because modes imports this module
        from repro.core.modes import resolve_model

        if resolve_model(self.mode).single_context and self.num_contexts != 1:
            self.num_contexts = 1
        if self.spawn_latency < 0:
            raise ValueError("spawn_latency must be non-negative")
        if self.spmt_skip < 1:
            raise ValueError("spmt_skip must be at least 1")

    # ------------------------------------------------------------------
    @classmethod
    def hpca05_baseline(cls, **overrides) -> "MachineConfig":
        """The Table 1 machine with no value prediction."""
        return cls(mode=SimMode.BASELINE, num_contexts=1, **overrides)

    @classmethod
    def stvp(cls, **overrides) -> "MachineConfig":
        """Single-threaded value prediction on the Table 1 machine."""
        return cls(mode=SimMode.STVP, num_contexts=1, **overrides)

    @classmethod
    def mtvp(cls, threads: int = 8, **overrides) -> "MachineConfig":
        """Threaded value prediction with ``threads`` hardware contexts."""
        return cls(mode=SimMode.MTVP, num_contexts=threads, **overrides)

    @classmethod
    def cmp(cls, cores: int = 8, **overrides) -> "MachineConfig":
        """Threaded value prediction on a chip multiprocessor.

        Section 3.2: on a CMP, replicating register state "would require a
        more expensive mechanism to copy state" than the SMT flash copy —
        the default spawn latency here models an inter-core transfer.
        Each core owns private queues, rename registers, issue ports and
        fetch bandwidth; the cache hierarchy below the L1 stays shared.
        """
        params = dict(
            mode=SimMode.MTVP,
            num_contexts=cores,
            smt_shared=False,
            spawn_latency=32,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def spawn_only(cls, threads: int = 8, **overrides) -> "MachineConfig":
        """The Section 5.7 'spawn only' machine (split window, no VP)."""
        return cls(mode=SimMode.SPAWN_ONLY, num_contexts=threads, **overrides)

    @classmethod
    def smt(cls, programs: int = 2, **overrides) -> "MachineConfig":
        """``programs`` independent workloads co-scheduled over one core.

        The multiprogrammed SMT substrate: every context runs its own
        program, competing for the shared instruction queues, rename pool,
        issue ports, fetch bandwidth and cache hierarchy.  No value
        prediction, no speculation — the measurement is interference.
        """
        return cls(mode=SimMode.SMT, num_contexts=programs, **overrides)

    @classmethod
    def spmt(cls, threads: int = 8, **overrides) -> "MachineConfig":
        """Prophet-style speculative multithreading on the Table 1 machine.

        Threads spawn at control-flow boundaries ``spmt_skip`` instructions
        ahead of the parent with pre-computed live-ins, and are squashed
        when the spawning branch was mispredicted.
        """
        return cls(mode=SimMode.SPMT, num_contexts=threads, **overrides)

    @classmethod
    def wide_window(cls, **overrides) -> "MachineConfig":
        """Section 5.7's idealized checkpoint machine.

        "a machine with similar architectural parameters except for an 8192
        entry ROB, unlimited registers and 8192 entry queues."
        """
        params = dict(
            mode=SimMode.BASELINE,
            num_contexts=1,
            rob_size=8192,
            iq_size=8192,
            rename_regs=1 << 30,
        )
        params.update(overrides)
        return cls(**params)
