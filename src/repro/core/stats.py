"""Simulation statistics."""

from __future__ import annotations

import dataclasses

from repro.memory import MemLevel

#: serialization schema emitted by :meth:`SimStats.to_dict` alongside the
#: ``extended`` section.  Version 1 is the implicit original layout (no
#: marker); version 2 added ``extended``.  The marker only appears when
#: ``extended`` is non-empty, so version-1 consumers and stored fixtures
#: (caches, golden files) see byte-identical output for ordinary runs.
SCHEMA_VERSION = 2


@dataclasses.dataclass
class SimStats:
    """Counters and derived metrics from one simulation run.

    ``useful_instructions`` counts only instructions whose results became
    architectural — commits by the non-speculative thread plus speculative
    commits that were later confirmed.  ``useful_ipc`` is the paper's
    headline metric ("Change in Useful IPC").
    """

    # headline
    cycles: int = 0
    useful_instructions: int = 0
    wasted_instructions: int = 0
    # value prediction
    stvp_predictions: int = 0
    stvp_correct: int = 0
    stvp_incorrect: int = 0
    mtvp_predictions: int = 0
    mtvp_correct: int = 0
    mtvp_incorrect: int = 0
    declined_predictions: int = 0
    # threading
    spawns: int = 0
    confirms: int = 0
    kills: int = 0
    spawn_denied_no_context: int = 0
    store_buffer_stalls: int = 0
    # speculative multithreading (SPMT mode only; zero elsewhere)
    spmt_spawns: int = 0
    spmt_squashes: int = 0
    #: per-program attribution rows (SMT co-schedule mode only): one dict
    #: per root context with its stream index, commits, cycles and IPC
    per_context: list = dataclasses.field(default_factory=list)
    # front end
    branches: int = 0
    branch_mispredicts: int = 0
    # memory
    loads: int = 0
    stores: int = 0
    store_forwards: int = 0
    level_counts: dict[MemLevel, int] = dataclasses.field(
        default_factory=lambda: {level: 0 for level in MemLevel}
    )
    prefetch_stream_hits: int = 0
    prefetch_mistrains: int = 0
    # multiple-value potential (Figure 5)
    followed_predictions: int = 0
    primary_wrong_candidate_present: int = 0
    # throughput instrumentation
    #: every instruction the engine stepped, speculative or not (equals the
    #: engine's processor-wide fetched counter); deterministic, unlike the
    #: commit-accounted useful/wasted split it decomposes into
    instructions_stepped: int = 0
    # interval accounting (warmup + sample protocol)
    #: instructions skipped by functional fast-forward before the timed
    #: region; all other counters describe only the measured interval
    warmup_instructions: int = 0
    #: host wall-clock seconds spent inside Engine.run(); volatile (machine-
    #: dependent), so it is excluded from equality and from to_dict()
    wall_seconds: float = dataclasses.field(default=0.0, compare=False)
    #: observability payload from :mod:`repro.obs` (counters, cycle-weighted
    #: histograms, trace summary); empty for uninstrumented runs.  Excluded
    #: from equality so an instrumented run compares equal to its
    #: uninstrumented twin — instrumentation is read-only by contract.
    extended: dict = dataclasses.field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    @property
    def useful_ipc(self) -> float:
        """Useful instructions per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.useful_instructions / self.cycles

    @property
    def total_predictions(self) -> int:
        """All value predictions acted upon (STVP + MTVP)."""
        return self.stvp_predictions + self.mtvp_predictions

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of acted-upon predictions that were correct."""
        total = self.total_predictions
        if not total:
            return 0.0
        return (self.stvp_correct + self.mtvp_correct) / total

    @property
    def branch_accuracy(self) -> float:
        """Branch direction prediction accuracy."""
        if not self.branches:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branches

    @property
    def memory_miss_fraction(self) -> float:
        """Fraction of loads that went all the way to main memory."""
        if not self.loads:
            return 0.0
        return self.level_counts[MemLevel.MEMORY] / self.loads

    @property
    def sim_kips(self) -> float:
        """Simulation throughput: thousands of stepped instructions per
        host wall-clock second.  0.0 when no timing was recorded (e.g. a
        stats object rebuilt from a cache entry)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instructions_stepped / self.wall_seconds / 1e3

    @property
    def multivalue_fraction(self) -> float:
        """Figure 5 metric: followed predictions whose primary value was
        wrong while the correct value was present and over threshold."""
        if not self.followed_predictions:
            return 0.0
        return self.primary_wrong_candidate_present / self.followed_predictions

    def to_dict(self) -> dict:
        """Counters as plain JSON-serializable types (see :meth:`from_dict`).

        ``wall_seconds`` is deliberately dropped: it is host-dependent, and
        everything downstream of this dict (result cache entries, exports,
        golden digests, determinism checks) must stay bit-identical across
        machines and runs.
        """
        out = dataclasses.asdict(self)
        del out["wall_seconds"]
        if out["extended"]:
            out["schema_version"] = SCHEMA_VERSION
        else:
            # ordinary runs serialize exactly as schema 1 did, keeping old
            # cache entries and golden fixtures comparable byte for byte
            del out["extended"]
        if not out["warmup_instructions"]:
            # same byte-compat trick: full (non-warmed) runs serialize
            # without the interval-accounting key at all
            del out["warmup_instructions"]
        if not out["spmt_spawns"] and not out["spmt_squashes"]:
            # mode-specific sections appear only when the mode produced
            # them, keeping every pre-existing golden digest byte-identical
            del out["spmt_spawns"]
            del out["spmt_squashes"]
        if not out["per_context"]:
            del out["per_context"]
        out["level_counts"] = {
            level.name.lower(): count for level, count in self.level_counts.items()
        }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Rebuild a :class:`SimStats` from :meth:`to_dict` output.

        Unknown keys (e.g. derived metrics added by exporters) are ignored
        so exported JSON round-trips too.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        kwargs["level_counts"] = {
            MemLevel[name.upper()]: count
            for name, count in data.get("level_counts", {}).items()
        }
        return cls(**kwargs)

    def summary(self) -> str:
        """Multi-line human-readable digest (used by examples)."""
        lines = [
            f"cycles               {self.cycles}",
            f"useful instructions  {self.useful_instructions}",
            f"useful IPC           {self.useful_ipc:.3f}",
            f"wasted instructions  {self.wasted_instructions}",
            f"value predictions    {self.total_predictions} "
            f"(accuracy {self.prediction_accuracy:.2%})",
            f"spawns/confirms/kills {self.spawns}/{self.confirms}/{self.kills}",
            f"branch accuracy      {self.branch_accuracy:.2%}",
            f"loads to memory      {self.memory_miss_fraction:.2%}",
            f"store-buffer stalls  {self.store_buffer_stalls}",
        ]
        if self.wall_seconds > 0.0:
            lines.append(
                f"sim throughput       {self.sim_kips:.1f} kips "
                f"({self.instructions_stepped} steps in {self.wall_seconds:.3f}s)"
            )
        return "\n".join(lines)
