"""Operation classes and their static execution properties.

The machine in Table 1 of the paper issues up to 8 instructions per cycle:
6 integer, 2 floating point and 4 load/store.  We model that with four port
groups; each :class:`OpClass` maps onto exactly one group.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Timing-relevant instruction classes.

    The values are contiguous small integers so they can index flat lists in
    the hot simulation loop.
    """

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    FP_MUL = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6

    @property
    def is_memory(self) -> bool:
        """True for loads and stores (they use the load/store ports)."""
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_fp(self) -> bool:
        """True for floating-point computation classes."""
        return self in (OpClass.FP_ALU, OpClass.FP_MUL)

    @property
    def writes_register(self) -> bool:
        """True when the instruction produces a register result."""
        return self not in (OpClass.STORE, OpClass.BRANCH)


#: Execution latency (cycles spent in the functional unit) per op class.
#: LOAD latency here is only the address-generation/pipeline cost; the memory
#: hierarchy adds the access latency on top.
EXEC_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 7,
    OpClass.FP_ALU: 4,
    OpClass.FP_MUL: 4,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}

#: Number of architectural (logical) registers visible to the trace
#: generator: 32 integer + 32 floating point.
NUM_LOGICAL_REGS = 64

#: Register 0 reads as constant zero and never creates a dependence, matching
#: the Alpha convention SMTSIM simulates.
REG_ZERO = 0
