"""The trace instruction record and a convenience builder."""

from __future__ import annotations

from repro.isa.opclass import NUM_LOGICAL_REGS, OpClass, REG_ZERO


class Instruction:
    """One dynamic instruction in a trace.

    Instances are created in bulk by the workload generators, so the class
    uses ``__slots__`` and plain attributes rather than a dataclass to keep
    per-object cost low.

    Attributes:
        pc: Static program counter (byte address of the instruction).
        op: Operation class; selects issue port and execution latency.
        srcs: Logical source register ids (dependences). ``REG_ZERO`` entries
            are ignored by the dependence tracker.
        dst: Logical destination register id, or ``None`` when the
            instruction produces no register result (stores, branches).
        addr: Effective memory address for loads/stores, else ``None``.
        value: The 64-bit value loaded (for loads) or stored (for stores).
            This is what value predictors are trained on and what the oracle
            predictor "predicts".  ``None`` for non-memory instructions.
        taken: Branch outcome for branches, else ``None``.
    """

    __slots__ = ("pc", "op", "srcs", "dst", "addr", "value", "taken")

    def __init__(
        self,
        pc: int,
        op: OpClass,
        srcs: tuple[int, ...] = (),
        dst: int | None = None,
        addr: int | None = None,
        value: int | None = None,
        taken: bool | None = None,
    ) -> None:
        if dst is not None and not 0 <= dst < NUM_LOGICAL_REGS:
            raise ValueError(f"destination register {dst} out of range")
        for s in srcs:
            if not 0 <= s < NUM_LOGICAL_REGS:
                raise ValueError(f"source register {s} out of range")
        if op.is_memory and addr is None:
            raise ValueError(f"{op.name} instruction requires an address")
        if op is OpClass.BRANCH and taken is None:
            raise ValueError("BRANCH instruction requires a taken outcome")
        self.pc = pc
        self.op = op
        self.srcs = srcs
        self.dst = dst
        self.addr = addr
        self.value = value
        self.taken = taken

    def __repr__(self) -> str:
        parts = [f"pc={self.pc:#x}", self.op.name]
        if self.srcs:
            parts.append(f"srcs={self.srcs}")
        if self.dst is not None:
            parts.append(f"dst={self.dst}")
        if self.addr is not None:
            parts.append(f"addr={self.addr:#x}")
        if self.value is not None:
            parts.append(f"value={self.value}")
        if self.taken is not None:
            parts.append(f"taken={self.taken}")
        return f"Instruction({', '.join(parts)})"


class InstructionBuilder:
    """Fluent helper for composing instructions in tests and examples.

    The workload generators construct :class:`Instruction` directly for
    speed; this builder exists so hand-written traces stay readable::

        ib = InstructionBuilder(base_pc=0x1000)
        trace = [
            ib.load(dst=1, addr=0x8000, value=42),
            ib.int_alu(dst=2, srcs=(1,)),
            ib.store(addr=0x9000, srcs=(2,), value=7),
        ]
    """

    def __init__(self, base_pc: int = 0x1000, pc_step: int = 4) -> None:
        self._pc = base_pc
        self._step = pc_step

    def _next_pc(self, pc: int | None) -> int:
        if pc is not None:
            return pc
        pc = self._pc
        self._pc += self._step
        return pc

    def load(
        self,
        dst: int,
        addr: int,
        value: int = 0,
        srcs: tuple[int, ...] = (),
        pc: int | None = None,
    ) -> Instruction:
        """A load producing ``value`` from ``addr`` into register ``dst``."""
        return Instruction(self._next_pc(pc), OpClass.LOAD, srcs, dst, addr, value)

    def store(
        self,
        addr: int,
        srcs: tuple[int, ...] = (),
        value: int = 0,
        pc: int | None = None,
    ) -> Instruction:
        """A store of ``value`` to ``addr`` depending on ``srcs``."""
        return Instruction(self._next_pc(pc), OpClass.STORE, srcs, None, addr, value)

    def int_alu(
        self, dst: int, srcs: tuple[int, ...] = (), pc: int | None = None
    ) -> Instruction:
        """A single-cycle integer ALU operation."""
        return Instruction(self._next_pc(pc), OpClass.INT_ALU, srcs, dst)

    def int_mul(
        self, dst: int, srcs: tuple[int, ...] = (), pc: int | None = None
    ) -> Instruction:
        """A multi-cycle integer multiply."""
        return Instruction(self._next_pc(pc), OpClass.INT_MUL, srcs, dst)

    def fp_alu(
        self, dst: int, srcs: tuple[int, ...] = (), pc: int | None = None
    ) -> Instruction:
        """A floating-point add/sub with FP pipeline latency."""
        return Instruction(self._next_pc(pc), OpClass.FP_ALU, srcs, dst)

    def fp_mul(
        self, dst: int, srcs: tuple[int, ...] = (), pc: int | None = None
    ) -> Instruction:
        """A floating-point multiply with FP pipeline latency."""
        return Instruction(self._next_pc(pc), OpClass.FP_MUL, srcs, dst)

    def branch(
        self, taken: bool, srcs: tuple[int, ...] = (), pc: int | None = None
    ) -> Instruction:
        """A conditional branch with the given resolved outcome."""
        return Instruction(self._next_pc(pc), OpClass.BRANCH, srcs, None, taken=taken)

    def nop(self, pc: int | None = None) -> Instruction:
        """An integer op with no sources and a throwaway destination."""
        return Instruction(self._next_pc(pc), OpClass.INT_ALU, (), REG_ZERO + 1)
