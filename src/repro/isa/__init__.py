"""Minimal abstract RISC ISA used by the trace-driven timing model.

The reproduction does not execute real machine code; it simulates the
*timing* of an instruction stream.  Each :class:`Instruction` therefore
carries only the fields that influence timing and value prediction:

* the static program counter (``pc``) — predictor tables are PC-indexed,
* the operation class (``op``) — selects issue port and execution latency,
* logical source/destination registers — define the data-dependence graph,
* the effective address for memory operations — drives the cache hierarchy
  and the stride prefetcher,
* the memory value for loads/stores — drives value-predictor training and
  the oracle predictor,
* the branch outcome for branches — drives the 2bcgskew predictor.
"""

from repro.isa.instruction import Instruction, InstructionBuilder
from repro.isa.opclass import (
    EXEC_LATENCY,
    NUM_LOGICAL_REGS,
    REG_ZERO,
    OpClass,
)

__all__ = [
    "EXEC_LATENCY",
    "Instruction",
    "InstructionBuilder",
    "NUM_LOGICAL_REGS",
    "OpClass",
    "REG_ZERO",
]
