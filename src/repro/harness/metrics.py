"""Speedup math used throughout the evaluation.

The paper reports "Percent Speedup" in useful IPC per benchmark and
summarizes suites with the geometric mean ("a geometric mean speedup of
40% on integer benchmarks"), so negative per-benchmark results fold in as
ratios below 1.0.
"""

from __future__ import annotations

import math


def percent_speedup(ipc: float, base_ipc: float) -> float:
    """Percent change in useful IPC versus the baseline machine."""
    if base_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return 100.0 * (ipc / base_ipc - 1.0)


def geomean_speedup(percents: list[float]) -> float:
    """Geometric-mean percent speedup over per-benchmark percent speedups.

    Each percentage is converted to a ratio (100% -> 2.0), the geometric
    mean of the ratios is taken, and the result converted back.  Ratios
    must stay positive; a -100% entry would mean a machine that never
    finishes and is rejected.
    """
    if not percents:
        raise ValueError("need at least one speedup")
    log_sum = 0.0
    for p in percents:
        ratio = 1.0 + p / 100.0
        if ratio <= 0:
            raise ValueError(f"speedup {p}% implies a non-positive ratio")
        log_sum += math.log(ratio)
    return 100.0 * (math.exp(log_sum / len(percents)) - 1.0)
