"""Experiment harness: reproduces every table and figure of the paper.

Each experiment in :mod:`repro.harness.experiments` regenerates one
artifact from the evaluation section (see DESIGN.md §4 for the index).
Results come back as structured objects with ``format_table()`` for
human-readable output; the benchmark suite under ``benchmarks/`` drives
them through pytest-benchmark.
"""

from repro.harness.bench import (
    TABLE1_POINTS,
    BenchPoint,
    format_bench,
    load_bench,
    run_bench,
    run_point,
    trace_point,
    write_bench,
)
from repro.harness.export import (
    load_result_json,
    result_to_csv,
    result_to_dict,
    result_to_json,
    stats_to_dict,
)
from repro.harness.cache import ResultCache, default_cache_dir, task_key
from repro.harness.checkpoint import (
    CheckpointStore,
    arch_key,
    default_checkpoint_dir,
    load_checkpoint,
    resolve_checkpoints,
    save_checkpoint,
)
from repro.harness.metrics import geomean_speedup, percent_speedup
from repro.harness.parallel import SimulationError, run_simulations
from repro.harness.policy import (
    DISPATCH_MODES,
    ExecutionPolicy,
    resolve_cache,
    resolve_dispatch,
    resolve_jobs,
    resolve_lanes,
    resolve_workers,
)
from repro.harness.runner import (
    ModeResult,
    RunSpec,
    compare_modes,
    default_length,
    run_once,
    run_simulation,
)
from repro.harness.session import ConfigFactory, Session
from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    ablation_memory_latency,
    fig1_oracle_potential,
    fig2_spawn_latency,
    fig3_realistic_wf,
    fig4_fetch_policy,
    fig5_multivalue_potential,
    fig6_wide_window,
    sec4_prefetcher_ablation,
    sec51_selectors,
    sec53_store_buffer,
    sec54_dfcm_vs_wf,
    sec56_multivalue,
)

__all__ = [
    "BenchPoint",
    "CheckpointStore",
    "ConfigFactory",
    "DISPATCH_MODES",
    "ExecutionPolicy",
    "resolve_cache",
    "resolve_dispatch",
    "resolve_jobs",
    "resolve_lanes",
    "resolve_workers",
    "arch_key",
    "default_checkpoint_dir",
    "load_checkpoint",
    "resolve_checkpoints",
    "save_checkpoint",
    "EXPERIMENTS",
    "ExperimentResult",
    "Session",
    "SimulationError",
    "TABLE1_POINTS",
    "ablation_memory_latency",
    "ModeResult",
    "ResultCache",
    "RunSpec",
    "compare_modes",
    "default_cache_dir",
    "default_length",
    "fig1_oracle_potential",
    "fig2_spawn_latency",
    "fig3_realistic_wf",
    "fig4_fetch_policy",
    "fig5_multivalue_potential",
    "fig6_wide_window",
    "format_bench",
    "geomean_speedup",
    "load_bench",
    "load_result_json",
    "percent_speedup",
    "result_to_csv",
    "result_to_dict",
    "result_to_json",
    "stats_to_dict",
    "run_bench",
    "run_once",
    "run_point",
    "run_simulation",
    "run_simulations",
    "trace_point",
    "sec4_prefetcher_ablation",
    "task_key",
    "sec51_selectors",
    "sec53_store_buffer",
    "sec54_dfcm_vs_wf",
    "sec56_multivalue",
    "write_bench",
]
