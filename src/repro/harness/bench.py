"""Engine throughput benchmarking: instructions/second on fixed points.

The simulator's wall-clock per instruction is the binding constraint on
how many paper sweeps the harness can afford, so this module gives it a
measured trajectory: a small set of fixed ``(workload, config, length,
seed)`` points on the Table 1 machine, each run a few times with the best
(least-noisy) rate kept, and the results written to ``BENCH_engine.json``
at the repository root.  Future PRs rerun the benchmark and compare
against both the committed file and the recorded pre-optimization
reference, so a hot-path regression shows up as a number, not a feeling.

Simulated *results* on every point must stay deterministic — each point
reports the digest of its :class:`~repro.core.SimStats` dict, so a bench
run doubles as a cheap bit-identity check.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick    # CI
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Callable

from repro import select, vp
from repro.core import MachineConfig, SimStats
from repro.core.engine import Engine
from repro.select import LoadSelector
from repro.vp import ValuePredictor
from repro.workloads import get_workload

#: instructions/second measured at the pre-optimization engine (commit
#: 9c32395, the state before the kernel optimization PR), best of 3 on the
#: reference machine that recorded BENCH_engine.json.  Kept as the
#: trajectory origin so "how much faster is the kernel than when we
#: started measuring" survives arbitrarily many rewrites of the file.
PRE_OPT_REFERENCE_IPS = {
    "table1_baseline_mcf": 89761.0,
    "table1_mtvp_mcf": 69807.0,
}


@dataclasses.dataclass(frozen=True)
class BenchPoint:
    """One fixed throughput measurement point.

    Factories, not instances: predictor/selector state must be fresh for
    every repeat, exactly as in :class:`~repro.harness.runner.RunSpec`.
    Predictor/selector accept registry names or factory callables; they
    are resolved at run time (the dataclass is frozen).
    """

    name: str
    config_factory: Callable[[], MachineConfig]
    workload: str
    length: int
    seed: int
    predictor_factory: Callable[[], ValuePredictor] | str = "wang-franklin"
    selector_factory: Callable[[], LoadSelector] | str = "ilp-pred"

    def build(self, tracer=None, metrics=None, trace: list | None = None) -> Engine:
        """A fresh engine for this point (trace defaults to regenerating)."""
        if trace is None:
            trace = get_workload(self.workload).trace(
                length=self.length, seed=self.seed
            )
        return Engine(
            trace,
            self.config_factory(),
            predictor=vp.resolve(self.predictor_factory)(),
            selector=select.resolve(self.selector_factory)(),
            tracer=tracer,
            metrics=metrics,
        )


def _mtvp8() -> MachineConfig:
    return MachineConfig.mtvp(8)


#: the standard points: the Table 1 baseline machine (the pure
#: single-context kernel) and the Table 1 MTVP machine (spawn/confirm
#: machinery included), both on mcf — the paper's signature workload
TABLE1_POINTS = (
    BenchPoint(
        name="table1_baseline_mcf",
        config_factory=MachineConfig.hpca05_baseline,
        workload="mcf",
        length=12000,
        seed=0,
    ),
    BenchPoint(
        name="table1_mtvp_mcf",
        config_factory=_mtvp8,
        workload="mcf",
        length=12000,
        seed=0,
        selector_factory="always",
    ),
)


def stats_digest(stats: SimStats) -> str:
    """SHA-256 of the canonical JSON stats dict, minus volatile fields.

    ``extended``/``schema_version`` are excluded too: instrumentation is
    read-only by contract, so a traced run must digest identically to its
    untraced twin (the golden tests assert exactly that).
    """
    data = stats.to_dict()
    data.pop("instructions_stepped", None)
    data.pop("extended", None)
    data.pop("schema_version", None)
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_point(point: BenchPoint, repeats: int = 3, length: int | None = None) -> dict:
    """Measure one point; returns a JSON-ready result record.

    The trace is generated once outside the timed region.  ``repeats``
    engines run back to back and the highest rate wins — the minimum-noise
    estimator for a deterministic workload on a shared machine.
    """
    n = length or point.length
    trace = get_workload(point.workload).trace(length=n, seed=point.seed)
    best_ips = 0.0
    best_stats: SimStats | None = None
    for _ in range(max(1, repeats)):
        stats = point.build(trace=trace).run()
        if stats.wall_seconds <= 0.0:
            continue
        ips = stats.instructions_stepped / stats.wall_seconds
        if ips > best_ips:
            best_ips = ips
            best_stats = stats
    assert best_stats is not None, "no timed repeat completed"
    record = {
        "name": point.name,
        "workload": point.workload,
        "length": n,
        "seed": point.seed,
        "instructions": best_stats.instructions_stepped,
        "wall_seconds": round(best_stats.wall_seconds, 6),
        "ips": round(best_ips, 1),
        "kips": round(best_ips / 1e3, 2),
        "stats_digest": stats_digest(best_stats),
    }
    reference = PRE_OPT_REFERENCE_IPS.get(point.name)
    if reference and n == point.length:
        record["pre_opt_ips"] = reference
        record["speedup_vs_pre_opt"] = round(best_ips / reference, 2)
    return record


def trace_point(
    point: BenchPoint,
    path: str | Path,
    fmt: str = "chrome",
    length: int | None = None,
) -> dict:
    """One fully observed run of ``point``; exports the trace to ``path``.

    Used by CI to prove the tracer stack works end to end on every build.
    Returns a small summary record (digest + tracer summary) so callers
    can cross-check against the untraced digest from :func:`run_point`.
    """
    from repro.obs import MetricsRegistry, Tracer

    n = length or point.length
    trace = get_workload(point.workload).trace(length=n, seed=point.seed)
    tracer = Tracer()
    stats = point.build(trace=trace, tracer=tracer, metrics=MetricsRegistry()).run()
    if fmt == "chrome":
        tracer.export_chrome(path)
    elif fmt == "jsonl":
        tracer.export_jsonl(path)
    else:
        raise ValueError(f"unknown trace format {fmt!r} (chrome or jsonl)")
    return {
        "name": point.name,
        "length": n,
        "stats_digest": stats_digest(stats),
        "trace": tracer.summary(),
    }


def run_bench(
    points: tuple[BenchPoint, ...] = TABLE1_POINTS,
    repeats: int = 3,
    length: int | None = None,
) -> dict:
    """Run every point; returns the full ``BENCH_engine.json`` payload."""
    return {
        "schema": 1,
        "benchmark": "engine-throughput",
        "points": [run_point(p, repeats=repeats, length=length) for p in points],
    }


def write_bench(results: dict, path: str | Path) -> Path:
    """Write benchmark results as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict | None:
    """Previous results from ``path``, or None if absent/corrupt."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


def format_bench(results: dict, previous: dict | None = None) -> str:
    """Human-readable table, with deltas against a previous run if given."""
    prev_points = {}
    if previous:
        prev_points = {p["name"]: p for p in previous.get("points", [])}
    lines = [f"{'point':28s} {'kips':>9s} {'vs pre-opt':>11s} {'vs previous':>12s}"]
    for p in results["points"]:
        speedup = p.get("speedup_vs_pre_opt")
        vs_ref = f"{speedup:.2f}x" if speedup else "-"
        prev = prev_points.get(p["name"])
        # rates at different trace lengths are not comparable (startup
        # and cold-cache effects dominate short runs), so show a delta
        # only against a previous run of the same length
        if prev and prev.get("length") == p["length"] and prev.get("ips"):
            sign = "+" if p["ips"] >= prev["ips"] else "-"
            vs_prev = f"{sign}{abs(p['ips'] / prev['ips'] - 1):.1%}"
        else:
            vs_prev = "-"
        lines.append(f"{p['name']:28s} {p['kips']:>9.1f} {vs_ref:>11s} {vs_prev:>12s}")
    return "\n".join(lines)
