"""Engine throughput benchmarking: instructions/second on fixed points.

The simulator's wall-clock per instruction is the binding constraint on
how many paper sweeps the harness can afford, so this module gives it a
measured trajectory: a small set of fixed ``(workload, config, length,
seed)`` points on the Table 1 machine, each run a few times with the best
(least-noisy) rate kept, and the results written to ``BENCH_engine.json``
at the repository root.  Future PRs rerun the benchmark and compare
against both the committed file and the recorded pre-optimization
reference, so a hot-path regression shows up as a number, not a feeling.

Simulated *results* on every point must stay deterministic — each point
reports the digest of its :class:`~repro.core.SimStats` dict, so a bench
run doubles as a cheap bit-identity check.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick    # CI
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from pathlib import Path
from typing import Callable

from repro import select, vp
from repro.core import MachineConfig, SimStats
from repro.core.engine import Engine
from repro.select import LoadSelector
from repro.vp import ValuePredictor
from repro.workloads import get_workload

#: instructions/second measured at the pre-optimization engine (commit
#: 9c32395, the state before the kernel optimization PR), best of 3 on the
#: reference machine that recorded BENCH_engine.json.  Kept as the
#: trajectory origin so "how much faster is the kernel than when we
#: started measuring" survives arbitrarily many rewrites of the file.
PRE_OPT_REFERENCE_IPS = {
    "table1_baseline_mcf": 89761.0,
    "table1_mtvp_mcf": 69807.0,
}


@dataclasses.dataclass(frozen=True)
class BenchPoint:
    """One fixed throughput measurement point.

    Factories, not instances: predictor/selector state must be fresh for
    every repeat, exactly as in :class:`~repro.harness.runner.RunSpec`.
    Predictor/selector accept registry names or factory callables; they
    are resolved at run time (the dataclass is frozen).
    """

    name: str
    config_factory: Callable[[], MachineConfig]
    workload: str
    length: int
    seed: int
    predictor_factory: Callable[[], ValuePredictor] | str = "wang-franklin"
    selector_factory: Callable[[], LoadSelector] | str = "ilp-pred"

    def build(self, tracer=None, metrics=None, trace: list | None = None) -> Engine:
        """A fresh engine for this point (trace defaults to regenerating)."""
        if trace is None:
            trace = get_workload(self.workload).trace(
                length=self.length, seed=self.seed
            )
        return Engine(
            trace,
            self.config_factory(),
            predictor=vp.resolve(self.predictor_factory)(),
            selector=select.resolve(self.selector_factory)(),
            tracer=tracer,
            metrics=metrics,
        )


def _mtvp8() -> MachineConfig:
    return MachineConfig.mtvp(8)


#: the lane-batched throughput point: seed replicates of the Table 1
#: baseline machine on wupwise.  An FP workload with a small load
#: fraction keeps the irreducible per-lane component work (hierarchy,
#: prefetcher, predictor) low, so the point measures what the vectorized
#: kernel actually amortizes — the per-position timestamp arithmetic;
#: load-heavy codes like mcf batch nearer 2x and stay covered by the
#: scalar points above
LANE_POINT_LANES = 256
LANE_POINT = BenchPoint(
    name="table1_baseline_wupwise",
    config_factory=MachineConfig.hpca05_baseline,
    workload="wupwise",
    length=12000,
    seed=0,
)

#: the standard points: the Table 1 baseline machine (the pure
#: single-context kernel) and the Table 1 MTVP machine (spawn/confirm
#: machinery included), both on mcf — the paper's signature workload
TABLE1_POINTS = (
    BenchPoint(
        name="table1_baseline_mcf",
        config_factory=MachineConfig.hpca05_baseline,
        workload="mcf",
        length=12000,
        seed=0,
    ),
    BenchPoint(
        name="table1_mtvp_mcf",
        config_factory=_mtvp8,
        workload="mcf",
        length=12000,
        seed=0,
        selector_factory="always",
    ),
)


def stats_digest(stats: SimStats) -> str:
    """SHA-256 of the canonical JSON stats dict, minus volatile fields.

    ``extended``/``schema_version`` are excluded too: instrumentation is
    read-only by contract, so a traced run must digest identically to its
    untraced twin (the golden tests assert exactly that).
    """
    data = stats.to_dict()
    data.pop("instructions_stepped", None)
    data.pop("extended", None)
    data.pop("schema_version", None)
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_point(point: BenchPoint, repeats: int = 3, length: int | None = None) -> dict:
    """Measure one point; returns a JSON-ready result record.

    The trace is generated once outside the timed region.  ``repeats``
    engines run back to back and the highest rate wins — the minimum-noise
    estimator for a deterministic workload on a shared machine.
    """
    n = length or point.length
    trace = get_workload(point.workload).trace(length=n, seed=point.seed)
    best_ips = 0.0
    best_stats: SimStats | None = None
    for _ in range(max(1, repeats)):
        stats = point.build(trace=trace).run()
        if stats.wall_seconds <= 0.0:
            continue
        ips = stats.instructions_stepped / stats.wall_seconds
        if ips > best_ips:
            best_ips = ips
            best_stats = stats
    assert best_stats is not None, "no timed repeat completed"
    record = {
        "name": point.name,
        "workload": point.workload,
        "length": n,
        "seed": point.seed,
        "instructions": best_stats.instructions_stepped,
        "wall_seconds": round(best_stats.wall_seconds, 6),
        "ips": round(best_ips, 1),
        "kips": round(best_ips / 1e3, 2),
        "stats_digest": stats_digest(best_stats),
    }
    reference = PRE_OPT_REFERENCE_IPS.get(point.name)
    if reference and n == point.length:
        record["pre_opt_ips"] = reference
        record["speedup_vs_pre_opt"] = round(best_ips / reference, 2)
    return record


def run_lane_point(
    point: BenchPoint,
    lanes: int = LANE_POINT_LANES,
    repeats: int = 3,
    length: int | None = None,
) -> dict:
    """Measure one point's lane-batched aggregate throughput vs scalar.

    ``lanes`` seed replicates (seeds ``0..lanes-1``) are simulated twice:
    through :func:`~repro.core.engine.batch.run_lockstep` and through the
    sequential scalar loop.  Both paths keep their best-of-``repeats``
    wall time independently; per-lane stats must digest identically
    between the two (``digests_match`` — a failed identity is a
    correctness regression regardless of the rates).

    The record reports aggregate and per-lane KIPS separately: a batched
    point's headline rate is a *multi-seed* throughput and must never be
    compared against the single-config points.
    """
    from repro.core.engine.batch import run_lockstep

    n = length or point.length
    traces = get_workload(point.workload).trace_many(n, tuple(range(lanes)))
    best_batched = best_scalar = float("inf")
    batched_digests: list[str] = []
    scalar_digests: list[str] = []
    instructions = 0
    for _ in range(max(1, repeats)):
        engines = [point.build(trace=t) for t in traces]
        t0 = time.perf_counter()
        batched = run_lockstep(engines)
        best_batched = min(best_batched, time.perf_counter() - t0)
        engines = [point.build(trace=t) for t in traces]
        t0 = time.perf_counter()
        scalar = [e.run() for e in engines]
        best_scalar = min(best_scalar, time.perf_counter() - t0)
        # deterministic simulations: digests cannot vary across repeats
        if not batched_digests:
            batched_digests = [stats_digest(s) for s in batched]
            scalar_digests = [stats_digest(s) for s in scalar]
            instructions = sum(s.instructions_stepped for s in scalar)
    aggregate_ips = instructions / best_batched
    return {
        "name": f"{point.name}_x{lanes}",
        "workload": point.workload,
        "length": n,
        "seed": point.seed,
        "lanes": lanes,
        "instructions": instructions,
        "wall_seconds": round(best_batched, 6),
        "ips": round(aggregate_ips, 1),
        "kips": round(aggregate_ips / 1e3, 2),
        "kips_per_lane": round(aggregate_ips / lanes / 1e3, 2),
        "scalar_ips": round(instructions / best_scalar, 1),
        "speedup_vs_scalar": round(best_scalar / best_batched, 2),
        "digests_match": batched_digests == scalar_digests,
        "stats_digest": hashlib.sha256(
            "".join(batched_digests).encode()
        ).hexdigest(),
    }


def check_regression(results: dict, previous: dict | None, within_pct: float) -> int:
    """Exit code 1 if any point regressed more than ``within_pct`` percent.

    Points are matched by name against the committed record; lengths and
    lane counts must match too (rates at different lengths are not
    comparable, and a batched point's aggregate rate is not comparable to
    any scalar point's).  Lane-batched points are gated on *aggregate*
    KIPS and echoed with their per-lane rate alongside, so a batched
    point can never masquerade as a single-config throughput win; their
    batched-vs-scalar digest identity is always gating, noise or not.
    """
    if not previous:
        print("no previous record to gate against; skipping assertion")
        return 0
    prev_points = {p["name"]: p for p in previous.get("points", [])}
    failed = False
    for p in results["points"]:
        if p.get("lanes") and not p.get("digests_match", True):
            print(f"assert-within: {p['name']} FAIL "
                  f"(batched stats diverged from scalar)")
            failed = True
        prev = prev_points.get(p["name"])
        if (
            not prev
            or prev.get("length") != p["length"]
            or prev.get("lanes") != p.get("lanes")
            or not prev.get("ips")
        ):
            continue
        drop_pct = 100.0 * (1.0 - p["ips"] / prev["ips"])
        status = "FAIL" if drop_pct > within_pct else "ok"
        lane_note = (
            f" [aggregate over {p['lanes']} lanes, "
            f"{p['kips_per_lane']:.1f} kips/lane]"
            if p.get("lanes")
            else ""
        )
        print(
            f"assert-within {within_pct:.0f}%: {p['name']} "
            f"{p['ips']:.0f} vs {prev['ips']:.0f} ips "
            f"({-drop_pct:+.1f}%){lane_note} {status}"
        )
        if drop_pct > within_pct:
            failed = True
    return 1 if failed else 0


def trace_point(
    point: BenchPoint,
    path: str | Path,
    fmt: str = "chrome",
    length: int | None = None,
) -> dict:
    """One fully observed run of ``point``; exports the trace to ``path``.

    Used by CI to prove the tracer stack works end to end on every build.
    Returns a small summary record (digest + tracer summary) so callers
    can cross-check against the untraced digest from :func:`run_point`.
    """
    from repro.obs import MetricsRegistry, Tracer

    n = length or point.length
    trace = get_workload(point.workload).trace(length=n, seed=point.seed)
    tracer = Tracer()
    stats = point.build(trace=trace, tracer=tracer, metrics=MetricsRegistry()).run()
    if fmt == "chrome":
        tracer.export_chrome(path)
    elif fmt == "jsonl":
        tracer.export_jsonl(path)
    else:
        raise ValueError(f"unknown trace format {fmt!r} (chrome or jsonl)")
    return {
        "name": point.name,
        "length": n,
        "stats_digest": stats_digest(stats),
        "trace": tracer.summary(),
    }


def run_bench(
    points: tuple[BenchPoint, ...] = TABLE1_POINTS,
    repeats: int = 3,
    length: int | None = None,
) -> dict:
    """Run every point; returns the full ``BENCH_engine.json`` payload."""
    return {
        "schema": 1,
        "benchmark": "engine-throughput",
        "points": [run_point(p, repeats=repeats, length=length) for p in points],
    }


def write_bench(results: dict, path: str | Path) -> Path:
    """Write benchmark results as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict | None:
    """Previous results from ``path``, or None if absent/corrupt."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


def format_bench(results: dict, previous: dict | None = None) -> str:
    """Human-readable table, with deltas against a previous run if given."""
    prev_points = {}
    if previous:
        prev_points = {p["name"]: p for p in previous.get("points", [])}
    lines = [f"{'point':28s} {'kips':>9s} {'vs pre-opt':>11s} {'vs previous':>12s}"]
    for p in results["points"]:
        speedup = p.get("speedup_vs_pre_opt")
        vs_ref = f"{speedup:.2f}x" if speedup else "-"
        prev = prev_points.get(p["name"])
        # rates at different trace lengths are not comparable (startup
        # and cold-cache effects dominate short runs), so show a delta
        # only against a previous run of the same length
        if prev and prev.get("length") == p["length"] and prev.get("ips"):
            sign = "+" if p["ips"] >= prev["ips"] else "-"
            vs_prev = f"{sign}{abs(p['ips'] / prev['ips'] - 1):.1%}"
        else:
            vs_prev = "-"
        lines.append(f"{p['name']:28s} {p['kips']:>9.1f} {vs_ref:>11s} {vs_prev:>12s}")
    return "\n".join(lines)
