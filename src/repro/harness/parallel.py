"""Parallel fan-out of independent simulations, with optional caching.

Every simulation the harness runs is a pure function of its ``(workload,
RunSpec, length, seed)`` task, and :class:`~repro.harness.runner.RunSpec`
carries *factories* rather than instances, so tasks are embarrassingly
parallel: :func:`run_simulations` fans them out over a
``concurrent.futures.ProcessPoolExecutor`` and reassembles results in
task order, bit-identical to the serial path.

Caching composes with parallelism: tasks whose
:func:`~repro.harness.cache.task_key` hits the on-disk
:class:`~repro.harness.cache.ResultCache` never reach the pool, identical
pending tasks are deduplicated by key within a batch, and fresh results
are written back as workers complete.

Lane batching composes with both: tasks that are seed replicates of one
recipe (equal :func:`~repro.harness.cache.lane_group_key`) coalesce into
lane groups of up to ``lanes`` tasks, each dispatched as **one** pool task
that runs the whole group through the vectorized lockstep kernel
(:func:`~repro.harness.runner.simulate_batch`).  Results stay per-seed:
cache entries, progress events and the returned stats list are exactly
those of the ungrouped run.

Execution settings (jobs/lanes/cache/checkpoints) are one
:class:`~repro.harness.policy.ExecutionPolicy` value; the historical
per-keyword spellings survive as deprecation shims, and the resolvers
(:func:`resolve_jobs`, :func:`resolve_lanes`, :func:`resolve_cache`) are
re-exported from :mod:`repro.harness.policy`, where the ``REPRO_*``
environment defaults are documented in one place.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from repro.core import SimStats
from repro.harness.cache import ResultCache, lane_group_key, task_key
from repro.harness.policy import (
    UNSET,
    ExecutionPolicy,
    resolve_cache,
    resolve_jobs,
    resolve_lanes,
)

__all__ = [
    "ExecutionPolicy",
    "SimulationError",
    "resolve_cache",
    "resolve_jobs",
    "resolve_lanes",
    "run_simulations",
]

#: one simulation request: (workload name, RunSpec, length, seed)
Task = tuple  # (str, RunSpec, int, int)


class SimulationError(RuntimeError):
    """One task of a batch failed; carries the failing task's identity.

    ``run_simulations`` raises this (``on_error="raise"``, the default)
    or returns it in the failing task's result slot (``on_error=
    "collect"``) so batch drivers — most prominently the sweep runner —
    can record the failure and keep the rest of the campaign alive.
    """

    def __init__(
        self,
        workload: str,
        spec_name: str,
        length: int,
        seed: int,
        cause: BaseException | str,
    ) -> None:
        self.workload = workload
        self.spec_name = spec_name
        self.length = length
        self.seed = seed
        self.cause = cause
        detail = cause if isinstance(cause, str) else f"{type(cause).__name__}: {cause}"
        super().__init__(
            f"simulation failed (workload={workload!r}, spec={spec_name!r}, "
            f"length={length}, seed={seed}): {detail}"
        )


def _run_task(
    spec, workload_name: str, length: int, seed: int, checkpoints=None
) -> SimStats:
    """Worker entry point: one spec on one workload (must stay picklable).

    ``checkpoints`` is a directory path in pooled runs (each worker opens
    its own :class:`~repro.harness.checkpoint.CheckpointStore` on it) or
    the store object itself on the serial path, so in-process counters
    survive for callers that report them.
    """
    if checkpoints is None:
        return spec.run(workload_name, length, seed)
    from repro.harness.checkpoint import resolve_checkpoints

    return spec.run(
        workload_name, length, seed, checkpoints=resolve_checkpoints(checkpoints)
    )


def _run_batch_task(
    spec, workload_name: str, length: int, seeds: list, checkpoints=None
) -> list[SimStats]:
    """Worker entry point for one lane group (must stay picklable).

    Returns one :class:`SimStats` per seed, in seed order — bit-identical
    to running :func:`_run_task` once per seed.
    """
    from repro.harness.runner import simulate_batch

    store = None
    if checkpoints is not None:
        from repro.harness.checkpoint import resolve_checkpoints

        store = resolve_checkpoints(checkpoints)
    return simulate_batch(
        workload_name, spec, length, seeds, checkpoints=store
    )


def run_simulations(
    tasks: list[Task],
    jobs=UNSET,
    cache=UNSET,
    on_error: str = "raise",
    checkpoints=UNSET,
    progress=None,
    lanes=UNSET,
    *,
    policy: ExecutionPolicy | None = None,
) -> list[SimStats]:
    """Run every task, in parallel when ``jobs > 1``, consulting the cache.

    Args:
        tasks: ``(workload_name, spec, length, seed)`` tuples.
        policy: An :class:`~repro.harness.policy.ExecutionPolicy` bundling
            jobs/lanes/cache/checkpoints; the preferred spelling.  Unset
            fields defer to the environment (``REPRO_JOBS`` etc.).
        jobs: Deprecated — worker processes (``policy.jobs``).
        cache: Deprecated — result cache (``policy.cache``).
        lanes: Deprecated — seed replicates coalesced per simulation lease
            (``policy.lanes``; ``1`` = no coalescing, ``"auto"``/``0``
            = whole replicate groups).  Tasks sharing a
            :func:`~repro.harness.cache.lane_group_key` run together
            through the lane-batched kernel; results are independent of
            the grouping, exactly as they are of ``jobs``.
        checkpoints: Deprecated — warmup-checkpoint store for warmed specs
            (``policy.checkpoints``).
        on_error: ``"raise"`` (default) wraps the first task failure in a
            :class:`SimulationError` identifying the failing task and
            aborts the batch; ``"collect"`` instead places the
            :class:`SimulationError` in that task's result slot and keeps
            the remaining tasks running — the sweep runner's degraded mode.
        progress: Optional callback invoked as each task resolves with a
            dict of ``workload``/``spec``/``length``/``seed``, ``source``
            (``"cache"``, ``"sim"`` or ``"error"``) and the running
            ``completed``/``total`` counts.  Exceptions it raises are
            swallowed — progress reporting must never kill a batch.

    Returns:
        One :class:`SimStats` per task, in task order (or a
        :class:`SimulationError` per failed task under ``"collect"``).
        Results are independent of ``jobs`` and of cache hits/misses.
    """
    if on_error not in ("raise", "collect"):
        raise ValueError(f'on_error must be "raise" or "collect", not {on_error!r}')
    policy = ExecutionPolicy.coalesce(
        policy, "run_simulations",
        jobs=jobs, cache=cache, checkpoints=checkpoints, lanes=lanes,
    )

    cache_obj = policy.resolved_cache()
    ckpt_store = policy.resolved_checkpoints()
    n_jobs = policy.resolved_jobs()

    results: list[SimStats | SimulationError | None] = [None] * len(tasks)
    keys: list[str | None] = [None] * len(tasks)
    completed = 0

    def report(indices: list[int], source: str) -> None:
        nonlocal completed
        completed += len(indices)
        if progress is None:
            return
        workload_name, spec, length, seed = tasks[indices[0]]
        try:
            progress({
                "workload": workload_name,
                "spec": getattr(spec, "name", "?"),
                "length": length,
                "seed": seed,
                "source": source,
                "completed": completed,
                "total": len(tasks),
            })
        except Exception:
            pass

    def fail(indices: list[int], exc: BaseException) -> None:
        workload_name, spec, length, seed = tasks[indices[0]]
        error = SimulationError(
            workload_name, getattr(spec, "name", "?"), length, seed, exc
        )
        if on_error == "raise":
            raise error from exc
        for i in indices:
            results[i] = error
        report(indices, "error")

    #: indices still needing a simulation, grouped so identical tasks
    #: (same key) run once and fan back out to every requesting index
    groups: dict[object, list[int]] = {}
    for i, (workload_name, spec, length, seed) in enumerate(tasks):
        try:
            key = (
                task_key(workload_name, spec, length, seed)
                if cache_obj is not None
                else None
            )
        except Exception as exc:
            # e.g. an invalid MachineConfig raising inside the factory
            # while the key is being derived: a per-task failure, not a
            # batch abort
            fail([i], exc)
            continue
        keys[i] = key
        if key is not None:
            hit = cache_obj.get(key)
            if hit is not None:
                results[i] = hit
                report([i], "cache")
                continue
        # uncacheable tasks get a unique group: no key to prove identity
        groups.setdefault(key if key is not None else ("#", i), []).append(i)

    def finish(indices: list[int], stats: SimStats) -> None:
        key = keys[indices[0]]
        if cache_obj is not None and key is not None:
            cache_obj.put(key, stats)
        for i in indices:
            results[i] = stats
        report(indices, "sim")

    pending = list(groups.values())
    lane_cap = policy.resolved_lanes()

    #: dispatch units: each batch is a list of key-groups; singleton
    #: batches run the ordinary scalar task, longer ones one lane-batched
    #: simulation covering every key-group's seed
    batches: list[list[list[int]]] = []
    if lane_cap != 1 and len(pending) > 1:
        open_buckets: dict[object, list[list[int]]] = {}
        for indices in pending:
            workload_name, spec, length, seed = tasks[indices[0]]
            try:
                group = lane_group_key(workload_name, spec, length)
            except Exception:
                group = None
            # an indescribable recipe still groups with itself: replicate
            # fan-out reuses one spec object across seeds
            bucket_id = (
                group if group is not None else (id(spec), workload_name, length)
            )
            bucket = open_buckets.get(bucket_id)
            if bucket is None or (lane_cap > 0 and len(bucket) >= lane_cap):
                bucket = []
                open_buckets[bucket_id] = bucket
                batches.append(bucket)
            bucket.append(indices)
    else:
        batches = [[indices] for indices in pending]

    def finish_batch(batch: list[list[int]], outcome) -> None:
        if len(batch) == 1:
            finish(batch[0], outcome)
        else:
            for indices, stats in zip(batch, outcome):
                finish(indices, stats)

    if n_jobs > 1 and len(batches) > 1:
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(batches))) as pool:
            # workers get the store's directory, not the store: paths
            # pickle, and each worker reopens its own handle on it
            ckpt_dir = (
                str(ckpt_store.directory) if ckpt_store is not None else None
            )
            futures = {}
            for batch in batches:
                workload_name, spec, length, seed = tasks[batch[0][0]]
                if len(batch) == 1:
                    future = pool.submit(
                        _run_task, spec, workload_name, length, seed, ckpt_dir
                    )
                else:
                    seeds = [tasks[indices[0]][3] for indices in batch]
                    future = pool.submit(
                        _run_batch_task, spec, workload_name, length, seeds,
                        ckpt_dir,
                    )
                futures[future] = batch
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    batch = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        fail([i for indices in batch for i in indices], exc)
                    else:
                        finish_batch(batch, outcome)
    else:
        for batch in batches:
            workload_name, spec, length, seed = tasks[batch[0][0]]
            try:
                if len(batch) == 1:
                    outcome = _run_task(
                        spec, workload_name, length, seed, ckpt_store
                    )
                else:
                    seeds = [tasks[indices[0]][3] for indices in batch]
                    outcome = _run_batch_task(
                        spec, workload_name, length, seeds, ckpt_store
                    )
            except Exception as exc:
                fail([i for indices in batch for i in indices], exc)
            else:
                finish_batch(batch, outcome)

    return results  # type: ignore[return-value]
