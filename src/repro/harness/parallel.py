"""Parallel fan-out of independent simulations, with optional caching.

Every simulation the harness runs is a pure function of its ``(workload,
RunSpec, length, seed)`` task, and :class:`~repro.harness.runner.RunSpec`
carries *factories* rather than instances, so tasks are embarrassingly
parallel: :func:`run_simulations` fans them out over a
``concurrent.futures.ProcessPoolExecutor`` and reassembles results in
task order, bit-identical to the serial path.

Caching composes with parallelism: tasks whose
:func:`~repro.harness.cache.task_key` hits the on-disk
:class:`~repro.harness.cache.ResultCache` never reach the pool, identical
pending tasks are deduplicated by key within a batch, and fresh results
are written back as workers complete.

Lane batching composes with both: tasks that are seed replicates of one
recipe (equal :func:`~repro.harness.cache.lane_group_key`) coalesce into
lane groups of up to ``lanes`` tasks, each dispatched as **one** pool task
that runs the whole group through the vectorized lockstep kernel
(:func:`~repro.harness.runner.simulate_batch`).  Results stay per-seed:
cache entries, progress events and the returned stats list are exactly
those of the ungrouped run.

Environment defaults (used when the corresponding argument is ``None``):

* ``REPRO_JOBS`` — worker process count (unset/1 = serial in-process).
* ``REPRO_CACHE_DIR`` — result cache directory (unset = no caching).
* ``REPRO_LANES`` — seed replicates batched per simulation lease
  (unset/1 = no batching; ``auto``/0 = one lane per replicate).
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path

from repro.core import SimStats
from repro.harness.cache import ResultCache, lane_group_key, task_key

#: one simulation request: (workload name, RunSpec, length, seed)
Task = tuple  # (str, RunSpec, int, int)


class SimulationError(RuntimeError):
    """One task of a batch failed; carries the failing task's identity.

    ``run_simulations`` raises this (``on_error="raise"``, the default)
    or returns it in the failing task's result slot (``on_error=
    "collect"``) so batch drivers — most prominently the sweep runner —
    can record the failure and keep the rest of the campaign alive.
    """

    def __init__(
        self,
        workload: str,
        spec_name: str,
        length: int,
        seed: int,
        cause: BaseException | str,
    ) -> None:
        self.workload = workload
        self.spec_name = spec_name
        self.length = length
        self.seed = seed
        self.cause = cause
        detail = cause if isinstance(cause, str) else f"{type(cause).__name__}: {cause}"
        super().__init__(
            f"simulation failed (workload={workload!r}, spec={spec_name!r}, "
            f"length={length}, seed={seed}): {detail}"
        )


def _run_task(
    spec, workload_name: str, length: int, seed: int, checkpoints=None
) -> SimStats:
    """Worker entry point: one spec on one workload (must stay picklable).

    ``checkpoints`` is a directory path in pooled runs (each worker opens
    its own :class:`~repro.harness.checkpoint.CheckpointStore` on it) or
    the store object itself on the serial path, so in-process counters
    survive for callers that report them.
    """
    if checkpoints is None:
        return spec.run(workload_name, length, seed)
    from repro.harness.checkpoint import resolve_checkpoints

    return spec.run(
        workload_name, length, seed, checkpoints=resolve_checkpoints(checkpoints)
    )


def _run_batch_task(
    spec, workload_name: str, length: int, seeds: list, checkpoints=None
) -> list[SimStats]:
    """Worker entry point for one lane group (must stay picklable).

    Returns one :class:`SimStats` per seed, in seed order — bit-identical
    to running :func:`_run_task` once per seed.
    """
    from repro.harness.runner import simulate_batch

    store = None
    if checkpoints is not None:
        from repro.harness.checkpoint import resolve_checkpoints

        store = resolve_checkpoints(checkpoints)
    return simulate_batch(
        workload_name, spec, length, seeds, checkpoints=store
    )


def resolve_lanes(lanes, group_size: int | None = None) -> int:
    """Lane count: explicit ``lanes``, else ``$REPRO_LANES``, else 1.

    ``"auto"`` (or ``0``, or any non-positive count) means "as many lanes
    as the replicate group has seeds": with ``group_size`` given that
    bound is returned, otherwise ``0`` — callers treat it as unbounded.
    """
    if lanes is None:
        env = os.environ.get("REPRO_LANES", "").strip()
        if not env:
            return 1
        lanes = env
    if isinstance(lanes, str):
        text = lanes.strip().lower()
        if text == "auto":
            lanes = 0
        else:
            try:
                lanes = int(text)
            except ValueError:
                raise ValueError(
                    f'lanes must be an integer or "auto", got {lanes!r}'
                ) from None
    if lanes <= 0:
        return group_size if group_size is not None else 0
    return lanes


def resolve_jobs(jobs: int | None) -> int:
    """Worker count: explicit ``jobs``, else ``$REPRO_JOBS``, else serial.

    ``0`` (or any non-positive value) means "all cores".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer worker count, got {env!r}"
            ) from None
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def resolve_cache(cache) -> ResultCache | None:
    """Normalize the ``cache`` argument every harness entry point accepts.

    ``None`` consults ``$REPRO_CACHE_DIR`` (unset means no caching);
    ``False`` disables caching outright; a string/path opens a
    :class:`ResultCache` there; a :class:`ResultCache` passes through.
    """
    if cache is None:
        env = os.environ.get("REPRO_CACHE_DIR", "").strip()
        return ResultCache(env) if env else None
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    raise TypeError(f"cache must be None, False, a path or a ResultCache, not {cache!r}")


def run_simulations(
    tasks: list[Task],
    jobs: int | None = None,
    cache=None,
    on_error: str = "raise",
    checkpoints=None,
    progress=None,
    lanes=None,
) -> list[SimStats]:
    """Run every task, in parallel when ``jobs > 1``, consulting the cache.

    Args:
        tasks: ``(workload_name, spec, length, seed)`` tuples.
        jobs: Worker processes (see :func:`resolve_jobs`).
        cache: Result cache (see :func:`resolve_cache`).
        lanes: Seed replicates coalesced per simulation lease (see
            :func:`resolve_lanes`; ``1`` = no coalescing, ``"auto"``/``0``
            = whole replicate groups).  Tasks sharing a
            :func:`~repro.harness.cache.lane_group_key` run together
            through the lane-batched kernel; results are independent of
            the grouping, exactly as they are of ``jobs``.
        on_error: ``"raise"`` (default) wraps the first task failure in a
            :class:`SimulationError` identifying the failing task and
            aborts the batch; ``"collect"`` instead places the
            :class:`SimulationError` in that task's result slot and keeps
            the remaining tasks running — the sweep runner's degraded mode.
        checkpoints: Warmup-checkpoint store for warmed specs (see
            :func:`~repro.harness.checkpoint.resolve_checkpoints`);
            ``None`` defers to ``$REPRO_CHECKPOINT_DIR``.
        progress: Optional callback invoked as each task resolves with a
            dict of ``workload``/``spec``/``length``/``seed``, ``source``
            (``"cache"``, ``"sim"`` or ``"error"``) and the running
            ``completed``/``total`` counts.  Exceptions it raises are
            swallowed — progress reporting must never kill a batch.

    Returns:
        One :class:`SimStats` per task, in task order (or a
        :class:`SimulationError` per failed task under ``"collect"``).
        Results are independent of ``jobs`` and of cache hits/misses.
    """
    if on_error not in ("raise", "collect"):
        raise ValueError(f'on_error must be "raise" or "collect", not {on_error!r}')
    from repro.harness.checkpoint import resolve_checkpoints

    cache_obj = resolve_cache(cache)
    ckpt_store = resolve_checkpoints(checkpoints)
    n_jobs = resolve_jobs(jobs)

    results: list[SimStats | SimulationError | None] = [None] * len(tasks)
    keys: list[str | None] = [None] * len(tasks)
    completed = 0

    def report(indices: list[int], source: str) -> None:
        nonlocal completed
        completed += len(indices)
        if progress is None:
            return
        workload_name, spec, length, seed = tasks[indices[0]]
        try:
            progress({
                "workload": workload_name,
                "spec": getattr(spec, "name", "?"),
                "length": length,
                "seed": seed,
                "source": source,
                "completed": completed,
                "total": len(tasks),
            })
        except Exception:
            pass

    def fail(indices: list[int], exc: BaseException) -> None:
        workload_name, spec, length, seed = tasks[indices[0]]
        error = SimulationError(
            workload_name, getattr(spec, "name", "?"), length, seed, exc
        )
        if on_error == "raise":
            raise error from exc
        for i in indices:
            results[i] = error
        report(indices, "error")

    #: indices still needing a simulation, grouped so identical tasks
    #: (same key) run once and fan back out to every requesting index
    groups: dict[object, list[int]] = {}
    for i, (workload_name, spec, length, seed) in enumerate(tasks):
        try:
            key = (
                task_key(workload_name, spec, length, seed)
                if cache_obj is not None
                else None
            )
        except Exception as exc:
            # e.g. an invalid MachineConfig raising inside the factory
            # while the key is being derived: a per-task failure, not a
            # batch abort
            fail([i], exc)
            continue
        keys[i] = key
        if key is not None:
            hit = cache_obj.get(key)
            if hit is not None:
                results[i] = hit
                report([i], "cache")
                continue
        # uncacheable tasks get a unique group: no key to prove identity
        groups.setdefault(key if key is not None else ("#", i), []).append(i)

    def finish(indices: list[int], stats: SimStats) -> None:
        key = keys[indices[0]]
        if cache_obj is not None and key is not None:
            cache_obj.put(key, stats)
        for i in indices:
            results[i] = stats
        report(indices, "sim")

    pending = list(groups.values())
    lane_cap = resolve_lanes(lanes)

    #: dispatch units: each batch is a list of key-groups; singleton
    #: batches run the ordinary scalar task, longer ones one lane-batched
    #: simulation covering every key-group's seed
    batches: list[list[list[int]]] = []
    if lane_cap != 1 and len(pending) > 1:
        open_buckets: dict[object, list[list[int]]] = {}
        for indices in pending:
            workload_name, spec, length, seed = tasks[indices[0]]
            try:
                group = lane_group_key(workload_name, spec, length)
            except Exception:
                group = None
            # an indescribable recipe still groups with itself: replicate
            # fan-out reuses one spec object across seeds
            bucket_id = (
                group if group is not None else (id(spec), workload_name, length)
            )
            bucket = open_buckets.get(bucket_id)
            if bucket is None or (lane_cap > 0 and len(bucket) >= lane_cap):
                bucket = []
                open_buckets[bucket_id] = bucket
                batches.append(bucket)
            bucket.append(indices)
    else:
        batches = [[indices] for indices in pending]

    def finish_batch(batch: list[list[int]], outcome) -> None:
        if len(batch) == 1:
            finish(batch[0], outcome)
        else:
            for indices, stats in zip(batch, outcome):
                finish(indices, stats)

    if n_jobs > 1 and len(batches) > 1:
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(batches))) as pool:
            # workers get the store's directory, not the store: paths
            # pickle, and each worker reopens its own handle on it
            ckpt_dir = (
                str(ckpt_store.directory) if ckpt_store is not None else None
            )
            futures = {}
            for batch in batches:
                workload_name, spec, length, seed = tasks[batch[0][0]]
                if len(batch) == 1:
                    future = pool.submit(
                        _run_task, spec, workload_name, length, seed, ckpt_dir
                    )
                else:
                    seeds = [tasks[indices[0]][3] for indices in batch]
                    future = pool.submit(
                        _run_batch_task, spec, workload_name, length, seeds,
                        ckpt_dir,
                    )
                futures[future] = batch
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    batch = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        fail([i for indices in batch for i in indices], exc)
                    else:
                        finish_batch(batch, outcome)
    else:
        for batch in batches:
            workload_name, spec, length, seed = tasks[batch[0][0]]
            try:
                if len(batch) == 1:
                    outcome = _run_task(
                        spec, workload_name, length, seed, ckpt_store
                    )
                else:
                    seeds = [tasks[indices[0]][3] for indices in batch]
                    outcome = _run_batch_task(
                        spec, workload_name, length, seeds, ckpt_store
                    )
            except Exception as exc:
                fail([i for indices in batch for i in indices], exc)
            else:
                finish_batch(batch, outcome)

    return results  # type: ignore[return-value]
