"""Export experiment results and run statistics to JSON/CSV.

Downstream users typically want machine-readable outputs next to the
pretty tables; these helpers keep that path dependency-free.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.core import SimStats
from repro.harness.experiments import ExperimentResult


def stats_to_dict(stats: SimStats) -> dict:
    """Flatten a :class:`SimStats` into plain JSON-serializable types."""
    out = stats.to_dict()
    out["useful_ipc"] = stats.useful_ipc
    out["prediction_accuracy"] = stats.prediction_accuracy
    out["branch_accuracy"] = stats.branch_accuracy
    out["memory_miss_fraction"] = stats.memory_miss_fraction
    return out


def result_to_dict(result: ExperimentResult) -> dict:
    """Convert an :class:`ExperimentResult` into a JSON-serializable dict."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [dict(row) for row in result.rows],
        "summary": dict(result.summary),
    }


def result_to_json(result: ExperimentResult, path: str | Path | None = None) -> str:
    """Serialize a result to JSON; optionally also write it to ``path``."""
    text = json.dumps(result_to_dict(result), indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text


def result_to_csv(result: ExperimentResult, path: str | Path | None = None) -> str:
    """Serialize a result's rows to CSV; optionally write to ``path``.

    The summary is appended as comment lines (``# key,value``) so a single
    file round-trips everything a plot needs.
    """
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=result.columns, extrasaction="ignore")
    writer.writeheader()
    for row in result.rows:
        writer.writerow(row)
    for key, value in result.summary.items():
        buffer.write(f"# {key},{value}\n")
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def load_result_json(path: str | Path) -> ExperimentResult:
    """Re-hydrate a result written by :func:`result_to_json`."""
    data = json.loads(Path(path).read_text())
    return ExperimentResult(
        experiment_id=data["experiment_id"],
        title=data["title"],
        columns=data["columns"],
        rows=data["rows"],
        summary=data["summary"],
    )
