"""One execution-policy surface for every way the harness runs things.

Before this module, execution concerns were threaded ad hoc as keyword
arguments — ``jobs=`` through :func:`~repro.harness.parallel.
run_simulations`, ``lanes=`` through :class:`~repro.harness.Session`,
``retries=``/``stale_after=``/``heartbeat=`` through
:func:`~repro.sweep.run_sweep`, ``cache=``/``checkpoints=`` through all
of them — and adding a new dispatch mode meant touching every signature
again.  :class:`ExecutionPolicy` bundles the full answer to *how should
this work execute* into one value:

* ``jobs`` — worker processes per in-process fan-out,
* ``lanes`` — seed replicates coalesced per lane-batched lease,
* ``dispatch`` — ``"local"`` (serial in-process), ``"pool"``
  (ProcessPoolExecutor), ``"workers"`` (coordinator + standalone worker
  processes leasing rows from the sweep store), or ``"auto"``,
* ``workers`` — worker-process count for ``dispatch="workers"``,
* ``retries`` — extra attempts per failed sweep row,
* ``cache`` / ``checkpoints`` — the shared result cache and warmup
  checkpoint store,
* ``warmup`` / ``sample`` — the interval protocol,
* ``chunk`` / ``stale_after`` / ``heartbeat`` — commit granularity and
  the lease-liveness protocol.

Every field defaults to *unset* (``None``), which defers to the matching
``REPRO_*`` environment variable and then to the historical default, so
``ExecutionPolicy()`` reproduces the old behaviour exactly.  The legacy
keywords survive as deprecation shims (:meth:`ExecutionPolicy.coalesce`)
that warn and fold into a policy — old and new spellings build identical
task keys and identical results.

Environment defaults (one table, also in README):

=======================  ====================================================
``REPRO_JOBS``           worker processes (unset/1 = serial, 0 = all cores)
``REPRO_LANES``          lane-batched seed replicates (unset/1 = scalar,
                         ``auto``/0 = whole replicate groups)
``REPRO_DISPATCH``       sweep dispatch mode (``local``/``pool``/``workers``)
``REPRO_WORKERS``        worker-process count for ``dispatch=workers``
``REPRO_CACHE_DIR``      result cache directory (unset = no caching)
``REPRO_CHECKPOINT_DIR`` warmup checkpoint directory (unset = no reuse)
``REPRO_TRACE_LEN``      default dynamic trace length
=======================  ====================================================
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from pathlib import Path

from repro.harness.cache import ResultCache

#: sentinel distinguishing "keyword not passed" from an explicit ``None``
#: (``None`` is meaningful almost everywhere: it means "consult the
#: environment")
UNSET = type("_Unset", (), {"__repr__": lambda self: "<unset>"})()

#: the legal dispatch modes, in escalation order
DISPATCH_MODES = ("auto", "local", "pool", "workers")


def _env_text(name: str) -> str | None:
    """A ``REPRO_*`` variable's stripped value, or ``None`` when unset."""
    raw = os.environ.get(name, "").strip()
    return raw or None


def _parse_count(value, *, what: str, auto: str | None = None) -> int:
    """The one integer parser behind jobs/lanes/workers resolution.

    ``value`` may be an int or a string (CLI flags and environment
    variables arrive as text).  ``auto`` names an accepted magic word
    (parsed as ``0``); errors always name the offending setting and the
    rejected text.
    """
    if isinstance(value, str):
        text = value.strip().lower()
        if auto is not None and text == auto:
            return 0
        try:
            return int(text)
        except ValueError:
            accepted = f"an integer or \"{auto}\"" if auto else "an integer"
            raise ValueError(f"{what} must be {accepted}, got {value!r}") from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{what} must be an integer, got {value!r}")
    return value


def resolve_jobs(jobs) -> int:
    """Worker count: explicit ``jobs``, else ``$REPRO_JOBS``, else serial.

    ``0`` (or any non-positive value) means "all cores".
    """
    if jobs is None:
        env = _env_text("REPRO_JOBS")
        if env is None:
            return 1
        jobs = _parse_count(env, what="REPRO_JOBS (worker process count)")
    else:
        jobs = _parse_count(jobs, what="jobs")
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def resolve_lanes(lanes, group_size: int | None = None) -> int:
    """Lane count: explicit ``lanes``, else ``$REPRO_LANES``, else 1.

    ``"auto"`` (or ``0``, or any non-positive count) means "as many lanes
    as the replicate group has seeds": with ``group_size`` given that
    bound is returned, otherwise ``0`` — callers treat it as unbounded.
    """
    if lanes is None:
        env = _env_text("REPRO_LANES")
        if env is None:
            return 1
        lanes = _parse_count(env, what="REPRO_LANES (lane count)", auto="auto")
    else:
        lanes = _parse_count(lanes, what="lanes", auto="auto")
    if lanes <= 0:
        return group_size if group_size is not None else 0
    return lanes


def resolve_workers(workers) -> int:
    """Worker-process count for ``dispatch="workers"``.

    Explicit ``workers``, else ``$REPRO_WORKERS``, else 2; ``0`` (or any
    non-positive value) means "all cores".
    """
    if workers is None:
        env = _env_text("REPRO_WORKERS")
        if env is None:
            return 2
        workers = _parse_count(env, what="REPRO_WORKERS (worker process count)")
    else:
        workers = _parse_count(workers, what="workers")
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def resolve_dispatch(dispatch) -> object:
    """Dispatch mode: explicit value, else ``$REPRO_DISPATCH``, else auto.

    Accepts a mode name (see :data:`DISPATCH_MODES`) or a ready-made
    dispatcher object (anything with a ``run`` method — the seam tests
    and the coordinator use).  ``"auto"`` is resolved by
    :meth:`ExecutionPolicy.resolved_dispatch` into ``"pool"`` or
    ``"local"`` depending on the resolved job count.
    """
    if dispatch is None:
        env = _env_text("REPRO_DISPATCH")
        if env is None:
            return "auto"
        dispatch = env
    if callable(getattr(dispatch, "run", None)):
        return dispatch
    if isinstance(dispatch, str):
        mode = dispatch.strip().lower()
        if mode in DISPATCH_MODES:
            return mode
    raise ValueError(
        f"dispatch must be one of {'|'.join(DISPATCH_MODES)} "
        f"(or a Dispatcher instance), got {dispatch!r}"
    )


def resolve_cache(cache) -> ResultCache | None:
    """Normalize the ``cache`` ingredient every entry point accepts.

    ``None`` consults ``$REPRO_CACHE_DIR`` (unset means no caching);
    ``False`` disables caching outright; a string/path opens a
    :class:`ResultCache` there; a :class:`ResultCache` passes through.
    """
    if cache is None:
        env = _env_text("REPRO_CACHE_DIR")
        return ResultCache(env) if env else None
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    raise TypeError(
        f"cache must be None, False, a path or a ResultCache, not {cache!r}"
    )


@dataclasses.dataclass(frozen=True)
class ExecutionPolicy:
    """How simulation work should execute, as one immutable value.

    Every field is optional; ``None`` means "unset" and defers to the
    corresponding environment variable, then the historical default —
    see the ``resolved_*`` accessors.  ``cache``/``checkpoints`` follow
    the established resolution convention (``None`` = environment,
    ``False`` = off, path or store object = use that).

    Policies compose with :meth:`merged` (non-``None`` overrides win),
    which is how campaign-level defaults, CLI flags and per-call
    overrides layer without another keyword explosion.
    """

    jobs: int | None = None
    lanes: int | str | None = None
    dispatch: object | None = None
    workers: int | None = None
    retries: int | None = None
    cache: object = None
    checkpoints: object = None
    warmup: int | None = None
    sample: int | None = None
    chunk: int | None = None
    stale_after: float | None = None
    heartbeat: float | None = None

    # ------------------------------------------------------------------
    def resolved_jobs(self) -> int:
        return resolve_jobs(self.jobs)

    def resolved_lanes(self, group_size: int | None = None) -> int:
        return resolve_lanes(self.lanes, group_size)

    def resolved_workers(self) -> int:
        return resolve_workers(self.workers)

    def resolved_dispatch(self) -> object:
        """The concrete dispatch mode (``"auto"`` settled by job count)."""
        mode = resolve_dispatch(self.dispatch)
        if mode == "auto":
            return "pool" if self.resolved_jobs() > 1 else "local"
        return mode

    def resolved_cache(self) -> ResultCache | None:
        return resolve_cache(self.cache)

    def resolved_checkpoints(self):
        from repro.harness.checkpoint import resolve_checkpoints

        return resolve_checkpoints(self.checkpoints)

    # ------------------------------------------------------------------
    def merged(self, **overrides) -> "ExecutionPolicy":
        """A copy with the given non-``None`` fields replaced.

        ``None`` overrides are ignored (they mean "leave as is"), so
        layering reads naturally::

            policy.merged(jobs=args.jobs, retries=args.retries)
        """
        updates = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **updates) if updates else self

    @classmethod
    def coalesce(cls, policy, api: str, **legacy) -> "ExecutionPolicy":
        """Fold deprecated per-keyword arguments into one policy.

        ``legacy`` values still carrying :data:`UNSET` were not passed;
        anything else was, earns one :class:`DeprecationWarning` naming
        the API and the keywords, and overrides the matching policy
        field (explicit wins — the caller typed it).
        """
        given = {k: v for k, v in legacy.items() if v is not UNSET}
        if given:
            warnings.warn(
                f"{api}: the {sorted(given)} keyword(s) are deprecated; "
                f"pass policy=ExecutionPolicy(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        base = policy if policy is not None else cls()
        if not isinstance(base, ExecutionPolicy):
            raise TypeError(
                f"policy must be an ExecutionPolicy, not {type(base).__name__}"
            )
        if given:
            base = dataclasses.replace(base, **given)
        return base
