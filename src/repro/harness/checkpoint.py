"""Warmup checkpoint store: cached architectural state, shared across runs.

Functional fast-forward (:meth:`Engine.fast_forward`) skips the warmup
prefix of a trace, touching only *architectural* state — trace position,
branch history, cache/prefetcher contents, branch- and value-predictor
tables.  That state is a pure function of far fewer ingredients than a
full simulation result: the workload and seed, the warmup length, the
value-predictor recipe, and only the *architecturally relevant* machine
axes (cache geometry and prefetcher parameters — not latencies, ports,
window sizes, selectors or simulation mode, none of which functional
warmup can observe).

So one warmup checkpoint serves every configuration in a sweep that
varies only timing axes: the first run fast-forwards and stores an
``scope="arch"`` engine snapshot under :func:`arch_key`; later runs
restore it and go straight to the timed region.  The store is a directory
of pickle files, a sibling of the result cache
(:func:`default_checkpoint_dir`), with the same hit/miss/store counters
for tests and campaign summaries.

The ``repro run --checkpoint/--restore`` CLI uses the single-file helpers
:func:`save_checkpoint` / :func:`load_checkpoint` instead of keyed
storage: an explicit file names its state, so the key ingredients are
recorded inside the file and validated on load.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import threading
from pathlib import Path

from repro.harness.cache import (
    _plain,
    code_version,
    default_cache_dir,
    describe_factory,
)

#: MachineConfig fields that shape the architectural state a functional
#: fast-forward produces.  ``prefetch_fill_latency`` is here because
#: stream-buffer entries record their fill *times*, which embed it; plain
#: access latencies, MSHR counts, window/issue geometry and the simulation
#: mode are invisible to functional warmup and deliberately excluded so
#: checkpoints are shared across those axes.
ARCH_CONFIG_FIELDS = (
    "l1_size",
    "l1_assoc",
    "l2_size",
    "l2_assoc",
    "l3_size",
    "l3_assoc",
    "line_size",
    "prefetch_enabled",
    "prefetch_entries",
    "prefetch_streams",
    "prefetch_depth",
    "prefetch_fill_latency",
    "warm_caches",
)

#: file format marker for single-file checkpoints (``repro run``)
CHECKPOINT_FILE_VERSION = 1


def default_checkpoint_dir() -> Path:
    """``$REPRO_CHECKPOINT_DIR``, else ``checkpoints/`` inside the cache dir."""
    env = os.environ.get("REPRO_CHECKPOINT_DIR")
    if env:
        return Path(env)
    return default_cache_dir() / "checkpoints"


def arch_key(workload_name: str, seed: int, warmup: int, spec) -> str | None:
    """Checkpoint key for one ``(workload, seed, warmup, RunSpec)``.

    Only architectural ingredients participate (see the module
    docstring); two specs that differ in selector, mode or any timing
    axis map to the same key and share a checkpoint.  Returns ``None``
    when an ingredient cannot be described stably (lambda factories),
    mirroring :func:`~repro.harness.cache.task_key`.
    """
    if not warmup:
        return None
    predictor = describe_factory(spec.predictor_factory)
    if predictor is None:
        return None
    try:
        config = spec.config_factory()
    except TypeError:
        return None
    fields = dataclasses.asdict(config)
    payload = {
        "workload": workload_name,
        "seed": seed,
        "warmup": warmup,
        "predictor": predictor,
        "config": {name: _plain(fields[name]) for name in ARCH_CONFIG_FIELDS},
        "code": code_version(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class CheckpointStore:
    """Directory of ``<key>.ckpt`` pickles, one arch snapshot each.

    Counters (``hits``/``misses``/``stores``) track this instance's
    traffic; the sweep runner reports them so a campaign shows how many
    points reused a warmup instead of re-running it.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_checkpoint_dir()
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        self._counter_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.ckpt"

    def get(self, key: str) -> dict | None:
        """Cached arch snapshot for ``key``, or None (corrupt = miss).

        A concurrently-removed file is an ordinary miss; a file that
        exists but fails to unpickle (truncated by a killed writer) is a
        miss *and* is deleted, so the slot re-warms cleanly instead of
        poisoning every later run that keys to it.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except OSError:
            with self._counter_lock:
                self.misses += 1
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                IndexError, ValueError):
            try:
                path.unlink()
            except OSError:
                pass
            with self._counter_lock:
                self.misses += 1
            return None
        with self._counter_lock:
            self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store an arch snapshot under ``key`` (atomic rename).

        Recreates the store directory if a concurrent cleaner removed it.
        """
        for attempt in (0, 1):
            try:
                fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            except FileNotFoundError:
                if attempt:
                    raise
                self.directory.mkdir(parents=True, exist_ok=True)
                continue
            break
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._counter_lock:
            self.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.ckpt"))

    def __repr__(self) -> str:
        return (
            f"CheckpointStore({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )


def resolve_checkpoints(checkpoints) -> CheckpointStore | None:
    """Normalize the ``checkpoints`` argument harness entry points accept.

    ``None`` consults ``$REPRO_CHECKPOINT_DIR`` (unset means no store);
    ``False`` disables checkpointing outright; a string/path opens a
    :class:`CheckpointStore` there; a store passes through.
    """
    if checkpoints is None:
        env = os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
        return CheckpointStore(env) if env else None
    if checkpoints is False:
        return None
    if isinstance(checkpoints, CheckpointStore):
        return checkpoints
    if isinstance(checkpoints, (str, Path)):
        return CheckpointStore(checkpoints)
    raise TypeError(
        f"checkpoints must be None, False, a path or a CheckpointStore, "
        f"not {checkpoints!r}"
    )


# ----------------------------------------------------------------------
# single-file checkpoints (the `repro run --checkpoint/--restore` format)
# ----------------------------------------------------------------------
def save_checkpoint(
    path: str | Path, arch: dict, *, workload: str, seed: int
) -> None:
    """Write one arch snapshot plus its identity to an explicit file."""
    payload = {
        "format": "repro-checkpoint",
        "version": CHECKPOINT_FILE_VERSION,
        "workload": workload,
        "seed": seed,
        "warmup": arch["pos"],
        "code": code_version(),
        "arch": arch,
    }
    with Path(path).open("wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_checkpoint(
    path: str | Path, *, workload: str | None = None, seed: int | None = None
) -> dict:
    """Read a :func:`save_checkpoint` file, validating its identity.

    A checkpoint is only meaningful on the trace that produced it, so a
    ``workload``/``seed`` mismatch is an error, not a silent cold start.
    A code-version mismatch is allowed (the snapshot schema is versioned
    separately) — the engine's own restore validation has the final say.
    """
    with Path(path).open("rb") as handle:
        payload = pickle.load(handle)
    if (
        not isinstance(payload, dict)
        or payload.get("format") != "repro-checkpoint"
    ):
        raise ValueError(f"{path} is not a repro warmup checkpoint")
    if payload.get("version") != CHECKPOINT_FILE_VERSION:
        raise ValueError(
            f"unsupported checkpoint file version: {payload.get('version')!r}"
        )
    if workload is not None and payload["workload"] != workload:
        raise ValueError(
            f"checkpoint {path} was taken on workload "
            f"{payload['workload']!r}, not {workload!r}"
        )
    if seed is not None and payload["seed"] != seed:
        raise ValueError(
            f"checkpoint {path} was taken with seed {payload['seed']}, "
            f"not {seed}"
        )
    return payload
