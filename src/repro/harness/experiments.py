"""The paper's evaluation, experiment by experiment.

Every public function regenerates one table/figure from the paper (the
experiment index lives in DESIGN.md §4) and returns an
:class:`ExperimentResult` whose rows mirror the artifact's series.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable

from repro import select, vp
from repro.core import FetchPolicy, MachineConfig
from repro.harness.metrics import geomean_speedup
from repro.harness.parallel import run_simulations
from repro.harness.runner import ModeResult, RunSpec, compare_modes, default_length
from repro.memory import MemLevel
from repro.workloads import SPEC_FP, SPEC_INT, get_workload


@dataclasses.dataclass
class ExperimentResult:
    """Structured output of one reproduced experiment."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict]
    summary: dict

    def format_table(self) -> str:
        """Render the rows as a fixed-width ASCII table."""
        widths = {
            c: max(len(c), *(len(_fmt(r.get(c))) for r in self.rows)) if self.rows
            else len(c)
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines = [self.title, "=" * len(header), header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in self.columns)
            )
        if self.summary:
            lines.append("-" * len(header))
            for key, value in self.summary.items():
                lines.append(f"{key}: {_fmt(value)}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if 0 < abs(value) < 1:
            return f"{value:+.3f}"
        return f"{value:+.1f}" if abs(value) < 1000 else f"{value:.3g}"
    return str(value)


def _suite_geomeans(results: dict[str, list[ModeResult]]) -> dict:
    summary: dict[str, float] = {}
    for mode, rows in results.items():
        for suite in ("int", "fp"):
            pts = [r.speedup_percent for r in rows if r.suite == suite]
            if pts:
                summary[f"{mode} geomean {suite.upper()} %"] = geomean_speedup(pts)
    return summary


def _speedup_rows(
    results: dict[str, list[ModeResult]], mode_names: list[str]
) -> list[dict]:
    rows: list[dict] = []
    first = results[mode_names[0]]
    for i, base_row in enumerate(first):
        row = {"workload": base_row.workload, "suite": base_row.suite}
        for mode in mode_names:
            row[mode] = results[mode][i].speedup_percent
        rows.append(row)
    return rows


ALL = SPEC_INT + SPEC_FP


#: the "more liberal predictor" of Section 5.6: a softer threshold and
#: penalty keep a secondary candidate over threshold without opening the
#: door to junk predictions on unpredictable loads.  A registry factory is
#: a ``functools.partial`` over the class, so multi-value runs stay
#: picklable for the process pool and stably hashable for the result cache.
_liberal_wf = vp.factory("wang-franklin", threshold=8, penalty=4)


# ----------------------------------------------------------------------
# Figure 1: potential of multithreaded value prediction (oracle predictor)
# ----------------------------------------------------------------------
def fig1_oracle_potential(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Figure 1: % change in useful IPC with an oracle value predictor.

    STVP vs MTVP with 2/4/8 total threads, ILP-pred load selection, the
    idealized conditions of Section 5.1 (1-cycle spawn, unbounded store
    buffer, fetch stalls on the spawning thread).
    """
    idealized = dict(spawn_latency=1, store_buffer_entries=None)
    specs = [
        RunSpec("stvp", functools.partial(MachineConfig.stvp)),
        RunSpec("mtvp2", functools.partial(MachineConfig.mtvp, 2, **idealized)),
        RunSpec("mtvp4", functools.partial(MachineConfig.mtvp, 4, **idealized)),
        RunSpec("mtvp8", functools.partial(MachineConfig.mtvp, 8, **idealized)),
    ]
    results = compare_modes(ALL, specs, length=length, jobs=jobs, cache=cache)
    mode_names = [s.name for s in specs]
    return ExperimentResult(
        experiment_id="fig1",
        title="Figure 1: Change in Useful IPC with Oracle Value Prediction (%)",
        columns=["workload", "suite"] + mode_names,
        rows=_speedup_rows(results, mode_names),
        summary=_suite_geomeans(results),
    )


# ----------------------------------------------------------------------
# Figure 2: sensitivity to thread spawn latency
# ----------------------------------------------------------------------
def fig2_spawn_latency(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Figure 2: average speedups with 1/8/16-cycle spawn latencies."""
    rows: list[dict] = []
    summary: dict = {}
    for latency in (1, 8, 16):
        specs = [
            RunSpec("stvp", functools.partial(MachineConfig.stvp)),
            RunSpec(
                "mtvp2", functools.partial(MachineConfig.mtvp, 2, spawn_latency=latency)
            ),
            RunSpec(
                "mtvp4", functools.partial(MachineConfig.mtvp, 4, spawn_latency=latency)
            ),
            RunSpec(
                "mtvp8", functools.partial(MachineConfig.mtvp, 8, spawn_latency=latency)
            ),
        ]
        results = compare_modes(ALL, specs, length=length, jobs=jobs, cache=cache)
        for suite in ("int", "fp"):
            row = {"spawn latency": f"{latency} cyc", "suite": suite}
            for mode, mode_rows in results.items():
                pts = [r.speedup_percent for r in mode_rows if r.suite == suite]
                row[mode] = geomean_speedup(pts)
            rows.append(row)
    return ExperimentResult(
        experiment_id="fig2",
        title="Figure 2: Speedup vs thread spawn latency (geomean %)",
        columns=["spawn latency", "suite", "stvp", "mtvp2", "mtvp4", "mtvp8"],
        rows=rows,
        summary=summary,
    )


# ----------------------------------------------------------------------
# Section 5.3: store buffer size sweep
# ----------------------------------------------------------------------
def sec53_store_buffer(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Section 5.3: speculation distance vs store-buffer capacity.

    The paper reports performance "begins to tail off at 64 and below
    entries" while "a 128-entry buffer gets nearly the performance of the
    largest buffer we simulate".
    """
    sizes: list[int | None] = [16, 32, 64, 128, 256, 512, None]
    rows: list[dict] = []
    for size in sizes:
        spec = RunSpec(
            f"sb{size or 'inf'}",
            functools.partial(MachineConfig.mtvp, 8, store_buffer_entries=size),
        )
        results = compare_modes(ALL, [spec], length=length, jobs=jobs, cache=cache)
        mode_rows = results[spec.name]
        row = {"store buffer": str(size) if size else "unlimited"}
        for suite in ("int", "fp"):
            pts = [r.speedup_percent for r in mode_rows if r.suite == suite]
            row[f"geomean {suite} %"] = geomean_speedup(pts)
        stalls = sum(r.stats.store_buffer_stalls for r in mode_rows)
        row["sb stalls"] = stalls
        rows.append(row)
    return ExperimentResult(
        experiment_id="sec5.3",
        title="Section 5.3: MTVP-8 speedup vs store buffer size",
        columns=["store buffer", "geomean int %", "geomean fp %", "sb stalls"],
        rows=rows,
        summary={},
    )


# ----------------------------------------------------------------------
# Figure 3: realistic Wang-Franklin predictor
# ----------------------------------------------------------------------
def fig3_realistic_wf(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Figure 3: useful-IPC change with the hybrid Wang-Franklin predictor.

    Realistic conditions: 8-cycle spawn latency, 128-entry store buffer.
    """
    specs = [
        RunSpec("stvp", functools.partial(MachineConfig.stvp),
                predictor_factory="wang-franklin"),
        RunSpec("mtvp2", functools.partial(MachineConfig.mtvp, 2),
                predictor_factory="wang-franklin"),
        RunSpec("mtvp4", functools.partial(MachineConfig.mtvp, 4),
                predictor_factory="wang-franklin"),
        RunSpec("mtvp8", functools.partial(MachineConfig.mtvp, 8),
                predictor_factory="wang-franklin"),
    ]
    results = compare_modes(ALL, specs, length=length, jobs=jobs, cache=cache)
    mode_names = [s.name for s in specs]
    return ExperimentResult(
        experiment_id="fig3",
        title="Figure 3: Change in Useful IPC with a realistic Wang-Franklin predictor (%)",
        columns=["workload", "suite"] + mode_names,
        rows=_speedup_rows(results, mode_names),
        summary=_suite_geomeans(results),
    )


# ----------------------------------------------------------------------
# Figure 4: fetch policy (single fetch path vs no-stall)
# ----------------------------------------------------------------------
def fig4_fetch_policy(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Figure 4: letting the parent keep fetching is counterproductive."""
    specs = [
        RunSpec("stvp", functools.partial(MachineConfig.stvp),
                predictor_factory="wang-franklin"),
        RunSpec("mtvp sfp", functools.partial(MachineConfig.mtvp, 8),
                predictor_factory="wang-franklin"),
        RunSpec(
            "mtvp no stall",
            functools.partial(
                MachineConfig.mtvp, 8, fetch_policy=FetchPolicy.NO_STALL
            ),
            predictor_factory="wang-franklin",
        ),
    ]
    results = compare_modes(ALL, specs, length=length, jobs=jobs, cache=cache)
    mode_names = [s.name for s in specs]
    return ExperimentResult(
        experiment_id="fig4",
        title="Figure 4: fetch policies — single fetch path vs no-stall (%)",
        columns=["workload", "suite"] + mode_names,
        rows=_speedup_rows(results, mode_names),
        summary=_suite_geomeans(results),
    )


# ----------------------------------------------------------------------
# Figure 5: multiple-value potential
# ----------------------------------------------------------------------
def fig5_multivalue_potential(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Figure 5: fraction of followed predictions whose primary value was
    wrong while the correct value sat in the predictor over threshold."""
    spec = RunSpec(
        "mtvp8 mv",
        functools.partial(MachineConfig.mtvp, 8, collect_multivalue=True),
        predictor_factory="wang-franklin",
        selector_factory="ilp-pred",
    )
    n = length or default_length()
    all_stats = run_simulations(
        [(name, spec, n, 0) for name in ALL], jobs=jobs, cache=cache
    )
    rows: list[dict] = []
    for name, stats in zip(ALL, all_stats):
        rows.append(
            {
                "workload": name,
                "suite": get_workload(name).suite,
                "followed": stats.followed_predictions,
                "fraction": round(stats.multivalue_fraction, 4),
            }
        )
    fractions = [r["fraction"] for r in rows]
    return ExperimentResult(
        experiment_id="fig5",
        title="Figure 5: primary wrong but correct value present & over threshold",
        columns=["workload", "suite", "followed", "fraction"],
        rows=rows,
        summary={"max fraction": max(fractions), "mean fraction": sum(fractions) / len(fractions)},
    )


# ----------------------------------------------------------------------
# Section 5.6: multiple-value MTVP on swim and parser
# ----------------------------------------------------------------------
def sec56_multivalue(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Section 5.6: a liberal predictor + L3-miss oracle selector make
    multiple-value MTVP profitable on swim and parser."""
    names = ("swim", "parser")
    n = length or default_length()
    specs = [
        RunSpec("base", MachineConfig.hpca05_baseline),
        RunSpec("single", functools.partial(MachineConfig.mtvp, 8),
                predictor_factory="wang-franklin",
                selector_factory="ilp-pred"),
        RunSpec(
            "multi",
            functools.partial(MachineConfig.mtvp, 8, multi_value=2),
            predictor_factory=_liberal_wf,
            selector_factory=select.factory("miss-oracle", mtvp_level=MemLevel.L3),
        ),
    ]
    tasks = [(name, spec, n, 0) for name in names for spec in specs]
    all_stats = run_simulations(tasks, jobs=jobs, cache=cache)
    rows: list[dict] = []
    for i, name in enumerate(names):
        base, single, multi = all_stats[i * len(specs): (i + 1) * len(specs)]
        rows.append(
            {
                "workload": name,
                "single-value %": 100.0 * (single.useful_ipc / base.useful_ipc - 1),
                "multi-value %": 100.0 * (multi.useful_ipc / base.useful_ipc - 1),
                "multi spawns": multi.spawns,
            }
        )
    return ExperimentResult(
        experiment_id="sec5.6",
        title="Section 5.6: multiple-value MTVP (liberal W-F + L3-miss oracle)",
        columns=["workload", "single-value %", "multi-value %", "multi spawns"],
        rows=rows,
        summary={},
    )


# ----------------------------------------------------------------------
# Figure 6: wide-window / spawn-only comparison
# ----------------------------------------------------------------------
def fig6_wide_window(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Figure 6: idealized 8K-entry-window machine vs best MTVP vs
    spawn-only (threads without value prediction)."""
    specs = [
        RunSpec("wide window", MachineConfig.wide_window),
        RunSpec("best mtvp", functools.partial(MachineConfig.mtvp, 8),
                predictor_factory="wang-franklin"),
        RunSpec("spawn only", functools.partial(MachineConfig.spawn_only, 8)),
    ]
    results = compare_modes(ALL, specs, length=length, jobs=jobs, cache=cache)
    rows: list[dict] = []
    for suite in ("int", "fp"):
        row = {"suite": f"AVG {suite.upper()}"}
        for mode, mode_rows in results.items():
            pts = [r.speedup_percent for r in mode_rows if r.suite == suite]
            row[mode] = geomean_speedup(pts)
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig6",
        title="Figure 6: wide-window vs MTVP vs spawn-only (geomean %)",
        columns=["suite", "wide window", "best mtvp", "spawn only"],
        rows=rows,
        summary=_suite_geomeans(results),
    )


# ----------------------------------------------------------------------
# Section 5.4 (in text): DFCM-3 underperforms the Wang-Franklin hybrid
# ----------------------------------------------------------------------
def sec54_dfcm_vs_wf(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Section 5.4: the more aggressive DFCM makes more predictions, both
    correct and incorrect, and ends up behind the W-F hybrid under MTVP."""
    specs = [
        RunSpec("mtvp8 wf", functools.partial(MachineConfig.mtvp, 8),
                predictor_factory="wang-franklin"),
        RunSpec("mtvp8 dfcm", functools.partial(MachineConfig.mtvp, 8),
                predictor_factory="dfcm"),
    ]
    results = compare_modes(ALL, specs, length=length, jobs=jobs, cache=cache)
    mode_names = [s.name for s in specs]
    rows = _speedup_rows(results, mode_names)
    for i, row in enumerate(rows):
        wf_stats = results["mtvp8 wf"][i].stats
        dfcm_stats = results["mtvp8 dfcm"][i].stats
        row["wf preds"] = wf_stats.total_predictions
        row["dfcm preds"] = dfcm_stats.total_predictions
        row["wf acc"] = round(wf_stats.prediction_accuracy, 3)
        row["dfcm acc"] = round(dfcm_stats.prediction_accuracy, 3)
    return ExperimentResult(
        experiment_id="sec5.4",
        title="Section 5.4: Wang-Franklin hybrid vs third-order DFCM under MTVP-8 (%)",
        columns=["workload", "suite", "mtvp8 wf", "mtvp8 dfcm",
                 "wf preds", "dfcm preds", "wf acc", "dfcm acc"],
        rows=rows,
        summary=_suite_geomeans(results),
    )


# ----------------------------------------------------------------------
# Section 5.1 (in text): load selector comparison
# ----------------------------------------------------------------------
def sec51_selectors(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Section 5.1: the implementable ILP-pred selector is competitive
    with (on average better than) the unimplementable cache-miss oracle."""
    specs = [
        RunSpec("mtvp8 ilp-pred", functools.partial(MachineConfig.mtvp, 8),
                selector_factory="ilp-pred"),
        RunSpec("mtvp8 miss-oracle", functools.partial(MachineConfig.mtvp, 8),
                selector_factory="miss-oracle"),
        RunSpec("mtvp8 always", functools.partial(MachineConfig.mtvp, 8),
                selector_factory="always"),
    ]
    results = compare_modes(ALL, specs, length=length, jobs=jobs, cache=cache)
    rows: list[dict] = []
    for suite in ("int", "fp"):
        row = {"suite": f"AVG {suite.upper()}"}
        for mode, mode_rows in results.items():
            pts = [r.speedup_percent for r in mode_rows if r.suite == suite]
            row[mode] = geomean_speedup(pts)
        rows.append(row)
    return ExperimentResult(
        experiment_id="sec5.1",
        title="Section 5.1: load selector comparison under oracle MTVP-8 (geomean %)",
        columns=["suite", "mtvp8 ilp-pred", "mtvp8 miss-oracle", "mtvp8 always"],
        rows=rows,
        summary={},
    )


# ----------------------------------------------------------------------
# Section 4 (in text): prefetcher ablation
# ----------------------------------------------------------------------
def sec4_prefetcher_ablation(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Section 4: MTVP with and without the stride prefetcher.

    "We find that without a stride prefetcher the effect of multithreaded
    value prediction is greater and more consistent.  However even with a
    stride prefetcher we find very significant speedups are possible ...
    and the mechanisms appear to be highly complementary."  Each column's
    speedups are against the matching (with/without prefetcher) baseline,
    as in the paper.
    """
    rows: list[dict] = []
    for prefetch in (True, False):
        specs = [
            RunSpec(
                "mtvp8",
                functools.partial(MachineConfig.mtvp, 8, prefetch_enabled=prefetch),
            ),
        ]
        baseline = RunSpec(
            "base",
            functools.partial(
                MachineConfig.hpca05_baseline, prefetch_enabled=prefetch
            ),
        )
        results = compare_modes(ALL, specs, length=length, baseline=baseline, jobs=jobs, cache=cache)
        for suite in ("int", "fp"):
            pts = [r.speedup_percent for r in results["mtvp8"] if r.suite == suite]
            rows.append(
                {
                    "prefetcher": "on" if prefetch else "off",
                    "suite": suite,
                    "mtvp8 geomean %": geomean_speedup(pts),
                    "negative benchmarks": sum(1 for p in pts if p < -1.0),
                }
            )
    return ExperimentResult(
        experiment_id="sec4",
        title="Section 4: MTVP-8 speedup with and without the stride prefetcher",
        columns=["prefetcher", "suite", "mtvp8 geomean %", "negative benchmarks"],
        rows=rows,
        summary={},
    )


# ----------------------------------------------------------------------
# Ablation: gains versus main-memory latency (the paper's motivation)
# ----------------------------------------------------------------------
def ablation_memory_latency(
    length: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Motivation check: MTVP's value grows with memory latency.

    The introduction argues traditional latency tolerance fails as
    latencies head toward 1000 cycles; this sweep shows the reproduction
    behaves accordingly — MTVP's advantage over the baseline widens as
    memory gets slower.
    """
    rows: list[dict] = []
    for latency in (250, 500, 1000, 2000):
        specs = [
            RunSpec(
                "stvp", functools.partial(MachineConfig.stvp, mem_latency=latency)
            ),
            RunSpec(
                "mtvp8", functools.partial(MachineConfig.mtvp, 8, mem_latency=latency)
            ),
        ]
        baseline = RunSpec(
            "base",
            functools.partial(MachineConfig.hpca05_baseline, mem_latency=latency),
        )
        results = compare_modes(ALL, specs, length=length, baseline=baseline, jobs=jobs, cache=cache)
        row = {"memory latency": f"{latency} cyc"}
        for mode, mode_rows in results.items():
            row[mode] = geomean_speedup([r.speedup_percent for r in mode_rows])
        rows.append(row)
    return ExperimentResult(
        experiment_id="ablation-latency",
        title="Ablation: speedup vs main-memory latency (geomean %, all workloads)",
        columns=["memory latency", "stvp", "mtvp8"],
        rows=rows,
        summary={},
    )


#: registry used by benchmarks and the CLI example
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_oracle_potential,
    "fig2": fig2_spawn_latency,
    "fig3": fig3_realistic_wf,
    "fig4": fig4_fetch_policy,
    "fig5": fig5_multivalue_potential,
    "fig6": fig6_wide_window,
    "sec4": sec4_prefetcher_ablation,
    "sec5.1": sec51_selectors,
    "sec5.3": sec53_store_buffer,
    "sec5.4": sec54_dfcm_vs_wf,
    "sec5.6": sec56_multivalue,
    "ablation-latency": ablation_memory_latency,
}
