"""Run descriptions and the multi-configuration comparison driver."""

from __future__ import annotations

import dataclasses
import os
from typing import Callable

from repro import simulate
from repro.core import MachineConfig, SimStats
from repro.harness.metrics import percent_speedup
from repro.select import IlpPredSelector, LoadSelector
from repro.vp import OraclePredictor, ValuePredictor
from repro.workloads import get_workload

#: default dynamic trace length for experiments; override with the
#: REPRO_TRACE_LEN environment variable (benchmarks honour it too)
DEFAULT_LENGTH = int(os.environ.get("REPRO_TRACE_LEN", "16000"))


@dataclasses.dataclass
class RunSpec:
    """One named machine configuration plus its predictor/selector recipe.

    Factories (not instances) are required because predictor and selector
    state must be fresh for every simulation.
    """

    name: str
    config_factory: Callable[[], MachineConfig]
    predictor_factory: Callable[[], ValuePredictor] = OraclePredictor
    selector_factory: Callable[[], LoadSelector] = IlpPredSelector

    def run(self, workload_name: str, length: int, seed: int = 0) -> SimStats:
        """Simulate this configuration on one workload."""
        return simulate(
            get_workload(workload_name),
            self.config_factory(),
            predictor=self.predictor_factory(),
            selector=self.selector_factory(),
            length=length,
            seed=seed,
        )


@dataclasses.dataclass
class ModeResult:
    """Per-workload outcome of one configuration against the baseline."""

    workload: str
    suite: str
    mode: str
    ipc: float
    base_ipc: float
    stats: SimStats

    @property
    def speedup_percent(self) -> float:
        """Percent useful-IPC improvement over the baseline machine."""
        return percent_speedup(self.ipc, self.base_ipc)


def run_once(
    workload_name: str,
    spec: RunSpec,
    length: int | None = None,
    seed: int = 0,
) -> SimStats:
    """Convenience wrapper: one workload through one run spec."""
    return spec.run(workload_name, length or DEFAULT_LENGTH, seed)


def compare_modes(
    workload_names: tuple[str, ...],
    specs: list[RunSpec],
    length: int | None = None,
    seed: int = 0,
    baseline: RunSpec | None = None,
) -> dict[str, list[ModeResult]]:
    """Run every spec on every workload against a common baseline.

    Returns a mapping from spec name to its per-workload results, in the
    order of ``workload_names``.
    """
    n = length or DEFAULT_LENGTH
    base_spec = baseline if baseline is not None else RunSpec(
        "baseline", MachineConfig.hpca05_baseline
    )
    results: dict[str, list[ModeResult]] = {spec.name: [] for spec in specs}
    for name in workload_names:
        workload = get_workload(name)
        base_stats = base_spec.run(name, n, seed)
        for spec in specs:
            stats = spec.run(name, n, seed)
            results[spec.name].append(
                ModeResult(
                    workload=name,
                    suite=workload.suite,
                    mode=spec.name,
                    ipc=stats.useful_ipc,
                    base_ipc=base_stats.useful_ipc,
                    stats=stats,
                )
            )
    return results
