"""Run descriptions and the multi-configuration comparison driver."""

from __future__ import annotations

import dataclasses
import os
from typing import Callable

from repro import select, simulate, vp
from repro.core import Engine, MachineConfig, SimStats
from repro.harness.metrics import percent_speedup
from repro.select import LoadSelector
from repro.vp import ValuePredictor
from repro.workloads import get_workload

#: built-in dynamic trace length for experiments when ``REPRO_TRACE_LEN``
#: is unset; resolved lazily by :func:`default_length` so the environment
#: variable can be set (or monkeypatched) after this module is imported
_FALLBACK_LENGTH = 16000


def default_length() -> int:
    """The default dynamic trace length, honouring ``$REPRO_TRACE_LEN``.

    Read at call time — not import time — so tests and scripts can adjust
    the environment whenever they like.
    """
    env = os.environ.get("REPRO_TRACE_LEN", "").strip()
    if not env:
        return _FALLBACK_LENGTH
    try:
        return int(env)
    except ValueError:
        raise ValueError(
            f"REPRO_TRACE_LEN must be an integer trace length, got {env!r}"
        ) from None


def __getattr__(name: str):
    # keep the historical module constant importable without re-freezing
    # the environment at import time
    if name == "DEFAULT_LENGTH":
        return default_length()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclasses.dataclass
class RunSpec:
    """One named machine configuration plus its predictor/selector recipe.

    Factories (not instances) are required because predictor and selector
    state must be fresh for every simulation.  The predictor and selector
    accept registry names (``"wang-franklin"``, ``"ilp-pred"``, ...; see
    :data:`repro.vp.REGISTRY` / :data:`repro.select.REGISTRY`) as well as
    explicit factory callables — names are resolved once at construction.

    ``observe=True`` attaches a fresh
    :class:`~repro.obs.MetricsRegistry` to every run so the resulting
    stats carry ``extended`` occupancy/speculation metrics; it is part of
    the cache identity, so observed and plain results never alias.

    ``warmup``/``sample`` select the interval protocol: ``warmup``
    instructions are fast-forwarded functionally before timing starts,
    and ``sample`` (when set) overrides the caller's trace length as the
    measured-interval length — so one spec pins "warm 50k, measure 10k"
    regardless of the session default.  Both are part of the cache
    identity; both default to the historical full-trace behaviour.
    """

    name: str
    config_factory: Callable[[], MachineConfig]
    predictor_factory: Callable[[], ValuePredictor] | str = "oracle"
    selector_factory: Callable[[], LoadSelector] | str = "ilp-pred"
    observe: bool = False
    warmup: int = 0
    sample: int | None = None

    def __post_init__(self) -> None:
        self.predictor_factory = vp.resolve(self.predictor_factory)
        self.selector_factory = select.resolve(self.selector_factory)
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.sample is not None and self.sample < 1:
            raise ValueError("sample must be positive (or None)")

    def run(
        self,
        workload_name: str,
        length: int,
        seed: int = 0,
        tracer=None,
        metrics=None,
        checkpoints=None,
    ) -> SimStats:
        """Simulate this configuration on one workload.

        ``checkpoints`` (a
        :class:`~repro.harness.checkpoint.CheckpointStore`) lets a warmed
        spec restore its architectural warmup state instead of
        re-deriving it; the key covers only architectural ingredients,
        so specs differing in timing axes share checkpoints.
        """
        if metrics is None and self.observe:
            from repro.obs import MetricsRegistry

            metrics = MetricsRegistry()
        checkpoint_key = None
        if self.warmup and checkpoints is not None:
            from repro.harness.checkpoint import arch_key

            checkpoint_key = arch_key(workload_name, seed, self.warmup, self)
        return simulate(
            get_workload(workload_name),
            self.config_factory(),
            predictor=self.predictor_factory(),
            selector=self.selector_factory(),
            length=self.sample if self.sample is not None else length,
            seed=seed,
            tracer=tracer,
            metrics=metrics,
            warmup=self.warmup,
            checkpoints=checkpoints,
            checkpoint_key=checkpoint_key,
        )


@dataclasses.dataclass
class ModeResult:
    """Per-workload outcome of one configuration against the baseline."""

    workload: str
    suite: str
    mode: str
    ipc: float
    base_ipc: float
    stats: SimStats

    @property
    def speedup_percent(self) -> float:
        """Percent useful-IPC improvement over the baseline machine."""
        return percent_speedup(self.ipc, self.base_ipc)


def run_once(
    workload_name: str,
    spec: RunSpec,
    length: int | None = None,
    seed: int = 0,
    tracer=None,
    metrics=None,
    warmup: int | None = None,
    sample: int | None = None,
    checkpoints=None,
) -> SimStats:
    """Convenience wrapper: one workload through one run spec.

    ``warmup``/``sample`` override the spec's interval protocol for this
    call only; ``checkpoints`` passes a warmup-checkpoint store through
    (see :meth:`RunSpec.run`).
    """
    if warmup is not None or sample is not None:
        spec = dataclasses.replace(
            spec,
            warmup=spec.warmup if warmup is None else warmup,
            sample=spec.sample if sample is None else sample,
        )
    return spec.run(
        workload_name,
        length or default_length(),
        seed,
        tracer=tracer,
        metrics=metrics,
        checkpoints=checkpoints,
    )


def simulate_batch(
    workload_name: str,
    spec: RunSpec,
    length: int | None = None,
    seeds: tuple[int, ...] | list[int] = (0,),
    checkpoints=None,
) -> list[SimStats]:
    """Run one spec on one workload for every seed, lane-batched.

    The seed replicates are simulated together through the vectorized
    lockstep kernel (:func:`repro.core.engine.batch.run_lockstep`) when
    they qualify — same machine, single-context fast path, numpy
    importable — and sequentially through the scalar engine otherwise.
    Results are bit-identical either way and identical to ``[spec.run(w,
    n, s) for s in seeds]``.

    Observed specs (``observe=True``) always take the scalar path: probes
    are per-step side effects the batched replay does not reproduce, and
    the engine correctly refuses to batch them.  So do specs whose
    execution model is not lockstep-safe (SMT co-schedules are multi-root
    and need their per-context trace fan-out; SPMT spawns on branches,
    which the lockstep kernel cannot replay) — routing them through
    :meth:`RunSpec.run` keeps the multi-program trace construction in one
    place.
    """
    from repro.core.engine.batch import run_lockstep
    from repro.core.modes import resolve_model

    n = length or default_length()
    if (
        len(seeds) < 2
        or spec.observe
        or not resolve_model(spec.config_factory().mode).lockstep_safe
    ):
        return [
            spec.run(workload_name, n, s, checkpoints=checkpoints)
            for s in seeds
        ]
    measured = spec.sample if spec.sample is not None else n
    workload = get_workload(workload_name)
    traces = workload.trace_many(spec.warmup + measured, seeds)
    warm = None
    engines = []
    for seed, trace in zip(seeds, traces):
        config = spec.config_factory()
        if config.warm_caches and warm is None:
            from repro import _steady_state_footprint

            warm = _steady_state_footprint(workload, config)
        engine = Engine(
            trace,
            config,
            predictor=spec.predictor_factory(),
            selector=spec.selector_factory(),
            warm_addresses=warm if config.warm_caches else None,
        )
        if spec.warmup:
            key = None
            if checkpoints is not None:
                from repro.harness.checkpoint import arch_key

                key = arch_key(workload_name, seed, spec.warmup, spec)
            payload = checkpoints.get(key) if key is not None else None
            if payload is not None:
                engine.restore(payload)
            else:
                engine.fast_forward(spec.warmup)
                if key is not None:
                    checkpoints.put(key, engine.snapshot(scope="arch"))
        engines.append(engine)
    return run_lockstep(engines)


def run_simulation(
    workload_name: str,
    spec: RunSpec,
    length: int | None = None,
    seed: int = 0,
) -> SimStats:
    """Deprecated alias for :func:`run_once`.

    Kept so older scripts keep importing; new code should go through
    :class:`repro.harness.Session`.
    """
    return run_once(workload_name, spec, length=length, seed=seed)


def compare_modes(
    workload_names: tuple[str, ...],
    specs: list[RunSpec],
    length: int | None = None,
    seed: int = 0,
    baseline: RunSpec | None = None,
    jobs=None,
    cache=None,
    *,
    policy=None,
) -> dict[str, list[ModeResult]]:
    """Run every spec on every workload against a common baseline.

    All ``(workload, spec)`` simulations — including the shared baseline —
    are independent, so they are dispatched as one batch through
    :func:`~repro.harness.parallel.run_simulations`, which fans out over
    ``policy.jobs`` worker processes and serves repeats from
    ``policy.cache``.  Results are identical to a serial, uncached run
    for the same seed.

    Args:
        policy: An :class:`~repro.harness.policy.ExecutionPolicy`; unset
            fields defer to the environment (``$REPRO_JOBS`` default
            serial, ``0`` every core; ``$REPRO_CACHE_DIR`` default off).
        jobs/cache: Convenience spellings folded into ``policy`` (they
            win over it when both are given).

    Returns a mapping from spec name to its per-workload results, in the
    order of ``workload_names``.
    """
    from repro.harness.parallel import run_simulations
    from repro.harness.policy import ExecutionPolicy

    base = policy if policy is not None else ExecutionPolicy()
    base = base.merged(jobs=jobs, cache=cache)

    n = length or default_length()
    base_spec = baseline if baseline is not None else RunSpec(
        "baseline", MachineConfig.hpca05_baseline
    )
    tasks = [(name, base_spec, n, seed) for name in workload_names]
    for spec in specs:
        tasks.extend((name, spec, n, seed) for name in workload_names)
    all_stats = run_simulations(tasks, policy=base)

    base_ipc = {
        name: stats.useful_ipc
        for name, stats in zip(workload_names, all_stats[: len(workload_names)])
    }
    results: dict[str, list[ModeResult]] = {}
    offset = len(workload_names)
    for spec in specs:
        rows = []
        for j, name in enumerate(workload_names):
            stats = all_stats[offset + j]
            rows.append(
                ModeResult(
                    workload=name,
                    suite=get_workload(name).suite,
                    mode=spec.name,
                    ipc=stats.useful_ipc,
                    base_ipc=base_ipc[name],
                    stats=stats,
                )
            )
        offset += len(workload_names)
        results[spec.name] = rows
    return results
