"""The unified run facade: one keyword-only front door for simulations.

Before this module the harness had three separate entry points —
``runner.run_once`` (one spec, one workload), ``parallel.run_simulations``
(a task batch with jobs/caching) and ``bench.run_bench`` (throughput
points) — each with its own argument spelling for the same ingredients.
A :class:`Session` binds those ingredients once (machine config, predictor
and selector recipes, trace length, seed, jobs, cache, observability) and
exposes every run style as a method, so call sites never thread eight
keyword arguments through three layers.

Quickstart::

    from repro.harness import Session

    s = Session(config=MachineConfig.mtvp(8), predictor="wang-franklin",
                length=20000, cache="~/.cache/repro", observe=True)
    stats = s.run("mcf")                       # cached, with extended metrics
    all_stats = s.run_many(["mcf", "art"])     # same, fanned out
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

from repro.core import MachineConfig, SimStats
from repro.harness.bench import TABLE1_POINTS, BenchPoint, run_bench
from repro.harness.parallel import run_simulations
from repro.harness.policy import UNSET, ExecutionPolicy
from repro.harness.runner import ModeResult, RunSpec, compare_modes, default_length


class ConfigFactory:
    """A picklable factory over a concrete :class:`MachineConfig`.

    ``Session`` accepts a ready-made config instance, but every simulation
    needs its own copy (the engine treats the config as immutable, yet
    factories are the pipeline's currency: the cache serializes the
    factory's *result*, and the process pool pickles the factory).  An
    instance-holding class — unlike a lambda — survives both.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

    def __call__(self) -> MachineConfig:
        return dataclasses.replace(self.config)

    def __repr__(self) -> str:
        return f"ConfigFactory({self.config!r})"


def _as_config_factory(config) -> Callable[[], MachineConfig]:
    if config is None:
        return MachineConfig.hpca05_baseline
    if isinstance(config, MachineConfig):
        return ConfigFactory(config)
    if callable(config):
        return config
    raise TypeError(
        "config must be None, a MachineConfig, or a zero-argument factory, "
        f"not {type(config).__name__}"
    )


class Session:
    """Bound simulation ingredients plus every way to run them.

    All parameters are keyword-only; every one has a sensible default, so
    ``Session().run("mcf")`` is the shortest path to a baseline result.

    Args:
        config: ``None`` (Table 1 baseline), a :class:`MachineConfig`
            instance, or a zero-argument config factory.
        predictor: Registry name (see ``repro.vp.names()``) or factory.
        selector: Registry name (see ``repro.select.names()``) or factory.
        length: Trace length; ``None`` uses the harness default.
        seed: Dynamic-stream seed.
        policy: An :class:`~repro.harness.policy.ExecutionPolicy`
            bundling jobs/lanes/cache/checkpoints/warmup/sample — the
            preferred spelling for every execution setting below.
        observe: Attach a metrics registry to every run, filling
            ``stats.extended`` (cached under a distinct key).
        tracer: Optional :class:`repro.obs.Tracer` shared by this
            session's direct runs.  Traced runs bypass the result cache —
            a cache hit would yield stats but no events.
        name: Label used for the underlying :class:`RunSpec`.
        jobs: Deprecated — worker processes for batch methods
            (``policy.jobs``; see
            :func:`~repro.harness.policy.resolve_jobs`).
        lanes: Deprecated — seed replicates coalesced per lane-batched
            simulation in batch methods (``policy.lanes``; default 1 =
            scalar, ``"auto"`` = whole replicate groups).
        cache: Deprecated — result cache (``policy.cache``; see
            :func:`~repro.harness.policy.resolve_cache`).
        warmup: Deprecated — instructions functionally fast-forwarded
            before timing starts on every run (``policy.warmup``; 0 =
            the historical full-trace protocol).
        sample: Deprecated — measured-interval length overriding
            ``length`` when set (``policy.sample``; the warmup+sample
            protocol, see :class:`RunSpec`).
        checkpoints: Deprecated — warmup-checkpoint store
            (``policy.checkpoints``); warmed runs restore their
            architectural state from it instead of re-deriving it.
    """

    def __init__(
        self,
        *,
        config=None,
        predictor: str | Callable = "oracle",
        selector: str | Callable = "ilp-pred",
        length: int | None = None,
        seed: int = 0,
        jobs=UNSET,
        lanes=UNSET,
        cache=UNSET,
        observe: bool = False,
        tracer=None,
        warmup=UNSET,
        sample=UNSET,
        checkpoints=UNSET,
        name: str = "session",
        policy: ExecutionPolicy | None = None,
    ) -> None:
        policy = ExecutionPolicy.coalesce(
            policy, "Session",
            jobs=jobs, lanes=lanes, cache=cache, warmup=warmup,
            sample=sample, checkpoints=checkpoints,
        )
        self.policy = policy
        self.config_factory = _as_config_factory(config)
        self.predictor = predictor
        self.selector = selector
        self.length = length or default_length()
        self.seed = seed
        self.observe = observe
        self.tracer = tracer
        self.name = name

    # -- execution settings live on the policy; these views keep the
    # -- historical attribute surface intact
    @property
    def jobs(self):
        return self.policy.jobs

    @property
    def lanes(self):
        return self.policy.lanes

    @property
    def cache(self):
        return self.policy.cache

    @property
    def checkpoints(self):
        return self.policy.checkpoints

    @property
    def warmup(self) -> int:
        return self.policy.warmup if self.policy.warmup is not None else 0

    @property
    def sample(self) -> int | None:
        return self.policy.sample

    # ------------------------------------------------------------------
    def spec(self, name: str | None = None) -> RunSpec:
        """This session's recipe as a :class:`RunSpec`."""
        return RunSpec(
            name or self.name,
            self.config_factory,
            predictor_factory=self.predictor,
            selector_factory=self.selector,
            observe=self.observe,
            warmup=self.warmup,
            sample=self.sample,
        )

    def run(self, workload: str) -> SimStats:
        """One workload through this session's recipe.

        Cached and observe-aware; when a ``tracer`` is bound the run goes
        straight to the engine instead (events are not cacheable).
        """
        if self.tracer is not None:
            return self.spec().run(
                workload, self.length, self.seed, tracer=self.tracer
            )
        return self.run_many([workload])[0]

    def run_many(
        self, workloads: Iterable[str], progress=None
    ) -> list[SimStats]:
        """A batch of workloads, fanned out over ``jobs`` with caching.

        ``progress`` (optional) receives per-task completion dicts — see
        :func:`~repro.harness.parallel.run_simulations`; the campaign
        server streams these to clients as NDJSON events.
        """
        spec = self.spec()
        tasks = [(w, spec, self.length, self.seed) for w in workloads]
        return run_simulations(tasks, progress=progress, policy=self.policy)

    def run_replicates(
        self, workload: str, seeds: Iterable[int], progress=None
    ) -> list[SimStats]:
        """Seed replicates of one workload, lane-batched when enabled.

        With ``lanes`` set (or ``$REPRO_LANES``), the replicates coalesce
        into lane groups and run through the vectorized lockstep kernel;
        results are bit-identical to ``[s.run(w) for each seed]`` and
        cached per seed either way.
        """
        spec = self.spec()
        tasks = [(workload, spec, self.length, s) for s in seeds]
        return run_simulations(tasks, progress=progress, policy=self.policy)

    def compare(
        self,
        workloads: Sequence[str],
        specs: list[RunSpec],
        baseline: RunSpec | None = None,
    ) -> dict[str, list[ModeResult]]:
        """Every spec against a common baseline on every workload.

        The session supplies length/seed/jobs/cache; the specs supply the
        machines (the session's own recipe is available via
        :meth:`spec`).
        """
        return compare_modes(
            tuple(workloads),
            specs,
            length=self.length,
            seed=self.seed,
            baseline=baseline,
            policy=self.policy,
        )

    def bench(
        self,
        points: tuple[BenchPoint, ...] = TABLE1_POINTS,
        repeats: int = 3,
    ) -> dict:
        """Throughput-measure fixed points (see :mod:`repro.harness.bench`).

        Bench points pin their own workload/length/seed — a benchmark's
        identity is the point, not the session — so only the repeat count
        is taken from the caller.
        """
        return run_bench(points, repeats=repeats)

    def __repr__(self) -> str:
        return (
            f"Session(name={self.name!r}, predictor={self.predictor!r}, "
            f"selector={self.selector!r}, length={self.length}, "
            f"seed={self.seed}, observe={self.observe})"
        )
