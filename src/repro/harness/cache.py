"""Content-addressed on-disk cache for simulation results.

Reproducing the full paper drives hundreds of independent simulations, and
many of them repeat across figures — most prominently the shared no-VP
baseline that every speedup is measured against.  Each run is a pure
function of ``(workload, machine config, predictor recipe, selector
recipe, trace length, seed)`` plus the simulator sources themselves, so
its :class:`~repro.core.SimStats` can be cached on disk under a stable
content hash and reused across experiments, processes and sessions.

Key scheme (see :func:`task_key`): the SHA-256 of a canonical JSON
rendering of

* the workload name,
* every field of the instantiated :class:`~repro.core.MachineConfig`,
* the predictor and selector factories (module-qualified name plus any
  ``functools.partial`` arguments),
* the trace length and seed,
* a *code version* — a hash over all ``repro`` sources, so any change to
  the simulator automatically invalidates every cached result.

Factories that cannot be described stably (lambdas, closures, instances
with hidden state) make the run uncacheable; :func:`task_key` returns
``None`` and the harness simply recomputes.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path

from repro.core import SimStats

_CODE_VERSION: str | None = None


def code_version() -> str:
    """Hash of every ``repro`` source file (computed once per process).

    Baked into each cache key, so editing the simulator — models, harness,
    workload generators — orphans stale entries instead of serving them.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME``/``~/.cache`` + ``repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _plain(value):
    """Canonical JSON-compatible form of a config/factory argument."""
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _plain(dataclasses.asdict(value))
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return None


def describe_factory(factory) -> object | None:
    """Stable description of a predictor/selector/config factory.

    Classes, module-level functions and bound classmethods resolve to
    their qualified name; :class:`functools.partial` wrappers additionally
    record their bound arguments.  Returns ``None`` for anything without a
    stable identity (lambdas, local closures, arbitrary callables) —
    callers must then treat the run as uncacheable.
    """
    if isinstance(factory, functools.partial):
        inner = describe_factory(factory.func)
        if inner is None:
            return None
        args = [_plain(a) for a in factory.args]
        kwargs = {k: _plain(v) for k, v in sorted(factory.keywords.items())}
        if any(a is None for a in args) or any(v is None for v in kwargs.values()):
            return None
        return {"partial": inner, "args": args, "kwargs": kwargs}
    qualname = getattr(factory, "__qualname__", None)
    module = getattr(factory, "__module__", None)
    if not qualname or not module or "<locals>" in qualname or "<lambda>" in qualname:
        return None
    return f"{module}.{qualname}"


def _task_payload(workload_name: str, spec, length: int) -> dict | None:
    """The seed-independent cache-identity payload of a simulation task.

    Everything about a ``(workload, RunSpec, length)`` combination except
    the seed: the part every replicate of a lane group shares.  Returns
    ``None`` when any ingredient cannot be described stably.
    """
    predictor = describe_factory(spec.predictor_factory)
    selector = describe_factory(spec.selector_factory)
    if predictor is None or selector is None:
        return None
    try:
        config = spec.config_factory()
    except TypeError:
        return None
    payload = {
        "workload": workload_name,
        "config": _plain(dataclasses.asdict(config)),
        "predictor": predictor,
        "selector": selector,
        "length": length,
        "code": code_version(),
    }
    if getattr(spec, "observe", False):
        # observed runs carry extended metrics in their stats; keying them
        # separately keeps plain runs serving plain (smaller) entries
        payload["observe"] = True
    # interval-protocol axes enter the key only when active, so every key
    # minted before warmup/sampling existed still resolves unchanged
    warmup = getattr(spec, "warmup", 0)
    if warmup:
        payload["warmup"] = warmup
    sample = getattr(spec, "sample", None)
    if sample is not None:
        payload["sample"] = sample
    return payload


def task_key(workload_name: str, spec, length: int, seed: int) -> str | None:
    """Cache key for one ``(workload, RunSpec, length, seed)`` simulation.

    Returns ``None`` when any ingredient cannot be described stably.
    """
    payload = _task_payload(workload_name, spec, length)
    if payload is None:
        return None
    payload["seed"] = seed
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def lane_group_key(workload_name: str, spec, length: int) -> str | None:
    """Identity of a task's *lane group*: its cache key minus the seed.

    Two tasks with equal lane-group keys are seed replicates of one
    simulation recipe and may be coalesced into one batched lease through
    :func:`~repro.harness.runner.simulate_batch`.  Cached results stay
    keyed per seed via :func:`task_key`; this key only governs grouping.
    Returns ``None`` when the recipe cannot be described stably (such
    tasks never coalesce across distinct spec objects).
    """
    payload = _task_payload(workload_name, spec, length)
    if payload is None:
        return None
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Directory of ``<key>.json`` files, one cached :class:`SimStats` each.

    Counters (``hits``/``misses``/``stores``) track this instance's
    traffic; tests use them to assert that repeated experiments trigger
    zero new simulations.

    Safe to share between threads (the campaign server's workers all
    front one cache) and between processes: entries land via atomic
    rename, a vanished or truncated entry is a miss — corrupt files are
    additionally deleted so the re-simulated result can take their place
    — and the counters are updated under a lock.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._counter_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: bytes covered by the last :meth:`prune` call (evicted, or — under
        #: ``dry_run`` — merely reported as evictable)
        self.last_prune_bytes = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Whether ``key`` currently has an entry (no counter traffic)."""
        return self._path(key).exists()

    def get(self, key: str) -> SimStats | None:
        """Cached stats for ``key``, or None (corrupt entries count as misses).

        A concurrent pruner may unlink the entry between any two steps
        here — that is an ordinary miss.  An entry that *exists* but does
        not parse (truncated write from a killed process, disk
        corruption) is also a miss, and is deleted so the key re-fills
        cleanly instead of failing every future lookup.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            with self._counter_lock:
                self.misses += 1
            return None
        try:
            stats = SimStats.from_dict(json.loads(text)["stats"])
        except (ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            with self._counter_lock:
                self.misses += 1
            return None
        with self._counter_lock:
            self.hits += 1
        return stats

    def put(self, key: str, stats: SimStats) -> None:
        """Store ``stats`` under ``key`` (atomic rename, last writer wins).

        Tolerates the cache directory itself disappearing underneath us
        (an aggressive concurrent pruner): it is recreated and the write
        retried once.
        """
        payload = {"key": key, "stats": stats.to_dict()}
        for attempt in (0, 1):
            try:
                fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            except FileNotFoundError:
                if attempt:
                    raise
                self.directory.mkdir(parents=True, exist_ok=True)
                continue
            break
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._counter_lock:
            self.stores += 1

    def prune(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
        dry_run: bool = False,
    ) -> int:
        """Evict old entries; returns how many files were removed.

        Entries older than ``max_age_days`` (by mtime) go first; then, if
        the directory still exceeds ``max_bytes``, the least recently
        touched survivors are evicted until it fits (LRU by mtime —
        :meth:`get` does not bump mtimes, so recency here means recency of
        *storage*, which is the right order for campaign-style usage where
        whole sweeps age out together).  ``now`` is a test hook.

        ``dry_run=True`` deletes nothing: the return value counts the
        entries that *would* go, and :attr:`last_prune_bytes` (set by
        every call) totals their sizes.
        """
        self.last_prune_bytes = 0
        if max_bytes is None and max_age_days is None:
            return 0
        if now is None:
            now = time.time()
        entries = []
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first
        removed = 0

        def evict(path: Path, size: int) -> bool:
            nonlocal removed
            if not dry_run:
                try:
                    path.unlink()
                except FileNotFoundError:
                    # a concurrent pruner (or clear()) beat us to it; the
                    # bytes are gone either way, so count the eviction
                    pass
                except OSError:
                    return False
            removed += 1
            self.last_prune_bytes += size
            return True

        if max_age_days is not None:
            cutoff = now - max_age_days * 86400.0
            keep = []
            for mtime, size, path in entries:
                if mtime < cutoff:
                    evict(path, size)
                else:
                    keep.append((mtime, size, path))
            entries = keep
        if max_bytes is not None:
            total = sum(size for _, size, _ in entries)
            for mtime, size, path in entries:  # oldest first
                if total <= max_bytes:
                    break
                if evict(path, size):
                    total -= size
        return removed

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
