"""E9 — Section 5.4 (in text): DFCM-3 versus the Wang-Franklin hybrid.

"Our results with this predictor were not as good as our Wang-Franklin
predictor ... it is in general a more aggressive predictor — making more
correct predictions and more incorrect predictions."
"""

from repro.harness import sec54_dfcm_vs_wf

from benchmarks.conftest import BENCH_LENGTH, emit


def test_sec54_dfcm_vs_wf(benchmark):
    result = benchmark.pedantic(
        lambda: sec54_dfcm_vs_wf(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    # The mechanism the paper reports, which the model reproduces exactly:
    # DFCM is the more aggressive predictor — more predictions made, more
    # of them wrong.  (Documented deviation: in the paper that aggression
    # nets out *behind* the W-F hybrid; in this model misprediction
    # recovery is cheap relative to the 1000-cycle loads being hidden, so
    # the extra coverage nets out ahead — see EXPERIMENTS.md.)
    dfcm_preds = sum(r["dfcm preds"] for r in result.rows)
    wf_preds = sum(r["wf preds"] for r in result.rows)
    assert dfcm_preds > wf_preds
    # both predictors must still deliver positive MTVP gains on average
    s = result.summary
    assert s["mtvp8 wf geomean INT %"] > 0.0
    assert s["mtvp8 dfcm geomean INT %"] > 0.0
