"""E2 — Figure 2: sensitivity to the thread-spawn latency.

Speedups at 1-, 8- and 16-cycle register-map copy latencies.  The paper
finds the technique "only somewhat sensitive": still strong at 8 cycles,
and FP retains most of its advantage even at 16.
"""

from repro.harness import fig2_spawn_latency

from benchmarks.conftest import BENCH_LENGTH, emit


def test_fig2_spawn_latency(benchmark):
    result = benchmark.pedantic(
        lambda: fig2_spawn_latency(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    rows = {(r["spawn latency"], r["suite"]): r for r in result.rows}
    # gains must remain positive at an 8-cycle spawn latency
    assert rows[("8 cyc", "int")]["mtvp8"] > 0.0
    assert rows[("8 cyc", "fp")]["mtvp8"] > 0.0
    # the 1-cycle machine is at least as fast as the 16-cycle machine
    assert rows[("1 cyc", "fp")]["mtvp8"] >= rows[("16 cyc", "fp")]["mtvp8"] - 5.0
    # FP keeps a clear MTVP advantage over STVP even at 16 cycles
    assert rows[("16 cyc", "fp")]["mtvp8"] > rows[("16 cyc", "fp")]["stvp"]
    # STVP does not depend on spawn latency (sanity of the sweep itself)
    assert abs(rows[("1 cyc", "int")]["stvp"] - rows[("16 cyc", "int")]["stvp"]) < 3.0
