"""E7 — Section 5.6: multiple-value multithreaded value prediction.

"With a more liberal predictor but a more discriminating criticality
measure ... swim and parser show speedups of 70% and 40% respectively,
outperforming their single value multithreaded value prediction speedups
of less than 1% and 14%."
"""

from repro.harness import sec56_multivalue

from benchmarks.conftest import BENCH_LENGTH, emit


def test_sec56_multivalue(benchmark):
    result = benchmark.pedantic(
        lambda: sec56_multivalue(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    rows = {r["workload"]: r for r in result.rows}
    for name in ("swim", "parser"):
        # multi-value with the liberal predictor beats single-value W-F
        assert rows[name]["multi-value %"] > rows[name]["single-value %"]
        assert rows[name]["multi spawns"] > 0
    # swim's single-value result is small (the paper reports <1%)
    assert rows["swim"]["single-value %"] < 25.0
