"""E4 — Section 5.3: store buffer sizing.

"Performance begins to tail off at 64 and below entries.  However, a
128-entry buffer gets nearly the performance of the largest buffer we
simulate."
"""

from repro.harness import sec53_store_buffer

from benchmarks.conftest import BENCH_LENGTH, emit


def test_sec53_store_buffer(benchmark):
    result = benchmark.pedantic(
        lambda: sec53_store_buffer(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    rows = {r["store buffer"]: r for r in result.rows}
    for suite_col in ("geomean int %", "geomean fp %"):
        full = rows["unlimited"][suite_col]
        # 128 entries achieve nearly the unlimited-buffer performance
        assert rows["128"][suite_col] > full - 6.0
        # 16 entries measurably tail off
        assert rows["16"][suite_col] <= rows["128"][suite_col] + 1.0
    # small buffers actually stall speculation
    assert rows["16"]["sb stalls"] > rows["256"]["sb stalls"]
