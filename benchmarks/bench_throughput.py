#!/usr/bin/env python
"""Measure engine throughput and refresh ``BENCH_engine.json``.

Runs the fixed Table 1 bench points from :mod:`repro.harness.bench`,
prints a comparison table (vs the recorded pre-optimization engine and
vs the committed previous run), and rewrites the JSON record at the
repository root.  Non-gating by default: the script exits 0 on a
completed run — regressions are surfaced as numbers for a human to
judge, since wall-clock on shared CI machines is too noisy for a hard
threshold.  ``--assert-within PCT`` opts into gating: exit 1 if any
point's throughput fell more than PCT percent below the committed
record (the observability PR uses this to hold the disabled-tracer
overhead to the noise floor).

``--trace-out FILE`` additionally runs one fully observed (tracer +
metrics) simulation of the MTVP point and exports a Chrome trace — CI
uploads it as an artifact, and its stats digest is cross-checked against
the untraced run's to prove instrumentation stayed read-only.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick --no-write
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --no-write --assert-within 10 --trace-out trace.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.bench import (  # noqa: E402  (path bootstrap above)
    LANE_POINT,
    LANE_POINT_LANES,
    TABLE1_POINTS,
    check_regression,
    format_bench,
    load_bench,
    run_bench,
    run_lane_point,
    trace_point,
    write_bench,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="where to write the JSON record (default: BENCH_engine.json "
             "at the repository root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per point; the best rate is kept (default: 3)",
    )
    parser.add_argument(
        "--length", type=int, default=None,
        help="override the trace length of every point (loses the "
             "pre-optimization comparison, which is length-specific)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: shorthand for --repeats 1 --length 3000",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="print the table but leave the JSON record untouched",
    )
    parser.add_argument(
        "--assert-within", type=float, default=None, metavar="PCT",
        help="exit 1 if any point's throughput is more than PCT%% below "
             "the committed record (same-length points only)",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None, metavar="FILE",
        help="also run one observed MTVP simulation and export a Chrome "
             "trace to FILE, cross-checking its stats digest",
    )
    parser.add_argument(
        "--lanes", type=int, default=None, metavar="N",
        help="also measure the lane-batched point with N seed replicates "
             f"(the committed record uses {LANE_POINT_LANES}); reports "
             "aggregate and per-lane KIPS plus the batched-vs-scalar "
             "speedup and digest identity",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.repeats = 1
        args.length = args.length or 3000

    previous = load_bench(args.output)
    results = run_bench(repeats=args.repeats, length=args.length)
    if args.lanes:
        lane_rec = run_lane_point(
            LANE_POINT, lanes=args.lanes, repeats=args.repeats,
            length=args.length,
        )
        results["points"].append(lane_rec)
        print(
            f"lane point {lane_rec['name']}: {lane_rec['kips']:.0f} kips "
            f"aggregate ({lane_rec['kips_per_lane']:.1f}/lane), "
            f"{lane_rec['speedup_vs_scalar']:.2f}x vs scalar, digests "
            f"{'match' if lane_rec['digests_match'] else 'DIVERGED'}"
        )
    print(format_bench(results, previous))

    exit_code = 0
    if args.assert_within is not None:
        exit_code = check_regression(results, previous, args.assert_within)

    if args.trace_out is not None:
        mtvp_point = TABLE1_POINTS[-1]
        traced = trace_point(mtvp_point, args.trace_out, length=args.length)
        summary = traced["trace"]
        print(
            f"traced {mtvp_point.name}: {summary['retained']} events across "
            f"{summary['threads']} context lanes -> {args.trace_out}"
        )
        untraced = next(
            p for p in results["points"] if p["name"] == mtvp_point.name
        )
        if traced["stats_digest"] != untraced["stats_digest"]:
            print("FAIL: traced run's stats digest differs from untraced run")
            exit_code = 1
        else:
            print("traced stats digest matches untraced run (read-only probe)")

    if not args.no_write:
        write_bench(results, args.output)
        print(f"wrote {args.output}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
