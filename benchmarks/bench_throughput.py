#!/usr/bin/env python
"""Measure engine throughput and refresh ``BENCH_engine.json``.

Runs the fixed Table 1 bench points from :mod:`repro.harness.bench`,
prints a comparison table (vs the recorded pre-optimization engine and
vs the committed previous run), and rewrites the JSON record at the
repository root.  Non-gating: this script always exits 0 on a completed
run — regressions are surfaced as numbers for a human to judge, since
wall-clock on shared CI machines is too noisy for a hard threshold.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick --no-write
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.bench import (  # noqa: E402  (path bootstrap above)
    format_bench,
    load_bench,
    run_bench,
    write_bench,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="where to write the JSON record (default: BENCH_engine.json "
             "at the repository root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per point; the best rate is kept (default: 3)",
    )
    parser.add_argument(
        "--length", type=int, default=None,
        help="override the trace length of every point (loses the "
             "pre-optimization comparison, which is length-specific)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: shorthand for --repeats 1 --length 3000",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="print the table but leave the JSON record untouched",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.repeats = 1
        args.length = args.length or 3000

    previous = load_bench(args.output)
    results = run_bench(repeats=args.repeats, length=args.length)
    print(format_bench(results, previous))
    if args.no_write:
        return 0
    write_bench(results, args.output)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
