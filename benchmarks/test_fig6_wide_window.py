"""E8 — Figure 6: wide-window / checkpoint comparison.

An idealized 8192-entry-window machine (unlimited registers) against the
best realistic MTVP and against spawn-only threads.  Paper shapes: the
wide window wins on nearly all of SPECfp; MTVP wins on integer codes where
parallelism must be *created* (vpr, mcf); spawn-only is "quite ineffective
alone".
"""

from repro.harness import fig6_wide_window

from benchmarks.conftest import BENCH_LENGTH, emit


def test_fig6_wide_window(benchmark):
    result = benchmark.pedantic(
        lambda: fig6_wide_window(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    rows = {r["suite"]: r for r in result.rows}
    # FP: the idealized wide window dominates MTVP
    assert rows["AVG FP"]["wide window"] > rows["AVG FP"]["best mtvp"]
    # INT: MTVP holds its own against the idealized machine
    assert rows["AVG INT"]["best mtvp"] >= rows["AVG INT"]["wide window"] - 5.0
    # spawn-only (decoupling without value prediction) is ineffective
    assert rows["AVG INT"]["spawn only"] < rows["AVG INT"]["best mtvp"]
    assert rows["AVG FP"]["spawn only"] < rows["AVG FP"]["best mtvp"]
    assert rows["AVG INT"]["spawn only"] < 15.0
