"""Ablation — Section 4 (in text): MTVP with and without the prefetcher.

"Without a stride prefetcher the effect of multithreaded value prediction
is greater and more consistent ... the mechanisms appear to be highly
complementary."
"""

from repro.harness import sec4_prefetcher_ablation

from benchmarks.conftest import BENCH_LENGTH, emit


def test_sec4_prefetcher_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: sec4_prefetcher_ablation(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    rows = {(r["prefetcher"], r["suite"]): r for r in result.rows}
    # integer codes: clearly greater without the prefetcher
    assert (
        rows[("off", "int")]["mtvp8 geomean %"]
        > rows[("on", "int")]["mtvp8 geomean %"]
    )
    # and still very significant with it (complementary mechanisms)
    for suite in ("int", "fp"):
        assert rows[("on", suite)]["mtvp8 geomean %"] > 10.0
        assert rows[("off", suite)]["mtvp8 geomean %"] > 10.0
