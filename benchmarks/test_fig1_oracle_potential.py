"""E1 — Figure 1: potential of multithreaded value prediction.

Oracle value predictor, ILP-pred load selection, idealized conditions
(1-cycle spawn, unbounded store buffer).  The shapes that must hold, per
the paper: STVP averages are modest (~24% INT, ~5% FP); MTVP grows with
thread count and far exceeds STVP; FP benefits more from MTVP than from
STVP by a wide margin; cache-resident benchmarks see roughly nothing.
"""

from repro.harness import fig1_oracle_potential

from benchmarks.conftest import BENCH_LENGTH, emit


def test_fig1_oracle_potential(benchmark):
    result = benchmark.pedantic(
        lambda: fig1_oracle_potential(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    s = result.summary
    # STVP is modest; the paper reports +24% INT / +5% FP
    assert s["stvp geomean INT %"] < 45.0
    assert s["stvp geomean FP %"] < 20.0
    # MTVP-8 exceeds STVP on both suites (the headline claim)
    assert s["mtvp8 geomean INT %"] > s["stvp geomean INT %"]
    assert s["mtvp8 geomean FP %"] > s["stvp geomean FP %"]
    # FP gains from MTVP dwarf FP gains from STVP (Section 1)
    assert s["mtvp8 geomean FP %"] > 3 * max(1.0, s["stvp geomean FP %"])
    # more threads help on average (Figure 1: "more threads is
    # consistently better than fewer")
    assert s["mtvp8 geomean INT %"] >= s["mtvp2 geomean INT %"]
    assert s["mtvp8 geomean FP %"] >= s["mtvp2 geomean FP %"]
    # resident benchmarks are flat
    rows = {r["workload"]: r for r in result.rows}
    for quiet in ("crafty", "eon r", "mesa", "sixtrack"):
        assert abs(rows[quiet]["mtvp8"]) < 20.0
    # mcf is a headline winner
    assert rows["mcf"]["mtvp8"] > 100.0
