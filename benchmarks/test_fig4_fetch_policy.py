"""E5 — Figure 4: fetch policies.

Letting the spawning thread keep fetching ("no stall", ICOUNT-arbitrated)
is consistently worse than single fetch path: "competition for fetch and
execution resources swamps any gains made by maximizing forward progress
in the case of incorrect predictions."
"""

from repro.harness import fig4_fetch_policy

from benchmarks.conftest import BENCH_LENGTH, emit


def test_fig4_fetch_policy(benchmark):
    result = benchmark.pedantic(
        lambda: fig4_fetch_policy(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    s = result.summary
    # single fetch path beats no-stall on both suite averages
    assert s["mtvp sfp geomean INT %"] >= s["mtvp no stall geomean INT %"]
    assert s["mtvp sfp geomean FP %"] >= s["mtvp no stall geomean FP %"]
    # and on a clear majority of individual benchmarks
    worse = sum(1 for r in result.rows if r["mtvp sfp"] >= r["mtvp no stall"] - 1.0)
    assert worse >= int(0.7 * len(result.rows))
