"""Shared configuration for the reproduction benchmarks.

Each benchmark module regenerates one table or figure from the paper
(DESIGN.md §4 maps them).  ``REPRO_TRACE_LEN`` scales the dynamic trace
length per simulation; the default keeps the full suite in the
tens-of-minutes range on a laptop while preserving every figure shape.
Raise it (e.g. 30000) for smoother numbers.
"""

import os

#: instructions per simulation in the benchmark suite
BENCH_LENGTH = int(os.environ.get("REPRO_TRACE_LEN", "8000"))


def emit(result):
    """Print an experiment's table so it lands in the benchmark log."""
    print()
    print(result.format_table())
    return result
