"""Shared configuration for the reproduction benchmarks.

Each benchmark module regenerates one table or figure from the paper
(DESIGN.md §4 maps them).  ``REPRO_TRACE_LEN`` scales the dynamic trace
length per simulation; the default keeps the full suite in the
tens-of-minutes range on a laptop while preserving every figure shape.
Raise it (e.g. 30000) for smoother numbers.

The experiment harness underneath honours two more environment knobs
(resolved in :mod:`repro.harness.parallel`, no per-test plumbing needed):

* ``REPRO_JOBS`` — fan simulations out over N worker processes
  (``0`` = all cores; unset = serial, so benchmark timings stay
  comparable by default);
* ``REPRO_CACHE_DIR`` — serve repeated simulations from an on-disk
  result cache.  Leave unset when timing: a warm cache turns the run
  into a measurement of JSON parsing.  Cache keys include the trace
  length, so changing ``REPRO_TRACE_LEN`` never serves stale numbers.
"""

import os

#: instructions per simulation in the benchmark suite
BENCH_LENGTH = int(os.environ.get("REPRO_TRACE_LEN", "8000"))

#: worker processes the harness fans out over for these benchmarks
#: (informational — the harness resolves REPRO_JOBS itself when jobs=None)
BENCH_JOBS = int(os.environ.get("REPRO_JOBS", "1") or 1)


def emit(result):
    """Print an experiment's table so it lands in the benchmark log."""
    print()
    print(result.format_table())
    return result
