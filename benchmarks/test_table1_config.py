"""E0 — Table 1: the simulated machine configuration.

Table 1 is the paper's parameter table rather than a measurement; this
benchmark asserts the encoded configuration matches it field by field and
times a baseline simulation of the machine as the suite's reference run.
"""

from repro import MachineConfig, simulate
from repro.select import IlpPredSelector

from benchmarks.conftest import BENCH_LENGTH


def test_table1_parameters_match_paper(benchmark):
    def build():
        return MachineConfig.hpca05_baseline()

    cfg = benchmark.pedantic(build, rounds=1, iterations=1)
    assert cfg.pipeline_depth == 30
    assert cfg.fetch_width == 16
    assert cfg.rob_size == 256
    assert cfg.rename_regs == 224
    assert cfg.iq_size == 64
    assert cfg.issue_width == 8
    assert (cfg.int_issue, cfg.fp_issue, cfg.mem_issue) == (6, 2, 4)
    assert (cfg.l1_size, cfg.l1_assoc, cfg.l1_latency) == (64 << 10, 2, 2)
    assert (cfg.l2_size, cfg.l2_assoc, cfg.l2_latency) == (512 << 10, 8, 20)
    assert (cfg.l3_size, cfg.l3_assoc, cfg.l3_latency) == (4 << 20, 16, 50)
    assert cfg.mem_latency == 1000
    assert cfg.prefetch_entries == 256
    assert cfg.prefetch_streams == 8


def test_baseline_reference_run(benchmark):
    def run():
        return simulate(
            "mcf",
            MachineConfig.hpca05_baseline(),
            selector=IlpPredSelector(),
            length=BENCH_LENGTH,
        )

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.useful_instructions == BENCH_LENGTH
    assert 0.0 < stats.useful_ipc < 8.0
