"""E3 — Figure 3: realistic hybrid Wang-Franklin value predictor.

8-cycle spawn latency, 128-entry store buffer.  The paper reports
"substantial average speedups of about 40% on SPECfp and SPECint with
eight threads", with some benchmarks negative due to mispredictions.
"""

from repro.harness import fig3_realistic_wf

from benchmarks.conftest import BENCH_LENGTH, emit


def test_fig3_realistic_wf(benchmark):
    result = benchmark.pedantic(
        lambda: fig3_realistic_wf(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    s = result.summary
    # around +40% on both suites at eight threads (paper's headline)
    assert 15.0 < s["mtvp8 geomean INT %"] < 80.0
    assert 15.0 < s["mtvp8 geomean FP %"] < 80.0
    # still far better than realistic STVP
    assert s["mtvp8 geomean INT %"] > s["stvp geomean INT %"]
    assert s["mtvp8 geomean FP %"] > s["stvp geomean FP %"] + 10.0
    # realistic FP STVP is tiny — the classic "VP doesn't help FP" result
    assert s["stvp geomean FP %"] < 10.0
    rows = {r["workload"]: r for r in result.rows}
    # the paper's standouts stay standouts with a real predictor
    assert rows["mcf"]["mtvp8"] > 60.0
    assert rows["vpr r"]["mtvp8"] > 40.0
