"""E10 — Section 5.1: load selector comparison.

"The implementable load selector, ILP-pred, consistently outperforms the
unimplementable perfect load miss oracle" (on average), and naive
always-predict is worse than either.
"""

from repro.harness import sec51_selectors

from benchmarks.conftest import BENCH_LENGTH, emit


def test_sec51_selectors(benchmark):
    result = benchmark.pedantic(
        lambda: sec51_selectors(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    rows = {r["suite"]: r for r in result.rows}
    for suite in ("AVG INT", "AVG FP"):
        ilp = rows[suite]["mtvp8 ilp-pred"]
        oracle = rows[suite]["mtvp8 miss-oracle"]
        always = rows[suite]["mtvp8 always"]
        # ILP-pred is competitive with the miss oracle.  (Documented
        # deviation: the paper finds ILP-pred slightly *ahead* after 100M
        # instructions of training; at this trace scale its learning
        # transient leaves it somewhat behind — see EXPERIMENTS.md.)
        assert ilp > oracle - 30.0
        assert ilp > 0.0
        # adaptive selection beats indiscriminate prediction decisively
        assert ilp > always + 10.0
