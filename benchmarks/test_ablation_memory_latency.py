"""Ablation — motivation: MTVP's value grows with memory latency.

Not a paper artifact per se, but the quantitative backbone of its
introduction: as memory latency heads toward (and past) 1000 cycles,
single-threaded value prediction saturates at the window bound while
threaded value prediction keeps scaling.
"""

from repro.harness import ablation_memory_latency

from benchmarks.conftest import BENCH_LENGTH, emit


def test_ablation_memory_latency(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_memory_latency(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    rows = {r["memory latency"]: r for r in result.rows}
    # MTVP's advantage widens as memory slows
    assert rows["2000 cyc"]["mtvp8"] > rows["250 cyc"]["mtvp8"]
    # and it beats STVP at every latency point past the small ones
    for lat in ("500 cyc", "1000 cyc", "2000 cyc"):
        assert rows[lat]["mtvp8"] > rows[lat]["stvp"]
