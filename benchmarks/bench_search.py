#!/usr/bin/env python
"""Fidelity-and-cost benchmark for ``repro.search``; refreshes
``BENCH_search.json``.

Runs the batch-generate → judge → compare harness
(:func:`~repro.search.fidelity.fidelity_check`) on a checked-in search
spec: the successive-halving search runs to completion, the exhaustive
reference sweep runs the full grid at the final rung's fidelity into the
same store, and both winners are judged with the same objective,
confidence level and tie-break order.  The record captures the numbers
the subsystem exists for:

* **winner_match** — did adaptive search answer the design question the
  way the exhaustive grid would?
* **cost.fraction** — scheduled search work (warmup + measured
  instructions over every (point, seed) row) as a fraction of the
  exhaustive campaign's;
* **funnel** — points surviving each rung, CI-overlap tie-breaks, and
  bandit extra-seed rounds;
* wall-clock for both campaigns (informational; shared-CI noise).

``--check`` turns the record into a gate: exit non-zero unless the
winner matched and the cost fraction stayed under the budget.  Usage::

    PYTHONPATH=src python benchmarks/bench_search.py
    PYTHONPATH=src python benchmarks/bench_search.py --quick --no-write
    PYTHONPATH=src python benchmarks/bench_search.py --check --max-fraction 0.6
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.policy import ExecutionPolicy  # noqa: E402
from repro.search import (  # noqa: E402
    exhaustive_reference,
    load_search_spec,
    run_search,
)
from repro.sweep import ResultStore  # noqa: E402

DEFAULT_SPEC = REPO_ROOT / "sweeps" / "search_smoke.toml"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_search.json"


def run_bench(spec_path: Path, db: Path | None, quick: bool) -> dict:
    from repro.search.fidelity import fidelity_check

    spec = load_search_spec(spec_path)
    state = db if db is not None else (
        Path(tempfile.mkdtemp(prefix="bench-search-")) / "search.db"
    )
    policy = ExecutionPolicy(cache=False)
    # NOTE: quick mode does NOT truncate the grid — successive halving's
    # statistics (and thus the funnel and the cost fraction) depend on
    # the full point population, and the checked-in smoke grid is small
    # enough already.  The flag exists for CLI parity with the other
    # benchmarks; both modes run the spec as-is.
    max_points = None

    store = ResultStore(state)
    with store:
        t0 = time.perf_counter()
        verdict = fidelity_check(
            spec, store, policy=policy, max_points=max_points,
        )
        wall = time.perf_counter() - t0

        # re-run the (fully stored) search alone to split the wall time:
        # everything is committed, so this is pure controller replay
        t1 = time.perf_counter()
        run_search(spec, store, policy=policy, max_points=max_points,
                   execute=False)
        replay_wall = time.perf_counter() - t1

    summary = verdict["search"]
    return {
        "benchmark": "search-fidelity",
        "quick": quick,
        "spec": str(spec_path.relative_to(REPO_ROOT))
        if spec_path.is_relative_to(REPO_ROOT) else str(spec_path),
        "search": summary["name"],
        "objective": summary["objective"],
        "grid_points": summary["grid_points"],
        "winner_match": verdict["winner_match"],
        "search_winner": verdict["search_winner"],
        "grid_winner": verdict["grid_winner"],
        "cost": verdict["cost"],
        "funnel": [
            {
                "rung": r["index"],
                "points_in": r["points_in"],
                "promoted": len((r["decision"] or {}).get("survivors", []))
                + len((r["decision"] or {}).get("ambiguous", [])),
                "eliminated": len(
                    (r["decision"] or {}).get("eliminated", [])
                ),
                "extra_rounds": r["extra_rounds"],
                "rows": r["rows_total"],
                "units": r["units"],
            }
            for r in summary["rungs"]
        ],
        "rows": {
            "search": summary["total"],
            "exhaustive": verdict["exhaustive"]["total"],
            "failed": summary["failed"] + verdict["exhaustive"]["failed"],
        },
        "wall_seconds": round(wall, 3),
        "replay_seconds": round(replay_wall, 3),
        "db": str(state),
    }


def format_bench(record: dict) -> str:
    cost = record["cost"]
    lines = [
        f"search fidelity bench ({'quick' if record['quick'] else 'full'}): "
        f"{record['search']} over {record['grid_points']} points",
        f"  winner match   {record['winner_match']}"
        + (
            f" ({record['search_winner']['point_id']})"
            if record["search_winner"]
            else ""
        ),
        f"  cost           {cost['search_units']} / {cost['exhaustive_units']}"
        f" units = {100 * cost['fraction']:.1f}% of exhaustive",
        "  funnel         "
        + " -> ".join(
            f"{f['points_in']}" for f in record["funnel"]
        )
        + (
            f" -> {record['funnel'][-1]['promoted']}"
            if record["funnel"]
            else ""
        ),
        f"  rows           search {record['rows']['search']}, "
        f"exhaustive {record['rows']['exhaustive']}, "
        f"failed {record['rows']['failed']}",
        f"  wall           {record['wall_seconds']} s "
        f"(replay {record['replay_seconds']} s)",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", type=Path, default=DEFAULT_SPEC,
                        help="search spec to benchmark")
    parser.add_argument("--db", type=Path, default=None,
                        help="result store path (default: fresh temp dir)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode (the smoke grid is already "
                             "small; kept for CLI parity)")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without rewriting the record")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the winner matched and "
                             "the cost fraction stayed under --max-fraction")
    parser.add_argument("--max-fraction", type=float, default=0.6,
                        help="cost-fraction budget for --check")
    args = parser.parse_args(argv)

    record = run_bench(args.spec, args.db, quick=args.quick)
    print(format_bench(record))
    if not args.no_write:
        args.output.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if args.check:
        if not record["winner_match"]:
            print("CHECK FAILED: search winner != exhaustive winner")
            return 1
        if record["cost"]["fraction"] >= args.max_fraction:
            print(
                f"CHECK FAILED: cost fraction "
                f"{record['cost']['fraction']:.3f} >= {args.max_fraction}"
            )
            return 1
        print(
            f"check passed: winner matched at "
            f"{100 * record['cost']['fraction']:.1f}% of exhaustive cost"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
