#!/usr/bin/env python
"""Load-test the campaign server and refresh ``BENCH_service.json``.

Boots an in-process :class:`~repro.serve.app.CampaignServer` (ephemeral
port, private state directory), then measures the two numbers the
service exists for:

* **control-plane throughput** — requests/sec for the cheap read
  endpoints (``/healthz``, ``/stats``, ``/jobs``) and for dedup-hitting
  resubmissions of an already-finished job, each hammered from several
  concurrent client threads;
* **cache-hit latency** — wall time for a run submission whose
  ``(point, seed)`` simulation already sits in the shared
  :class:`~repro.harness.cache.ResultCache`, measured submit→done
  end-to-end through the HTTP surface and the job queue.

Also records the exactly-once economics of a small concurrent campaign:
``clients`` threads all submit the same sweep; the record proves one
simulation per ``(point, seed)`` by counting cache stores and simulated
tasks server-side.

Non-gating by default (shared-CI wall clock is noisy); the e2e test
suite holds the *correctness* properties.  Usage::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --quick --no-write
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import (  # noqa: E402  (path bootstrap above)
    BackgroundServer,
    CampaignClient,
    CampaignServer,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_service.json"


def hammer(base_url: str, path_for, seconds: float, threads: int) -> dict:
    """``threads`` clients hit ``path_for(client, i)`` for ``seconds``.

    Returns requests/sec plus latency percentiles over all requests.
    """
    latencies: list[float] = []
    count = 0
    lock = threading.Lock()
    deadline = time.perf_counter() + seconds

    def worker() -> None:
        nonlocal count
        client = CampaignClient(base_url, timeout=30.0)
        local: list[float] = []
        n = 0
        i = 0
        while time.perf_counter() < deadline:
            t0 = time.perf_counter()
            path_for(client, i)
            local.append(time.perf_counter() - t0)
            n += 1
            i += 1
        with lock:
            latencies.extend(local)
            count += n

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    latencies.sort()
    return {
        "requests": count,
        "seconds": round(seconds, 3),
        "rps": round(count / seconds, 1),
        "threads": threads,
        "latency_ms": {
            "p50": round(1e3 * statistics.median(latencies), 3),
            "p95": round(1e3 * latencies[int(0.95 * (len(latencies) - 1))], 3),
            "max": round(1e3 * latencies[-1], 3),
        } if latencies else None,
    }


def cache_hit_latency(
    warm_client: CampaignClient, state: str, payload: dict, samples: int
) -> dict:
    """Submit→done wall time for already-cached runs, through a fresh server.

    The warming pass simulates ``samples`` seeds through one server; the
    timing pass submits the *same* payloads to a **second** server
    sharing the same :class:`~repro.harness.cache.ResultCache` directory.
    The second server has no jobs, so every submission is a genuinely
    new job that rides the full queue → worker → cache path — measuring
    the real end-to-end latency a new client pays for work the service
    has already done (job-digest dedup, the faster path, is measured
    separately).
    """
    for i in range(samples):
        ack = warm_client.submit_run(dict(payload, seed=i))
        warm_client.wait(ack["job"], timeout=300.0)
    times: list[float] = []
    fresh = CampaignServer(
        state_dir=Path(state) / "hit-timing", cache=Path(state) / "cache",
        workers=2,
    )
    with BackgroundServer(fresh) as bg:
        client = CampaignClient(bg.url, timeout=300.0)
        for i in range(samples):
            t0 = time.perf_counter()
            ack = client.submit_run(dict(payload, seed=i))
            snapshot = client.wait(ack["job"], timeout=300.0, poll=0.01)
            times.append(time.perf_counter() - t0)
            assert snapshot["status"] == "done", snapshot
            assert snapshot["result"]["cached"], "expected a cache hit"
        timing_cache = client.stats()["cache"]
    times.sort()
    return {
        "samples": samples,
        "p50_ms": round(1e3 * statistics.median(times), 3),
        "max_ms": round(1e3 * times[-1], 3),
        "hits": timing_cache["hits"],
        "misses": timing_cache["misses"],
    }


def concurrent_sweep(base_url: str, spec: dict, clients: int) -> dict:
    """``clients`` threads submit the same sweep; returns dedup evidence."""
    acks: list[dict] = []
    lock = threading.Lock()

    def submit() -> None:
        client = CampaignClient(base_url, timeout=600.0)
        ack = client.submit_sweep({"spec": spec})
        with lock:
            acks.append(ack)

    pool = [threading.Thread(target=submit) for _ in range(clients)]
    t0 = time.perf_counter()
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    client = CampaignClient(base_url, timeout=600.0)
    job_ids = {ack["job"] for ack in acks}
    assert len(job_ids) == 1, f"expected one coalesced job, got {job_ids}"
    job_id = job_ids.pop()
    snapshot = client.wait(job_id, timeout=600.0)
    wall = time.perf_counter() - t0
    reports = {client.report(job_id) for _ in range(clients)}
    return {
        "clients": clients,
        "job": job_id,
        "status": snapshot["status"],
        "coalesced_jobs": 1,
        "identical_reports": len(reports) == 1,
        "wall_seconds": round(wall, 3),
        "partial": snapshot.get("partial"),
    }


def run_bench(quick: bool) -> dict:
    length = 1500 if quick else 4000
    seconds = 1.0 if quick else 3.0
    threads = 4
    samples = 3 if quick else 8
    state = tempfile.mkdtemp(prefix="bench-service-")
    server = CampaignServer(state_dir=state, workers=2)
    with BackgroundServer(server) as bg:
        client = CampaignClient(bg.url, timeout=600.0)

        reads = hammer(
            bg.url, lambda c, i: c.health(), seconds=seconds, threads=threads
        )
        stats_reads = hammer(
            bg.url, lambda c, i: c.stats(), seconds=seconds, threads=threads
        )

        run_payload = {"workload": "mcf", "length": length}
        hit = cache_hit_latency(client, state, run_payload, samples=samples)

        # dedup-path throughput: resubmitting a finished job's payload is
        # answered from the digest map without touching the queue
        ack = client.submit_run(dict(run_payload, seed=0))
        client.wait(ack["job"], timeout=300.0)
        dedup = hammer(
            bg.url,
            lambda c, i: c.submit_run(dict(run_payload, seed=0)),
            seconds=seconds,
            threads=threads,
        )

        spec = {
            "name": "bench-service",
            "axes": {"threads": [2, 4]},
            "base": {"machine": "mtvp"},
            "workloads": ["mcf"],
            "seeds": [0],
            "lengths": [length],
        }
        sweep = concurrent_sweep(bg.url, spec, clients=3)

        server_stats = client.stats()

    return {
        "benchmark": "campaign-service",
        "quick": quick,
        "config": {
            "length": length,
            "workers": 2,
            "hammer_threads": threads,
            "hammer_seconds": seconds,
        },
        "reads_rps": reads,
        "stats_rps": stats_reads,
        "dedup_submit_rps": dedup,
        "cache_hit_latency": hit,
        "concurrent_sweep": sweep,
        "server": {
            "requests": server_stats["requests"],
            "jobs": server_stats["jobs"],
            "cache": server_stats["cache"],
        },
    }


def format_bench(record: dict) -> str:
    lines = [
        f"campaign service bench ({'quick' if record['quick'] else 'full'}):",
        f"  /healthz            {record['reads_rps']['rps']:>9} req/s "
        f"(p50 {record['reads_rps']['latency_ms']['p50']} ms)",
        f"  /stats              {record['stats_rps']['rps']:>9} req/s "
        f"(p50 {record['stats_rps']['latency_ms']['p50']} ms)",
        f"  dedup resubmit      {record['dedup_submit_rps']['rps']:>9} req/s "
        f"(p50 {record['dedup_submit_rps']['latency_ms']['p50']} ms)",
        f"  cache-hit run       p50 {record['cache_hit_latency']['p50_ms']} ms "
        f"submit->done ({record['cache_hit_latency']['samples']} samples)",
        f"  3-client sweep      {record['concurrent_sweep']['status']} in "
        f"{record['concurrent_sweep']['wall_seconds']} s, "
        f"coalesced={record['concurrent_sweep']['coalesced_jobs']}, "
        f"identical_reports={record['concurrent_sweep']['identical_reports']}",
        f"  cache               {record['server']['cache']['stores']} stores, "
        f"{record['server']['cache']['hits']} hits",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short hammer windows and small runs (CI)")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without rewriting the record")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    record = run_bench(quick=args.quick)
    print(format_bench(record))
    if not args.no_write:
        args.output.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
