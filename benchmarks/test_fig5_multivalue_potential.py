"""E6 — Figure 5: the multiple-value opportunity.

Fraction of followed predictions where the primary value was wrong but
the correct value was present in the predictor and over threshold.  The
paper: "Most of the benchmarks have this property to one degree or
another, with some having as much as 25% of their loads being good
candidates for multiple predictions."
"""

from repro.harness import fig5_multivalue_potential

from benchmarks.conftest import BENCH_LENGTH, emit


def test_fig5_multivalue_potential(benchmark):
    result = benchmark.pedantic(
        lambda: fig5_multivalue_potential(length=BENCH_LENGTH), rounds=1, iterations=1
    )
    emit(result)
    fractions = [r["fraction"] for r in result.rows]
    assert all(0.0 <= f <= 1.0 for f in fractions)
    # several benchmarks exhibit the property...
    assert sum(1 for f in fractions if f > 0.01) >= 5
    # ...some substantially.  (The paper shows peaks near 25%; at this
    # trace scale and with the suite's calibrated value noise the peaks
    # land lower, but the cross-benchmark spread — most near zero, a few
    # clearly above — matches the figure's shape.)
    assert max(fractions) > 0.03
