"""Integration tests: workloads through the full simulator stack.

These assert the *mechanisms* the paper's evaluation rests on, at a scale
small enough for CI: warm-state handling, prefetcher coverage per workload
class, and the qualitative figure shapes on representative benchmarks.
"""

import pytest

from repro import (
    IlpPredSelector,
    MachineConfig,
    OraclePredictor,
    WangFranklinPredictor,
    simulate,
)
from repro.memory import MemLevel

LENGTH = 4000


def run(name, config, predictor=None, selector=None):
    return simulate(
        name,
        config,
        predictor=predictor,
        selector=selector or IlpPredSelector(),
        length=LENGTH,
    )


class TestSimulateApi:
    def test_accepts_workload_name(self):
        stats = run("crafty", MachineConfig.hpca05_baseline())
        assert stats.useful_instructions == LENGTH

    def test_accepts_workload_object(self):
        from repro.workloads import get_workload

        stats = simulate(
            get_workload("crafty"), MachineConfig.hpca05_baseline(), length=1000
        )
        assert stats.useful_instructions == 1000

    def test_accepts_raw_trace(self):
        from repro.isa import InstructionBuilder

        ib = InstructionBuilder()
        trace = [ib.int_alu(dst=1) for _ in range(50)]
        stats = simulate(trace, MachineConfig.hpca05_baseline())
        assert stats.useful_instructions == 50

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run("doom", MachineConfig.hpca05_baseline())

    def test_deterministic(self):
        a = run("mcf", MachineConfig.hpca05_baseline())
        b = run("mcf", MachineConfig.hpca05_baseline())
        assert a.cycles == b.cycles


class TestWorkloadCharacters:
    def test_resident_workload_mostly_hits(self):
        stats = run("crafty", MachineConfig.hpca05_baseline())
        assert stats.memory_miss_fraction < 0.02
        assert stats.useful_ipc > 1.0

    def test_chasing_workload_misses_hard(self):
        stats = run("mcf", MachineConfig.hpca05_baseline())
        assert stats.memory_miss_fraction > 0.01
        assert stats.useful_ipc < 0.7

    def test_streaming_fp_gets_prefetched(self):
        stats = run("wupwise", MachineConfig.hpca05_baseline())
        covered = stats.level_counts[MemLevel.STREAM] + stats.level_counts[MemLevel.L1]
        assert covered > stats.level_counts[MemLevel.MEMORY]

    def test_branch_quality_varies_by_suite(self):
        crafty = run("crafty", MachineConfig.hpca05_baseline())
        swim = run("swim", MachineConfig.hpca05_baseline())
        assert swim.branch_accuracy > crafty.branch_accuracy


class TestFigureShapes:
    """Small-scale versions of the headline claims."""

    def test_mtvp_beats_stvp_on_mcf_oracle(self):
        base = run("mcf", MachineConfig.hpca05_baseline())
        stvp = run("mcf", MachineConfig.stvp(), predictor=OraclePredictor())
        mtvp = run("mcf", MachineConfig.mtvp(8), predictor=OraclePredictor())
        assert stvp.useful_ipc > base.useful_ipc
        assert mtvp.useful_ipc > stvp.useful_ipc

    def test_resident_workload_gains_little_from_vp(self):
        base = run("eon r", MachineConfig.hpca05_baseline())
        mtvp = run("eon r", MachineConfig.mtvp(8), predictor=OraclePredictor())
        assert abs(mtvp.useful_ipc / base.useful_ipc - 1.0) < 0.15

    def test_fp_stvp_is_small_but_mtvp_is_not(self):
        base = run("facerec", MachineConfig.hpca05_baseline())
        stvp = run("facerec", MachineConfig.stvp(), predictor=OraclePredictor())
        mtvp = run("facerec", MachineConfig.mtvp(8), predictor=OraclePredictor())
        stvp_gain = stvp.useful_ipc / base.useful_ipc - 1.0
        mtvp_gain = mtvp.useful_ipc / base.useful_ipc - 1.0
        assert stvp_gain < 0.15
        assert mtvp_gain > 0.3

    def test_wide_window_fails_on_serial_chase(self):
        base = run("mcf", MachineConfig.hpca05_baseline())
        wide = run("mcf", MachineConfig.wide_window())
        mtvp = run("mcf", MachineConfig.mtvp(8), predictor=OraclePredictor())
        assert wide.useful_ipc < mtvp.useful_ipc
        assert wide.useful_ipc < base.useful_ipc * 1.6

    def test_realistic_predictor_still_profits(self):
        base = run("vortex", MachineConfig.hpca05_baseline())
        mtvp = run(
            "vortex", MachineConfig.mtvp(8), predictor=WangFranklinPredictor()
        )
        assert mtvp.useful_ipc > base.useful_ipc
        assert 0.0 < mtvp.prediction_accuracy <= 1.0

    def test_store_buffer_sweep_monotone(self):
        ipcs = []
        for size in (8, 128):
            stats = run(
                "mcf",
                MachineConfig.mtvp(8, store_buffer_entries=size),
                predictor=OraclePredictor(),
            )
            ipcs.append(stats.useful_ipc)
        assert ipcs[1] >= ipcs[0] * 0.95  # bigger buffer never materially worse


class TestWarmState:
    def test_warm_start_faster_than_cold(self):
        warm = run("crafty", MachineConfig.hpca05_baseline(warm_caches=True))
        cold = run("crafty", MachineConfig.hpca05_baseline(warm_caches=False))
        assert warm.useful_ipc > cold.useful_ipc

    def test_huge_regions_stay_cold_even_when_warming(self):
        stats = run("mcf", MachineConfig.hpca05_baseline(warm_caches=True))
        assert stats.level_counts[MemLevel.MEMORY] > 0
