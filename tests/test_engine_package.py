"""The engine package: layout, and back-compat with the old module path.

``repro.core.engine`` used to be a single 1000-line module; it is now a
package of staged components.  Everything importable from the old path —
the public classes and the private hot-loop tables other tests and
profiling scripts reached for — must stay importable unchanged.
"""

from __future__ import annotations

from pathlib import Path

import pytest

ENGINE_DIR = Path(__file__).parent.parent / "src" / "repro" / "core" / "engine"

#: every name the old monolithic module exposed that external code used
LEGACY_PUBLIC = ["Engine", "SpawnRecord"]
LEGACY_PRIVATE = [
    "_LOAD",
    "_STORE",
    "_BRANCH",
    "_QUEUE_OF",
    "_EXEC_LAT",
    "_OP_NAMES",
    "_KIND",
    "_KIND_NONE",
    "_ML_L1",
    "_ML_L2",
    "_NO_MEASURES",
]


class TestBackCompatShim:
    def test_public_names_import_from_old_path(self):
        from repro.core.engine import Engine, SpawnRecord  # noqa: F401

        assert Engine.__name__ == "Engine"
        assert SpawnRecord.__slots__  # still the slotted record

    @pytest.mark.parametrize("name", LEGACY_PUBLIC + LEGACY_PRIVATE)
    def test_every_legacy_name_resolves(self, name):
        import repro.core.engine as engine

        assert getattr(engine, name) is not None

    def test_core_reexport_is_same_object(self):
        import repro.core as core
        import repro.core.engine as engine

        assert core.Engine is engine.Engine

    def test_legacy_privates_resolve_to_records_module(self):
        import repro.core.engine as engine
        from repro.core.engine import records

        assert engine._EXEC_LAT is records._EXEC_LAT
        assert engine._QUEUE_OF is records._QUEUE_OF

    def test_unknown_attribute_raises(self):
        import repro.core.engine as engine

        with pytest.raises(AttributeError):
            engine._definitely_not_a_thing

    def test_new_package_exports(self):
        from repro.core.engine import NO_LIMIT, SNAPSHOT_VERSION

        assert NO_LIMIT > 1 << 60
        assert SNAPSHOT_VERSION >= 1


class TestPackageLayout:
    def test_old_module_is_gone(self):
        assert not (ENGINE_DIR.parent / "engine.py").exists()
        assert (ENGINE_DIR / "__init__.py").exists()

    def test_no_component_module_is_monolithic(self):
        # the refactor's point: staged components, not a re-rolled monolith
        for path in ENGINE_DIR.glob("*.py"):
            lines = len(path.read_text().splitlines())
            assert lines <= 400, f"{path.name} has {lines} lines (> 400)"

    def test_expected_components_exist(self):
        names = {p.stem for p in ENGINE_DIR.glob("*.py")}
        assert {
            "core",
            "records",
            "scheduler",
            "step",
            "predict",
            "lifecycle",
            "measures",
            "warmup",
            "snapshot",
        } <= names
