"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import MachineConfig, SimMode
from repro.isa import Instruction, InstructionBuilder, OpClass
from repro.vp.base import ValuePrediction, ValuePredictor


class FixedPredictor(ValuePredictor):
    """Test predictor: always predicts ``actual + offset`` for every load.

    offset=0 yields an always-correct predictor without oracle semantics;
    offset!=0 yields an always-wrong one.  ``multi`` adds extra candidate
    values for multi-value experiments.
    """

    def __init__(self, offset: int = 0, multi: tuple[int, ...] = ()) -> None:
        super().__init__()
        self.offset = offset
        self.multi = multi

    def predict(self, inst: Instruction):
        if inst.op is not OpClass.LOAD or inst.value is None:
            return None
        self.lookups += 1
        return ValuePrediction((inst.value + self.offset) & ((1 << 64) - 1), 32)

    def predict_all(self, inst: Instruction):
        primary = self.predict(inst)
        if primary is None:
            return []
        out = [primary]
        for extra in self.multi:
            out.append(
                ValuePrediction((inst.value + extra) & ((1 << 64) - 1), 16)
            )
        return out

    def train(self, inst: Instruction, actual: int) -> None:
        pass


@pytest.fixture
def builder() -> InstructionBuilder:
    return InstructionBuilder()


@pytest.fixture
def baseline_config() -> MachineConfig:
    return MachineConfig.hpca05_baseline(warm_caches=False)


@pytest.fixture
def stvp_config() -> MachineConfig:
    return MachineConfig.stvp(warm_caches=False)


@pytest.fixture
def mtvp_config() -> MachineConfig:
    return MachineConfig.mtvp(8, warm_caches=False)


def alu_block(ib: InstructionBuilder, n: int, dst_base: int = 1) -> list[Instruction]:
    """n independent single-cycle ALU instructions."""
    return [ib.int_alu(dst=dst_base + (i % 8)) for i in range(n)]


def mem_miss_trace(
    ib: InstructionBuilder,
    loads: int = 4,
    dependents: int = 2,
    fillers: int = 8,
    base_addr: int = 1 << 33,
    spacing: int = 1 << 20,
) -> list[Instruction]:
    """Loads that miss everywhere, each with a dependent chain + fillers.

    Addresses are megabytes apart so no two share a line or set, and the
    trace never revisits an address — every load goes to main memory on a
    cold hierarchy.
    """
    trace: list[Instruction] = []
    for i in range(loads):
        dst = 1 + (i % 8)
        trace.append(ib.load(dst=dst, addr=base_addr + i * spacing, value=100 + i))
        prev = dst
        for d in range(dependents):
            cdst = 9 + ((i + d) % 8)
            trace.append(ib.int_alu(dst=cdst, srcs=(prev,)))
            prev = cdst
        for f in range(fillers):
            trace.append(ib.int_alu(dst=17 + (f % 8)))
    return trace


def run_engine(trace, config, predictor=None, selector=None):
    """Construct and run an Engine, returning (engine, stats)."""
    from repro.core.engine import Engine

    engine = Engine(trace, config, predictor=predictor, selector=selector)
    stats = engine.run()
    return engine, stats
