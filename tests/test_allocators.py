"""Unit tests for the cycle-slot bandwidth allocators."""

import pytest

from repro.core import PortedIssue, SlotAllocator


class TestSlotAllocator:
    def test_capacity_per_cycle(self):
        a = SlotAllocator(2)
        assert a.acquire(10) == 10
        assert a.acquire(10) == 10
        assert a.acquire(10) == 11

    def test_past_cycles_keep_capacity(self):
        a = SlotAllocator(1)
        a.acquire(100)
        assert a.acquire(50) == 50

    def test_peek_does_not_book(self):
        a = SlotAllocator(1)
        assert a.peek(5) == 5
        assert a.peek(5) == 5
        a.acquire(5)
        assert a.peek(5) == 6

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SlotAllocator(0)

    def test_booked_at(self):
        a = SlotAllocator(4)
        a.acquire(7)
        a.acquire(7)
        assert a.booked_at(7) == 2
        assert a.booked_at(8) == 0

    def test_counter(self):
        a = SlotAllocator(4)
        for _ in range(5):
            a.acquire(0)
        assert a.acquired == 5

    def test_pruning_keeps_recent_state(self):
        a = SlotAllocator(1)
        for t in range(0, 70000):
            a.acquire(t)
        # old cycles may be pruned, but recent bookings must hold
        assert a.acquire(69999) == 70000


class TestPortedIssue:
    def test_class_limit(self):
        p = PortedIssue(total=8, int_ports=2, fp_ports=2, mem_ports=2)
        assert p.acquire("int", 5) == 5
        assert p.acquire("int", 5) == 5
        assert p.acquire("int", 5) == 6

    def test_global_limit_binds_across_classes(self):
        p = PortedIssue(total=3, int_ports=2, fp_ports=2, mem_ports=2)
        times = [p.acquire(c, 0) for c in ("int", "int", "fp", "fp")]
        # only three issues fit in cycle 0
        assert sorted(times) == [0, 0, 0, 1]

    def test_paper_configuration(self):
        p = PortedIssue(total=8, int_ports=6, fp_ports=2, mem_ports=4)
        cycle0 = [p.acquire("int", 0) for _ in range(6)]
        assert cycle0 == [0] * 6
        assert p.acquire("mem", 0) == 0
        assert p.acquire("mem", 0) == 0
        # total of 8 used: anything else moves to cycle 1
        assert p.acquire("fp", 0) == 1

    def test_issued_counter(self):
        p = PortedIssue()
        p.acquire("int", 0)
        p.acquire("mem", 0)
        assert p.issued == 2

    def test_classes_do_not_starve_each_other_across_cycles(self):
        p = PortedIssue(total=8, int_ports=6, fp_ports=2, mem_ports=4)
        for _ in range(12):
            p.acquire("int", 0)
        assert p.acquire("fp", 0) in (0, 1, 2)
