"""The campaign server: unit tests for each layer plus the e2e property
the service exists for — N concurrent clients submitting identical work
cost exactly one simulation and read byte-identical reports.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.serve import (
    BackgroundServer,
    CampaignClient,
    CampaignRunner,
    CampaignServer,
    ClientError,
    EventLog,
    JobManager,
    QueueFullError,
    ServiceError,
    job_digest,
)

SMALL_SWEEP = {
    "name": "e2e",
    "axes": {"threads": [2, 4]},
    "base": {"machine": "mtvp"},
    "workloads": ["mcf"],
    "seeds": [0],
    "lengths": [400],
}

SMALL_SEARCH = {
    "search": {
        "name": "e2e-search",
        "fraction": 0.5,
        "rungs": [{"seeds": 1, "sample": 200}, {"seeds": 1}],
    },
    "sweep": {
        "name": "e2e-search-grid",
        "axes": {"threads": [2, 4]},
        "base": {"machine": "mtvp"},
        "workloads": ["mcf"],
        "seeds": [0],
        "lengths": [400],
    },
}


class TestEventLog:
    def test_seq_and_after(self):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b")
        events, closed = log.after(0)
        assert [e["kind"] for e in events] == ["a", "b"]
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0]["x"] == 1
        assert not closed
        events, _ = log.after(1)
        assert [e["kind"] for e in events] == ["b"]

    def test_overflow_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("e", i=i)
        assert log.dropped == 2
        events, _ = log.after(0)
        assert [e["i"] for e in events] == [2, 3, 4]
        assert events[0]["seq"] == 2  # seq gap reveals the drop

    def test_wait_wakes_on_emit(self):
        log = EventLog()
        got = []

        def waiter() -> None:
            got.append(log.wait(0, timeout=5.0))

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        log.emit("ping")
        t.join(timeout=5.0)
        assert not t.is_alive()
        events, closed = got[0]
        assert [e["kind"] for e in events] == ["ping"]

    def test_close_wakes_waiters_and_is_idempotent(self):
        log = EventLog()
        events, closed = log.wait(0, timeout=0.01)
        assert events == [] and not closed
        log.close()
        log.close()
        events, closed = log.wait(0, timeout=5.0)
        assert closed

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestJobManager:
    def test_digest_is_order_insensitive(self):
        assert job_digest("run", {"a": 1, "b": 2}) == job_digest(
            "run", {"b": 2, "a": 1}
        )
        assert job_digest("run", {"a": 1}) != job_digest("sweep", {"a": 1})

    def test_identical_submissions_coalesce(self):
        manager = JobManager(lambda job: {"ok": True}, workers=1, queue_size=4)
        job1, deduped1 = manager.submit("run", {"x": 1})
        job2, deduped2 = manager.submit("run", {"x": 1})
        assert job1 is job2
        assert (deduped1, deduped2) == (False, True)
        assert job1.submissions == 2
        assert manager.deduped == 1

    def test_dedup_works_after_completion(self):
        manager = JobManager(lambda job: {"ok": True}, workers=1, queue_size=4)
        manager.start()
        try:
            job, _ = manager.submit("run", {"x": 1})
            deadline = time.time() + 5.0
            while job.status != "done" and time.time() < deadline:
                time.sleep(0.01)
            assert job.status == "done"
            again, deduped = manager.submit("run", {"x": 1})
            assert again is job and deduped
            assert manager.executed == 1
        finally:
            manager.shutdown()

    def test_failed_jobs_are_not_dedup_targets(self):
        def runner(job):
            raise RuntimeError("boom")

        manager = JobManager(runner, workers=1, queue_size=4)
        manager.start()
        try:
            job, _ = manager.submit("run", {"x": 1})
            deadline = time.time() + 5.0
            while job.status != "failed" and time.time() < deadline:
                time.sleep(0.01)
            assert job.status == "failed"
            assert "boom" in job.error
            retry, deduped = manager.submit("run", {"x": 1})
            assert retry is not job and not deduped
        finally:
            manager.shutdown()

    def test_queue_full_raises_and_rolls_back(self):
        manager = JobManager(lambda job: None, workers=1, queue_size=1)
        # no workers running: the queue fills and stays full
        manager.submit("run", {"x": 1})
        with pytest.raises(QueueFullError):
            manager.submit("run", {"x": 2})
        # the rejected submission left no ghost job behind
        assert len(manager.jobs()) == 1
        # and its digest is free: resubmitting later is a fresh attempt,
        # not a dedup hit on a phantom
        job, deduped = manager.submit("run", {"x": 1})
        assert deduped  # the queued twin is still there, that one dedupes

    def test_job_lifecycle_events(self):
        manager = JobManager(lambda job: {"ok": True}, workers=1, queue_size=4)
        manager.start()
        try:
            job, _ = manager.submit("run", {"x": 1})
            events, closed = job.events.wait(0, timeout=5.0)
            deadline = time.time() + 5.0
            while not closed and time.time() < deadline:
                events, closed = job.events.wait(0, timeout=0.5)
            kinds = [e["kind"] for e in events]
            assert kinds[0] == "queued"
            assert "started" in kinds and "done" in kinds
            assert closed
        finally:
            manager.shutdown()


class TestValidation:
    @pytest.fixture(scope="class")
    def runner(self, tmp_path_factory):
        return CampaignRunner(state_dir=tmp_path_factory.mktemp("runner"))

    def test_run_defaults_are_normalized(self, runner):
        a = runner.validate("run", {"workload": "mcf", "length": 500})
        b = runner.validate(
            "run", {"workload": "mcf", "length": 500, "seed": 0, "warmup": 0}
        )
        assert a == b
        assert job_digest("run", a) == job_digest("run", b)

    def test_unknown_workload_is_400(self, runner):
        with pytest.raises(ServiceError, match="unknown workload"):
            runner.validate("run", {"workload": "nope"})

    def test_unknown_field_is_400(self, runner):
        with pytest.raises(ServiceError, match="unknown run field"):
            runner.validate("run", {"workload": "mcf", "bogus": 1})

    def test_bad_recipe_is_400_at_submit_time(self, runner):
        with pytest.raises(ServiceError, match="invalid run recipe"):
            runner.validate(
                "run",
                {"workload": "mcf", "params": {"machine": "warp-drive"}},
            )

    def test_single_context_preset_with_threads_is_400(self, runner):
        with pytest.raises(ServiceError, match="invalid run recipe"):
            runner.validate(
                "run",
                {"workload": "mcf",
                 "params": {"machine": "stvp", "threads": 4}},
            )

    def test_bad_types_are_400(self, runner):
        for field, value in (
            ("length", -5), ("seed", "zero"), ("warmup", -1), ("sample", 0),
        ):
            with pytest.raises(ServiceError):
                runner.validate("run", {"workload": "mcf", field: value})

    def test_sweep_spec_is_validated(self, runner):
        with pytest.raises(ServiceError, match="invalid sweep spec"):
            runner.validate("sweep", {"spec": {"name": "x", "bogus": 1}})
        with pytest.raises(ServiceError, match="'spec' object"):
            runner.validate("sweep", {})

    def test_non_object_body_is_400(self, runner):
        with pytest.raises(ServiceError):
            runner.validate("run", [1, 2])

    def test_search_spec_is_validated(self, runner):
        with pytest.raises(ServiceError, match="invalid search spec"):
            runner.validate("search", {"spec": {"search": {"bogus": 1}}})
        with pytest.raises(ServiceError, match="'spec' object"):
            runner.validate("search", {})
        with pytest.raises(ServiceError, match="unknown search field"):
            runner.validate("search", {"spec": SMALL_SEARCH, "surprise": 1})

    def test_search_normalization_is_digest_stable(self, runner):
        a = runner.validate("search", {"spec": SMALL_SEARCH})
        # the spec round-trips through SearchSpec, so TOML-style and
        # to_dict-style submissions of the same search coalesce
        b = runner.validate("search", {"spec": a["spec"]})
        assert job_digest("search", a) == job_digest("search", b)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One server shared by the e2e tests (module-scoped: boot is cheap
    but the concurrent-sweep test wants a warm, shared cache story)."""
    server = CampaignServer(
        state_dir=tmp_path_factory.mktemp("service"), workers=2
    )
    with BackgroundServer(server) as bg:
        yield server, CampaignClient(bg.url, timeout=120.0)


class TestServiceE2E:
    def test_health_and_stats(self, service):
        _, client = service
        assert client.health()["ok"] is True
        stats = client.stats()
        assert "cache" in stats and "jobs" in stats

    def test_concurrent_identical_sweeps_cost_one_simulation(self, service):
        """THE acceptance criterion: three concurrent clients submit the
        same sweep; exactly one job runs, every (point, seed) simulates
        exactly once (cache-hit counters prove it), and all three read
        byte-identical reports."""
        server, _ = service
        url = server.url
        stores_before = server.runner.cache.stores
        acks, errors = [], []

        def submit() -> None:
            try:
                client = CampaignClient(url, timeout=120.0)
                acks.append(client.submit_sweep({"spec": SMALL_SWEEP}))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"submissions raised: {errors}"
        assert len({ack["job"] for ack in acks}) == 1, (
            "identical submissions did not coalesce onto one job")
        job_id = acks[0]["job"]

        client = CampaignClient(url, timeout=120.0)
        snapshot = client.wait(job_id, timeout=120.0)
        assert snapshot["status"] == "done", snapshot.get("error")
        assert snapshot["submissions"] == 3
        assert snapshot["partial"]["failed"] == 0
        total_rows = snapshot["partial"]["total"]

        # exactly-once: every row stored exactly one fresh simulation
        stores_after = server.runner.cache.stores
        assert stores_after - stores_before == total_rows, (
            f"expected {total_rows} simulations, "
            f"saw {stores_after - stores_before} cache stores")

        # byte-identical reports for every client
        reports = {client.report(job_id) for _ in range(3)}
        assert len(reports) == 1
        report = reports.pop()
        assert report.startswith("### Sweep e2e")

        # resubmitting the finished sweep is a dedup hit, zero new work
        ack = client.submit_sweep({"spec": SMALL_SWEEP})
        assert ack["deduped"] and ack["job"] == job_id
        assert server.runner.cache.stores == stores_after

    def test_run_job_cache_hit_round_trip(self, service):
        server, client = service
        payload = {"workload": "mcf", "length": 300, "seed": 7}
        ack = client.submit_run(payload)
        first = client.wait(ack["job"], timeout=120.0)
        assert first["status"] == "done"
        assert first["result"]["cached"] is False
        # same simulation through a *different* job (distinct digest via
        # observe): the run comes straight from the shared cache
        hits_before = server.runner.cache.hits
        ack2 = client.submit_run(dict(payload, observe=True))
        assert ack2["job"] != ack["job"]
        second = client.wait(ack2["job"], timeout=120.0)
        assert second["status"] == "done"
        # observed runs key separately; miss is fine — what matters is
        # the identical resubmission below is served without simulating
        ack3 = client.submit_run(payload)
        assert ack3["deduped"] and ack3["job"] == ack["job"]
        assert server.runner.cache.hits >= hits_before

    def test_new_execution_modes_run_via_post(self, service):
        _, client = service
        ack = client.submit_run({
            "workload": "mcf", "length": 400,
            "params": {"machine": "smt", "threads": 2},
        })
        snap = client.wait(ack["job"], timeout=120.0)
        assert snap["status"] == "done", snap.get("error")
        stats = snap["result"]["stats"]
        assert len(stats["per_context"]) == 2
        assert stats["useful_instructions"] == 800

        ack = client.submit_run({
            "workload": "mcf", "length": 600,
            "params": {"machine": "spmt", "threads": 4, "spmt_skip": 16},
        })
        snap = client.wait(ack["job"], timeout=120.0)
        assert snap["status"] == "done", snap.get("error")
        stats = snap["result"]["stats"]
        assert stats["spmt_spawns"] > 0
        assert stats["useful_instructions"] == 600

    def test_stats_surfaces_search_campaigns(self, service):
        _, client = service
        ack = client.submit_search({"spec": SMALL_SEARCH})
        snap = client.wait(ack["job"], timeout=120.0)
        assert snap["status"] == "done", snap.get("error")
        searches = client.stats()["searches"]
        row = next(r for r in searches if r["id"] == ack["job"])
        assert row["status"] == "done"
        assert row["name"] == "e2e-search"
        assert row["db"].endswith(".db")
        assert row["rows"]["total"] > 0
        assert row["complete"] is True
        assert row["winner"]

    def test_event_stream_is_wellformed_ndjson(self, service):
        server, client = service
        payload = {"workload": "mcf", "length": 300, "seed": 11}
        ack = client.submit_run(payload)
        client.wait(ack["job"], timeout=120.0)
        # raw HTTP read: every line must parse as JSON on its own
        with urllib.request.urlopen(
            f"{server.url}/jobs/{ack['job']}/events?follow=1", timeout=30
        ) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            raw = response.read().decode()
        lines = [line for line in raw.split("\n") if line]
        events = [json.loads(line) for line in lines]
        assert len(events) >= 3
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "queued"
        assert "started" in kinds and "done" in kinds
        assert all("ts" in e for e in events)
        # cursoring: from= resumes mid-stream
        tail = list(client.events(ack["job"], from_seq=seqs[1], follow=False))
        assert [e["seq"] for e in tail] == seqs[1:]

    def test_sweep_events_carry_progress(self, service):
        _, client = service
        ack = client.submit_sweep({"spec": SMALL_SWEEP})  # deduped or not
        client.wait(ack["job"], timeout=120.0)
        kinds = {e["kind"] for e in client.events(ack["job"], follow=False)}
        assert "log" in kinds  # run_sweep's echo lines
        assert "progress" in kinds  # per-task completion ticks

    def test_traced_run_streams_trace_events(self, service):
        _, client = service
        ack = client.submit_run({"workload": "mcf", "length": 200, "trace": True})
        snapshot = client.wait(ack["job"], timeout=120.0)
        assert snapshot["status"] == "done"
        assert snapshot["result"]["trace"]["emitted"] > 0
        events = list(client.events(ack["job"], follow=False))
        assert any(e["kind"] == "trace" for e in events)

    def test_search_job_end_to_end(self, service):
        """POST /searches runs a whole successive-halving campaign as one
        job: live partial counts over the rung sweeps, a winner in the
        result, a rendered explore/exploit report, and dedup on
        resubmission."""
        server, client = service
        ack = client.submit_search({"spec": SMALL_SEARCH})
        snapshot = client.wait(ack["job"], timeout=120.0)
        assert snapshot["status"] == "done", snapshot.get("error")
        result = snapshot["result"]
        assert result["complete"] is True
        assert result["winner"] is not None
        assert result["search"] == "e2e-search"
        assert result["summary"]["grid_points"] == 2
        # partial counts aggregate over every rung's store sweep
        partial = snapshot["partial"]
        assert partial["total"] == result["summary"]["total"] > 0
        assert partial["failed"] == 0

        report = client.report(ack["job"])
        assert report.startswith("# search e2e-search")
        assert "## winner" in report
        payload = client.report(ack["job"], fmt="json")
        assert payload["winner"]["point_id"] == result["winner"]["point_id"]

        # identical resubmission coalesces; no new simulation
        stores = server.runner.cache.stores
        again = client.submit_search({"spec": SMALL_SEARCH})
        assert again["deduped"] and again["job"] == ack["job"]
        assert server.runner.cache.stores == stores

        kinds = {e["kind"] for e in client.events(ack["job"], follow=False)}
        assert "log" in kinds and "progress" in kinds

    def test_error_surfaces(self, service):
        _, client = service
        with pytest.raises(ClientError) as err:
            client.submit_run({"workload": "nope"})
        assert err.value.status == 400
        with pytest.raises(ClientError) as err:
            client.job("no-such-job")
        assert err.value.status == 404
        with pytest.raises(ClientError) as err:
            client.report("no-such-job")
        assert err.value.status == 404

    def test_report_on_unfinished_job_is_409(self, service):
        server, client = service
        # a queued job that never runs: park it behind a stopped manager —
        # simplest is a runner-level check with a synthetic job
        from repro.serve.jobs import Job

        job = Job(id="x", kind="run", payload={}, digest="d", created=0.0)
        with pytest.raises(ServiceError) as err:
            server.runner.report(job)
        assert err.value.status == 409

    def test_unknown_route_is_404_and_bad_json_400(self, service):
        server, _ = service
        request = urllib.request.Request(f"{server.url}/bogus")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 404
        request = urllib.request.Request(
            f"{server.url}/runs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_jobs_listing(self, service):
        _, client = service
        jobs = client.jobs()
        assert jobs, "earlier tests created jobs"
        assert all({"id", "kind", "status"} <= set(j) for j in jobs)
