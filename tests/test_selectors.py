"""Unit tests for the load selectors (criticality predictors)."""

from repro.isa import InstructionBuilder
from repro.memory import MemLevel
from repro.select import (
    AlwaysSelector,
    IlpPredSelector,
    MissOracleSelector,
    PredictionKind,
)


def a_load(pc=0x1000):
    return InstructionBuilder().load(dst=1, addr=0x8000, value=5, pc=pc)


class TestAlways:
    def test_prefers_mtvp_with_free_context(self):
        s = AlwaysSelector()
        assert s.choose(a_load(), spawn_available=True) is PredictionKind.MTVP

    def test_falls_back_to_stvp(self):
        s = AlwaysSelector()
        assert s.choose(a_load(), spawn_available=False) is PredictionKind.STVP


class TestMissOracle:
    def test_l1_hits_not_predicted(self):
        s = MissOracleSelector()
        assert (
            s.choose(a_load(), True, expected_level=MemLevel.L1)
            is PredictionKind.NONE
        )

    def test_memory_miss_spawns(self):
        s = MissOracleSelector()
        assert (
            s.choose(a_load(), True, expected_level=MemLevel.MEMORY)
            is PredictionKind.MTVP
        )

    def test_l2_miss_gets_stvp(self):
        s = MissOracleSelector()
        assert (
            s.choose(a_load(), True, expected_level=MemLevel.L2)
            is PredictionKind.STVP
        )

    def test_no_context_degrades_to_stvp(self):
        s = MissOracleSelector()
        assert (
            s.choose(a_load(), False, expected_level=MemLevel.MEMORY)
            is PredictionKind.STVP
        )

    def test_configurable_spawn_level(self):
        s = MissOracleSelector(mtvp_level=MemLevel.L3)
        assert (
            s.choose(a_load(), True, expected_level=MemLevel.L3)
            is PredictionKind.MTVP
        )

    def test_unknown_level_not_predicted(self):
        s = MissOracleSelector()
        assert s.choose(a_load(), True, expected_level=None) is PredictionKind.NONE


class TestIlpPredLatencyGate:
    def test_first_episode_is_at_most_stvp(self):
        s = IlpPredSelector()
        kind = s.choose(a_load(), spawn_available=True)
        assert kind is not PredictionKind.MTVP

    def test_short_latency_pc_is_gated_off(self):
        s = IlpPredSelector(stvp_min_latency=6, mtvp_min_latency=60)
        pc = 0x1000
        for _ in range(6):
            s.record(pc, PredictionKind.NONE, instructions=10, cycles=3)
        assert s.choose(a_load(pc), True) is PredictionKind.NONE

    def test_long_latency_pc_unlocks_mtvp(self):
        s = IlpPredSelector()
        pc = 0x1000
        for _ in range(4):
            s.record(pc, PredictionKind.NONE, instructions=50, cycles=1000)
        kind = s.choose(a_load(pc), True)
        assert kind is PredictionKind.MTVP

    def test_medium_latency_allows_stvp_only(self):
        s = IlpPredSelector(stvp_min_latency=6, mtvp_min_latency=300)
        pc = 0x1000
        for _ in range(4):
            s.record(pc, PredictionKind.NONE, instructions=20, cycles=50)
        assert s.choose(a_load(pc), True) is PredictionKind.STVP


class TestIlpPredProgressComparison:
    def _fill_latency(self, s, pc, cycles=1000):
        for _ in range(2):
            s.record(pc, PredictionKind.NONE, instructions=200, cycles=cycles)

    def test_unprofitable_mtvp_disabled_after_warmup(self):
        s = IlpPredSelector(warmup=2, explore_period=1000)
        pc = 0x1000
        self._fill_latency(s, pc)
        # MTVP episodes make far less progress than no prediction
        for _ in range(3):
            s.record(pc, PredictionKind.MTVP, instructions=5, cycles=1000)
        kind = s.choose(a_load(pc), True)
        assert kind is not PredictionKind.MTVP

    def test_profitable_mtvp_stays_enabled(self):
        s = IlpPredSelector(warmup=2, explore_period=1000)
        pc = 0x1000
        self._fill_latency(s, pc)
        for _ in range(3):
            s.record(pc, PredictionKind.MTVP, instructions=900, cycles=1000)
        assert s.choose(a_load(pc), True) is PredictionKind.MTVP

    def test_exploration_forces_periodic_none(self):
        s = IlpPredSelector(explore_period=8)
        pc = 0x1000
        for _ in range(4):
            s.record(pc, PredictionKind.NONE, instructions=50, cycles=1000)
        kinds = [s.choose(a_load(pc), True) for _ in range(20)]
        assert PredictionKind.NONE in kinds
        assert any(k is not PredictionKind.NONE for k in kinds)

    def test_zero_cycle_records_ignored(self):
        s = IlpPredSelector()
        s.record(0x1000, PredictionKind.NONE, instructions=10, cycles=0)
        entry = s._entry(0x1000)
        assert entry.samples[PredictionKind.NONE] == 0

    def test_latency_ewma_tracks_episodes(self):
        s = IlpPredSelector()
        pc = 0x1000
        s.record(pc, PredictionKind.NONE, 10, 100)
        entry = s._entry(pc)
        assert entry.latency == 100
        s.record(pc, PredictionKind.NONE, 10, 500)
        assert 100 < entry.latency <= 500

    def test_decision_counters(self):
        s = IlpPredSelector()
        s.choose(a_load(), True)
        total = sum(s.decisions.values())
        assert total == 1


class TestBoundedOptimism:
    """Regression: pre-evidence ("warmup") grants must be clamped.

    Before the clamp, a PC whose episodes never resolved (e.g. a long
    MTVP spawn chain) was granted prediction indefinitely under the
    ``samples < warmup`` rule — unbounded optimism.  Now at most
    ``max_optimistic_grants`` grants per mode may be outstanding ahead of
    the evidence, and every resolved sample refills the allowance.
    """

    def test_unknown_latency_stvp_grants_are_bounded(self):
        s = IlpPredSelector(max_optimistic_grants=2, explore_period=1000)
        pc = 0x4000
        granted = []
        for episode in range(10):
            kind = s.choose(a_load(pc), spawn_available=False)
            granted.append(kind)
        # episode 2 is the front-loaded baseline probe; besides it, only
        # max_optimistic_grants STVP grants may happen with zero evidence
        assert granted.count(PredictionKind.STVP) == 2
        assert granted[3:] == [PredictionKind.NONE] * 7

    def test_resolved_sample_refills_the_allowance(self):
        s = IlpPredSelector(max_optimistic_grants=1, explore_period=1000)
        pc = 0x4000
        s.choose(a_load(pc), spawn_available=False)  # optimistic grant 1
        assert (
            s.choose(a_load(pc), spawn_available=False)
            is PredictionKind.NONE
        )  # episode-2 baseline probe
        assert (
            s.choose(a_load(pc), spawn_available=False)
            is PredictionKind.NONE
        )  # allowance exhausted
        # evidence lands: a fast STVP episode and a NONE baseline
        s.record(pc, PredictionKind.STVP, instructions=400, cycles=10)
        s.record(pc, PredictionKind.NONE, instructions=100, cycles=10)
        assert (
            s.choose(a_load(pc), spawn_available=False)
            is PredictionKind.STVP
        )

    def test_mtvp_warmup_optimism_is_bounded(self):
        s = IlpPredSelector(max_optimistic_grants=3, explore_period=1000)
        pc = 0x8000
        # teach the PC a latency worth a spawn, but never resolve any
        # MTVP episode: grants must dry up at the bound
        s.record(pc, PredictionKind.NONE, instructions=100, cycles=500)
        grants = [
            s.choose(a_load(pc), spawn_available=True) for _ in range(12)
        ]
        assert grants.count(PredictionKind.MTVP) == 3
        # once MTVP and STVP optimism is spent, the selector declines
        assert grants[-1] is PredictionKind.NONE

    def test_bound_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            IlpPredSelector(max_optimistic_grants=0)

    def test_optimism_counters_survive_snapshot(self):
        s = IlpPredSelector(max_optimistic_grants=1, explore_period=1000)
        pc = 0x4000
        s.choose(a_load(pc), spawn_available=False)  # consume the allowance
        clone = IlpPredSelector(max_optimistic_grants=1, explore_period=1000)
        clone.restore(s.snapshot())
        clone._entry(pc).episodes = s._entry(pc).episodes
        assert (
            clone.choose(a_load(pc), spawn_available=False)
            is not PredictionKind.STVP
        )
