"""Tests for the unified run API: registries, Session facade, CLI report.

Covers the api_redesign contracts:

* ``repro.vp`` / ``repro.select`` expose string-keyed registries whose
  factories pickle and cache-describe;
* ``repro.harness.Session`` is the one keyword-only front door, and its
  ``observe``/``tracer`` modes compose with the result cache correctly;
* ``SimStats.to_dict``/``from_dict`` round-trip ``extended`` behind a
  schema-version field while old fixtures load byte-identically;
* the ``run --trace`` and ``report`` CLI subcommands work end to end.
"""

from __future__ import annotations

import functools
import json
import pickle
from pathlib import Path

import pytest

from repro import MachineConfig, select, vp
from repro.core import SimStats
from repro.harness import ConfigFactory, ResultCache, Session, run_simulation
from repro.harness.cache import describe_factory, task_key
from repro.memory import MemLevel

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_stats.json"


class TestRegistries:
    def test_names_cover_the_component_families(self):
        assert {"oracle", "wang-franklin", "dfcm", "last-value", "stride"} <= set(
            vp.names()
        )
        assert {"always", "ilp-pred", "ilp-commit", "miss-oracle"} <= set(
            select.names()
        )

    def test_create_returns_fresh_instances(self):
        a = vp.create("last-value")
        b = vp.create("last-value")
        assert type(a).__name__ == "LastValuePredictor"
        assert a is not b

    def test_factory_plain_name_is_the_class(self):
        cls = vp.factory("oracle")
        assert isinstance(cls, type)
        assert describe_factory(cls) is not None

    def test_factory_with_kwargs_is_partial_and_picklable(self):
        fac = vp.factory("wang-franklin", threshold=8, penalty=4)
        assert isinstance(fac, functools.partial)
        inst = fac()
        assert inst.threshold == 8 and inst.penalty == 4
        assert pickle.loads(pickle.dumps(fac))().threshold == 8
        desc = describe_factory(fac)
        assert desc["kwargs"] == {"penalty": 4, "threshold": 8}

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="wang-franklin"):
            vp.create("nonesuch")

    def test_resolve_passthrough_and_errors(self):
        cls = select.get("always")
        assert select.resolve(cls) is cls
        assert select.resolve("always") is cls
        with pytest.raises(TypeError):
            select.resolve(cls, mtvp_level=MemLevel.L3)
        with pytest.raises(TypeError):
            select.resolve(42)


class TestConfigFactory:
    def test_returns_fresh_copies(self):
        base = MachineConfig.mtvp(4)
        fac = ConfigFactory(base)
        a, b = fac(), fac()
        assert a == base and a is not base and a is not b

    def test_picklable(self):
        fac = ConfigFactory(MachineConfig.hpca05_baseline())
        assert pickle.loads(pickle.dumps(fac))() == fac()


class TestSession:
    def test_defaults_run_baseline(self):
        stats = Session(length=1200, cache=False).run("mcf")
        assert stats.cycles > 0
        assert not stats.extended

    def test_rejects_positional_arguments(self):
        with pytest.raises(TypeError):
            Session(MachineConfig.mtvp(4))

    def test_run_many_matches_run(self):
        s = Session(length=1200, cache=False)
        assert s.run_many(["mcf"])[0] == s.run("mcf")

    def test_observe_fills_extended(self):
        s = Session(
            config=MachineConfig.mtvp(8), predictor="wang-franklin",
            selector="always", length=1500, cache=False, observe=True,
        )
        stats = s.run("mcf")
        assert stats.extended["metrics"]["histograms"]["rob_occupancy"][
            "total_weight"
        ] > 0

    def test_observe_keys_cache_separately(self, tmp_path):
        cache = ResultCache(tmp_path)
        plain = Session(length=1200, cache=cache).run("mcf")
        observed = Session(length=1200, cache=cache, observe=True).run("mcf")
        assert not plain.extended and observed.extended
        assert cache.stores == 2  # distinct keys, no aliasing
        # repeating either hits the cache and preserves its shape
        again = Session(length=1200, cache=cache, observe=True).run("mcf")
        assert cache.hits >= 1
        assert again.extended == observed.extended

    def test_tracer_runs_bypass_cache(self, tmp_path):
        from repro.obs import Tracer

        cache = ResultCache(tmp_path)
        tracer = Tracer()
        s = Session(
            config=MachineConfig.mtvp(8), predictor="wang-franklin",
            selector="always", length=1500, cache=cache, tracer=tracer,
        )
        stats = s.run("mcf")
        assert len(tracer) > 0
        assert cache.stores == 0 and cache.hits == 0
        assert stats.cycles > 0

    def test_spec_carries_the_recipe(self):
        s = Session(predictor="dfcm", selector="always", observe=True)
        spec = s.spec("probe")
        assert spec.name == "probe"
        assert spec.observe is True
        assert spec.predictor_factory is vp.get("dfcm")

    def test_string_recipes_are_cacheable(self):
        spec = Session(predictor="wang-franklin", selector="ilp-pred").spec()
        assert task_key("mcf", spec, 1000, 0) is not None

    def test_run_simulation_shim(self):
        spec = Session(length=1200).spec()
        stats = run_simulation("mcf", spec, 1200, 0)
        assert stats == Session(length=1200, cache=False).run("mcf")


class TestStatsSchema:
    def test_plain_round_trip_unchanged(self):
        stats = SimStats(cycles=10, loads=3)
        d = stats.to_dict()
        assert "extended" not in d and "schema_version" not in d
        assert SimStats.from_dict(d) == stats

    def test_extended_round_trip(self):
        stats = SimStats(cycles=10)
        stats.extended = {"schema": 1, "metrics": {"counters": {"kills_observed": 2}}}
        d = stats.to_dict()
        assert d["schema_version"] == 2
        back = SimStats.from_dict(json.loads(json.dumps(d)))
        assert back.extended == stats.extended
        assert back == stats  # compare=False, but counters must agree too
        assert back.cycles == 10

    def test_golden_fixture_stats_load_unchanged(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        for name, fx in golden.items():
            if "lanes" in fx:
                # lane-batched fixtures record per-lane digests, not a
                # stats dict; tests/test_batch.py exercises them
                continue
            stats = SimStats.from_dict(fx["stats"])
            assert not stats.extended
            d = stats.to_dict()
            # the goldens pre-date instructions_stepped (an additive field
            # defaulting to 0); everything they do record must round-trip
            # byte-identically, with no schema marker appearing
            d.pop("instructions_stepped", None)
            assert d == fx["stats"], name

    def test_old_cache_entries_still_load(self, tmp_path):
        # a schema-1 payload (no extended/schema_version), as written by
        # any pre-observability build of the cache
        cache = ResultCache(tmp_path)
        old = SimStats(cycles=77, loads=5).to_dict()
        key = "f" * 64
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"key": key, "stats": old})
        )
        stats = cache.get(key)
        assert stats is not None and stats.cycles == 77
        assert not stats.extended


class TestCli:
    def test_run_with_trace_export(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "trace.json"
        code = main([
            "run", "mcf", "--machine", "mtvp", "--selector", "always",
            "--length", "1500", "--trace", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert any(ev["ph"] == "X" for ev in payload["traceEvents"])
        assert "context lanes" in capsys.readouterr().out

    def test_run_trace_jsonl_format(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "trace.jsonl"
        code = main([
            "run", "mcf", "--length", "1200", "--trace", str(out),
            "--trace-format", "jsonl",
        ])
        assert code == 0
        first = json.loads(out.read_text().splitlines()[0])
        assert first["event"] == "thread"

    def test_report_prints_occupancy(self, tmp_path, capsys):
        from repro.__main__ import main

        args = [
            "report", "mcf", "--machine", "mtvp", "--selector", "always",
            "--length", "1500", "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        text = capsys.readouterr().out
        assert "rob_occupancy" in text
        assert "cycle-weighted" in text
        # second invocation is served from the cache, identically
        assert main(args) == 0
        assert "rob_occupancy" in capsys.readouterr().out
