"""Engine edge cases: boundary spawns, history inheritance, measurements."""

from repro.core import MachineConfig
from repro.select import AlwaysSelector, IlpPredSelector, PredictionKind
from repro.vp import OraclePredictor

from tests.conftest import FixedPredictor, alu_block, run_engine


class TestBoundarySpawns:
    def test_spawn_on_last_instruction(self, builder):
        """A load in the final trace slot spawns a child with nothing to do."""
        trace = alu_block(builder, 5) + [
            builder.load(dst=1, addr=1 << 33, value=5)
        ]
        cfg = MachineConfig.mtvp(8, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.useful_instructions == len(trace)

    def test_trace_of_single_load(self, builder):
        trace = [builder.load(dst=1, addr=1 << 33, value=5)]
        for cfg in (
            MachineConfig.hpca05_baseline(warm_caches=False),
            MachineConfig.mtvp(8, warm_caches=False),
        ):
            _, stats = run_engine(
                trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
            )
            assert stats.useful_instructions == 1
            assert stats.cycles >= 1000

    def test_back_to_back_spawnable_loads(self, builder):
        ib = builder
        trace = [
            ib.load(dst=1 + i, addr=(1 << 33) + i * (1 << 22), value=i)
            for i in range(6)
        ]
        trace += alu_block(ib, 10, dst_base=10)
        cfg = MachineConfig.mtvp(8, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.useful_instructions == len(trace)
        assert stats.spawns >= 1

    def test_mispredict_on_final_spawn(self, builder):
        trace = alu_block(builder, 5) + [
            builder.load(dst=1, addr=1 << 33, value=5)
        ]
        cfg = MachineConfig.mtvp(8, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=FixedPredictor(offset=1), selector=AlwaysSelector()
        )
        assert stats.useful_instructions == len(trace)


class TestBranchHistoryInheritance:
    def test_child_inherits_history(self, builder):
        """A spawned thread must predict branches as well as its parent."""
        ib = builder
        trace = []
        for i in range(30):
            trace.append(ib.branch(taken=(i % 2 == 0), pc=0x7000))
            trace.append(ib.int_alu(dst=1))
        trace.append(ib.load(dst=2, addr=1 << 33, value=5, pc=0x7100))
        for i in range(30, 60):
            trace.append(ib.branch(taken=(i % 2 == 0), pc=0x7000))
            trace.append(ib.int_alu(dst=1))
        cfg = MachineConfig.mtvp(8, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        # the alternation is fully learnable; the spawn must not reset it
        assert stats.branch_accuracy > 0.75


class TestSelectorFeedback:
    def test_engine_records_progress_episodes(self, builder):
        ib = builder
        trace = []
        for i in range(6):
            trace.append(ib.load(dst=1, addr=(1 << 33) + i * (1 << 22), value=5))
            trace += alu_block(ib, 20, dst_base=2)
        selector = IlpPredSelector()
        cfg = MachineConfig.mtvp(8, warm_caches=False)
        run_engine(trace, cfg, predictor=OraclePredictor(), selector=selector)
        entry = selector._entry(trace[0].pc)
        assert sum(entry.samples) > 0
        assert entry.latency > 100  # learned: this load is memory-class

    def test_latency_gate_blocks_l1_spawns_end_to_end(self, builder):
        ib = builder
        addr = 1 << 33
        # same PC hits L1 from the second access on
        trace = []
        for _ in range(40):
            trace.append(ib.load(dst=1, addr=addr, value=5, pc=0x5000))
            trace += alu_block(ib, 6, dst_base=2)
        cfg = MachineConfig.mtvp(8, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=IlpPredSelector()
        )
        # the first (cold-miss) episode seeds a high latency estimate, so a
        # few early spawns are expected; the EWMA must then converge and
        # shut spawning down for the remaining ~35 episodes
        assert stats.spawns <= 6


class TestSharedStructures:
    def test_rename_pool_limits_inflight_writers(self, builder):
        # a tiny rename pool forces serialization even for independent work
        small = MachineConfig.hpca05_baseline(
            warm_caches=False, rename_regs=8, rob_size=256
        )
        big = MachineConfig.hpca05_baseline(warm_caches=False)
        trace = [builder.int_mul(dst=1 + (i % 8)) for i in range(200)]
        _, s_small = run_engine(list(trace), small)
        _, s_big = run_engine(list(trace), big)
        assert s_small.cycles > s_big.cycles

    def test_issue_ports_limit_fp_throughput(self, builder):
        cfg = MachineConfig.hpca05_baseline(warm_caches=False)
        fp_trace = [builder.fp_alu(dst=1 + (i % 8)) for i in range(400)]
        _, stats = run_engine(fp_trace, cfg)
        # 2 FP ports: IPC cannot exceed 2
        assert stats.useful_ipc <= 2.1

    def test_mem_ports_limit_load_throughput(self, builder):
        cfg = MachineConfig.hpca05_baseline(warm_caches=False)
        addr = 1 << 33
        trace = [builder.load(dst=1, addr=addr, value=1) for _ in range(300)]
        _, stats = run_engine(trace, cfg)
        assert stats.useful_ipc <= 4.1


class TestPredictionKinds:
    def test_stvp_fallback_when_selector_wants_none(self, builder):
        class NoneSelector(AlwaysSelector):
            def choose(self, inst, spawn_available, expected_level=None):
                return PredictionKind.NONE

        trace = [builder.load(dst=1, addr=1 << 33, value=5)]
        trace += alu_block(builder, 5, dst_base=2)
        cfg = MachineConfig.mtvp(8, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=NoneSelector()
        )
        assert stats.spawns == 0
        assert stats.stvp_predictions == 0
        assert stats.declined_predictions == 1
