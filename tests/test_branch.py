"""Unit tests for the branch predictors."""

import random

from repro.branch import (
    BimodalPredictor,
    GsharePredictor,
    TwoBcGskewPredictor,
    update_history,
)


def train_and_score(predictor, outcome_fn, n=4000, npc=4):
    hist = 0
    correct = 0
    for i in range(n):
        pc = 0x1000 + (i % npc) * 4
        taken = outcome_fn(i)
        if predictor.predict(pc, hist) == taken:
            correct += 1
        predictor.update(pc, hist, taken)
        hist = update_history(hist, taken)
    return correct / n


class TestHistory:
    def test_update_history_shifts(self):
        h = update_history(0, True)
        assert h == 1
        h = update_history(h, False)
        assert h == 2
        h = update_history(h, True)
        assert h == 5

    def test_history_bounded(self):
        h = 0
        for _ in range(100):
            h = update_history(h, True)
        assert h < (1 << 16)


class TestBimodal:
    def test_learns_strong_bias(self):
        acc = train_and_score(BimodalPredictor(), lambda i: True)
        assert acc > 0.99

    def test_learns_not_taken(self):
        acc = train_and_score(BimodalPredictor(), lambda i: False)
        assert acc > 0.99

    def test_cannot_learn_alternation_well(self):
        acc = train_and_score(BimodalPredictor(), lambda i: i % 2 == 0, npc=1)
        assert acc < 0.7


class TestGshare:
    def test_learns_alternation(self):
        acc = train_and_score(GsharePredictor(), lambda i: i % 2 == 0, npc=1)
        assert acc > 0.95

    def test_learns_short_pattern(self):
        pattern = [True, True, False, True, False, False]
        acc = train_and_score(
            GsharePredictor(), lambda i: pattern[i % len(pattern)], npc=1
        )
        assert acc > 0.95


class Test2bcgskew:
    def test_learns_loop(self):
        count = [0]

        def loop16(i):
            count[0] = (count[0] + 1) % 16
            return count[0] != 0

        acc = train_and_score(TwoBcGskewPredictor(), loop16, npc=1)
        assert acc > 0.9

    def test_learns_pattern_with_many_pcs(self):
        rng = random.Random(11)
        patterns = {pc: [rng.random() < 0.5 for _ in range(8)] for pc in range(8)}
        counters = {pc: 0 for pc in range(8)}

        def outcome(i):
            pc = i % 8
            idx = counters[pc] % 8
            counters[pc] += 1
            return patterns[pc][idx]

        acc = train_and_score(TwoBcGskewPredictor(), outcome, npc=8)
        assert acc > 0.9

    def test_biased_branches(self):
        rng = random.Random(5)
        acc = train_and_score(TwoBcGskewPredictor(), lambda i: rng.random() < 0.85)
        assert acc > 0.75

    def test_random_branches_near_chance(self):
        rng = random.Random(5)
        acc = train_and_score(TwoBcGskewPredictor(), lambda i: rng.random() < 0.5)
        assert 0.35 < acc < 0.65

    def test_beats_bimodal_on_patterns(self):
        pattern = [True, False, False, True, True, False, True, False]

        def outcome(i):
            return pattern[i % len(pattern)]

        skew = train_and_score(TwoBcGskewPredictor(), outcome, npc=1)
        bim = train_and_score(BimodalPredictor(), outcome, npc=1)
        assert skew > bim

    def test_lookup_counter(self):
        bp = TwoBcGskewPredictor()
        bp.predict(0x100, 0)
        bp.predict(0x104, 1)
        assert bp.lookups == 2
