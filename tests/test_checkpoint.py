"""The warmup-checkpoint store and its wiring through the harness.

Covers :mod:`repro.harness.checkpoint` (keys, the store, single-file
helpers), the cache-key extensions for the warmup/sample protocol, the
prune ``dry_run`` mode, and the end-to-end property the whole layer
exists for: a warmed run restored from a checkpoint is byte-identical to
one that fast-forwarded itself.
"""

from __future__ import annotations

import functools
import hashlib
import json

import pytest

from repro.core import MachineConfig
from repro.harness import (
    CheckpointStore,
    ResultCache,
    RunSpec,
    arch_key,
    load_checkpoint,
    resolve_checkpoints,
    run_once,
    run_simulations,
    save_checkpoint,
    task_key,
)


def digest(stats) -> str:
    blob = json.dumps(stats.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def warmed_spec(**overrides) -> RunSpec:
    factory = (
        functools.partial(MachineConfig.mtvp, 4, **overrides)
        if overrides
        else functools.partial(MachineConfig.mtvp, 4)
    )
    return RunSpec(
        "warmed", factory, predictor_factory="wang-franklin",
        warmup=2000, sample=1500,
    )


class TestArchKey:
    def test_no_warmup_means_no_key(self):
        assert arch_key("mcf", 0, 0, warmed_spec()) is None

    def test_timing_axes_share_a_key(self):
        a = arch_key("mcf", 0, 2000, warmed_spec())
        b = arch_key("mcf", 0, 2000, warmed_spec(spawn_latency=64))
        c = arch_key("mcf", 0, 2000, warmed_spec(l2_latency=40, mshrs=4))
        assert a == b == c

    def test_architectural_axes_split_keys(self):
        base = arch_key("mcf", 0, 2000, warmed_spec())
        assert base != arch_key("mcf", 0, 2000, warmed_spec(l1_size=32 * 1024))
        assert base != arch_key(
            "mcf", 0, 2000, warmed_spec(prefetch_fill_latency=100)
        )

    def test_workload_seed_warmup_predictor_split_keys(self):
        base = arch_key("mcf", 0, 2000, warmed_spec())
        assert base != arch_key("art", 0, 2000, warmed_spec())
        assert base != arch_key("mcf", 1, 2000, warmed_spec())
        assert base != arch_key("mcf", 0, 2500, warmed_spec())
        dfcm = RunSpec(
            "d", MachineConfig.mtvp, predictor_factory="dfcm", warmup=2000
        )
        assert base != arch_key("mcf", 0, 2000, dfcm)

    def test_undescribable_factory_is_uncacheable(self):
        spec = RunSpec(
            "l", MachineConfig.mtvp,
            predictor_factory=lambda: None, warmup=2000,
        )
        assert arch_key("mcf", 0, 2000, spec) is None


class TestCheckpointStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.get("k") is None
        store.put("k", {"version": 1, "pos": 5})
        assert store.get("k") == {"version": 1, "pos": 5}
        assert (store.hits, store.misses, store.stores) == (1, 1, 1)
        assert len(store) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        (tmp_path / "bad.ckpt").write_bytes(b"not a pickle")
        assert store.get("bad") is None
        assert store.misses == 1

    def test_resolve_conventions(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        assert resolve_checkpoints(None) is None
        assert resolve_checkpoints(False) is None
        store = resolve_checkpoints(tmp_path)
        assert isinstance(store, CheckpointStore)
        assert resolve_checkpoints(store) is store
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "env"))
        assert resolve_checkpoints(None).directory == tmp_path / "env"
        with pytest.raises(TypeError):
            resolve_checkpoints(42)


class TestWarmedRuns:
    def test_restored_run_is_byte_identical(self, tmp_path):
        store = CheckpointStore(tmp_path)
        spec = warmed_spec()
        cold = spec.run("mcf", 4000, seed=0, checkpoints=store)
        assert store.stores == 1
        warm = spec.run("mcf", 4000, seed=0, checkpoints=store)
        assert store.hits == 1
        assert digest(warm) == digest(cold)

    def test_checkpoint_shared_across_timing_configs(self, tmp_path):
        store = CheckpointStore(tmp_path)
        warmed_spec().run("mcf", 4000, seed=0, checkpoints=store)
        other = warmed_spec(spawn_latency=64)
        reference = digest(other.run("mcf", 4000, seed=0))  # no store
        restored = other.run("mcf", 4000, seed=0, checkpoints=store)
        assert store.hits == 1 and store.stores == 1
        assert digest(restored) == reference

    def test_sample_overrides_session_length(self):
        stats = warmed_spec().run("mcf", 999999, seed=0)
        assert stats.instructions_stepped == 1500
        assert stats.warmup_instructions == 2000

    def test_run_once_overrides(self, tmp_path):
        spec = RunSpec("s", MachineConfig.stvp)
        stats = run_once("mcf", spec, length=3000, warmup=1000, sample=800)
        assert stats.warmup_instructions == 1000
        assert stats.instructions_stepped == 800
        # the original spec is untouched
        assert spec.warmup == 0 and spec.sample is None

    def test_run_simulations_threads_store_serially(self, tmp_path):
        store = CheckpointStore(tmp_path)
        spec_a = warmed_spec()
        spec_b = warmed_spec(spawn_latency=64)
        run_simulations(
            [("mcf", spec_a, 4000, 0), ("mcf", spec_b, 4000, 0)],
            jobs=1, cache=False, checkpoints=store,
        )
        assert store.stores == 1 and store.hits == 1


class TestTaskKeyProtocolAxes:
    def test_default_spec_key_has_no_protocol_fields(self):
        # byte-compat: a spec without warmup/sample must produce the same
        # key the pre-protocol harness minted
        plain = RunSpec("p", MachineConfig.mtvp)
        zeroed = RunSpec("p", MachineConfig.mtvp, warmup=0, sample=None)
        assert task_key("mcf", plain, 4000, 0) == task_key(
            "mcf", zeroed, 4000, 0
        )

    def test_warmup_and_sample_enter_the_key(self):
        plain = RunSpec("p", MachineConfig.mtvp)
        warmed = RunSpec("p", MachineConfig.mtvp, warmup=2000)
        sampled = RunSpec("p", MachineConfig.mtvp, warmup=2000, sample=1000)
        keys = {
            task_key("mcf", s, 4000, 0) for s in (plain, warmed, sampled)
        }
        assert len(keys) == 3


class TestPruneDryRun:
    def _filled_cache(self, tmp_path) -> ResultCache:
        cache = ResultCache(tmp_path)
        from repro.core import SimStats

        for i in range(3):
            cache.put(f"key{i}", SimStats(cycles=i + 1))
        return cache

    def test_dry_run_reports_without_deleting(self, tmp_path):
        cache = self._filled_cache(tmp_path)
        total = sum(p.stat().st_size for p in tmp_path.glob("*.json"))
        would = cache.prune(max_bytes=0, dry_run=True)
        assert would == 3
        assert cache.last_prune_bytes == total
        assert len(cache) == 3  # nothing deleted

    def test_real_prune_matches_the_dry_run(self, tmp_path):
        cache = self._filled_cache(tmp_path)
        would = cache.prune(max_bytes=0, dry_run=True)
        removed = cache.prune(max_bytes=0)
        assert removed == would
        assert len(cache) == 0

    def test_dry_run_cli_flag(self, tmp_path, capsys):
        self._filled_cache(tmp_path)
        from repro.__main__ import main

        assert main(["cache", "prune", "--max-bytes", "0",
                     "--dry-run", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "would prune 3 entries" in out
        assert len(list(tmp_path.glob("*.json"))) == 3


class TestCheckpointFiles:
    def test_save_load_roundtrip_validates_identity(self, tmp_path):
        arch = {"version": 1, "scope": "arch", "pos": 1200, "bhist": 7,
                "warmup_instructions": 1200, "hierarchy": {}, "branch": {},
                "predictor": {}}
        path = tmp_path / "w.ckpt"
        save_checkpoint(path, arch, workload="mcf", seed=3)
        payload = load_checkpoint(path, workload="mcf", seed=3)
        assert payload["warmup"] == 1200
        assert payload["arch"] == arch
        with pytest.raises(ValueError, match="workload"):
            load_checkpoint(path, workload="art", seed=3)
        with pytest.raises(ValueError, match="seed"):
            load_checkpoint(path, workload="mcf", seed=0)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        import pickle

        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="not a repro"):
            load_checkpoint(path)

    def test_cli_checkpoint_restore_roundtrip(self, tmp_path, capsys):
        from repro.__main__ import main

        ckpt = tmp_path / "mcf.ckpt"
        assert main(["run", "mcf", "--length", "2000", "--warmup", "1500",
                     "--checkpoint", str(ckpt)]) == 0
        first = capsys.readouterr().out
        assert "wrote warmup checkpoint (1500 instructions)" in first
        assert main(["run", "mcf", "--length", "2000",
                     "--restore", str(ckpt)]) == 0
        second = capsys.readouterr().out
        # identical simulated interval: cycle counts line up exactly
        assert [l for l in first.splitlines() if l.startswith("cycles")] == \
               [l for l in second.splitlines() if l.startswith("cycles")]

    def test_cli_checkpoint_requires_warmup(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["run", "mcf", "--checkpoint",
                     str(tmp_path / "x.ckpt")]) == 1
        assert "--warmup" in capsys.readouterr().out
