"""Unit tests for the order-3 DFCM predictor."""

from repro.isa import InstructionBuilder
from repro.vp import DfcmPredictor, WangFranklinPredictor


def loads(values, pc=0x1000):
    ib = InstructionBuilder()
    return [ib.load(dst=1, addr=0x8000 + 8 * i, value=v, pc=pc) for i, v in enumerate(values)]


def train_seq(p, values, pc=0x1000):
    for inst in loads(values, pc):
        p.train(inst, inst.value)


def score(p, values, pc=0x1000):
    """Train on a prefix then score predictions over the suffix."""
    correct = attempts = 0
    for inst in loads(values, pc):
        pred = p.predict(inst)
        if pred is not None:
            attempts += 1
            correct += pred.value == inst.value
        p.train(inst, inst.value)
    return attempts, correct


class TestStridePatterns:
    def test_constant_sequence(self):
        p = DfcmPredictor()
        train_seq(p, [42] * 20)
        assert p.predict(loads([42])[0]).value == 42

    def test_simple_stride(self):
        p = DfcmPredictor()
        train_seq(p, list(range(0, 300, 10)))
        assert p.predict(loads([300])[0]).value == 300

    def test_repeating_stride_pattern(self):
        # strides alternate +1, +9: a 2nd-order context a stride predictor
        # cannot learn but DFCM-3 can
        values = [0]
        for i in range(60):
            values.append(values[-1] + (1 if i % 2 == 0 else 9))
        p = DfcmPredictor()
        attempts, correct = score(p, values)
        assert attempts > 10
        assert correct / attempts > 0.8

    def test_cold_predicts_nothing(self):
        p = DfcmPredictor()
        assert p.predict(loads([5])[0]) is None


class TestAggressiveness:
    def test_dfcm_more_aggressive_than_wf(self):
        """Section 5.4: DFCM makes more predictions (and more mistakes)."""
        import random

        rng = random.Random(9)
        # half-predictable stream: strided with frequent random breaks
        values = []
        v = 0
        for _ in range(400):
            if rng.random() < 0.25:
                v = rng.randrange(1 << 30)
            else:
                v += 8
            values.append(v)
        dfcm_attempts, dfcm_correct = score(DfcmPredictor(), values)
        wf_attempts, wf_correct = score(WangFranklinPredictor(), values)
        assert dfcm_attempts > wf_attempts
        dfcm_wrong = dfcm_attempts - dfcm_correct
        wf_wrong = wf_attempts - wf_correct
        assert dfcm_wrong >= wf_wrong


class TestConfidence:
    def test_threshold_blocks_unconfident(self):
        p = DfcmPredictor(threshold=4)
        train_seq(p, [0, 10, 20])  # too few confirmations
        assert p.predict(loads([30])[0]) is None

    def test_level2_replacement_when_confidence_drains(self):
        p = DfcmPredictor(threshold=2, penalty=2)
        train_seq(p, list(range(0, 100, 10)))
        # break the stride pattern repeatedly: old stride must be replaced
        train_seq(p, [1000, 1003, 1006, 1009, 1012, 1015, 1018])
        pred = p.predict(loads([1021])[0])
        assert pred is not None and pred.value == 1021


class TestSpeculativeUpdate:
    def test_speculative_update_moves_last_value_only(self):
        p = DfcmPredictor()
        train_seq(p, list(range(0, 100, 10)))
        entry = p._l1_entry(0x1000, allocate=False)
        strides_before = list(entry.strides)
        probe = loads([100])[0]
        p.speculative_update(probe, 100)
        assert entry.last_value == 100
        assert entry.strides == strides_before

    def test_commit_resync(self):
        p = DfcmPredictor()
        train_seq(p, list(range(0, 100, 10)))
        probe = loads([100])[0]
        p.speculative_update(probe, 100)
        p.train(probe, 100)
        entry = p._l1_entry(0x1000, allocate=False)
        assert entry.last_committed == 100
        assert entry.strides[-1] == 10


class TestIndexFunction:
    def test_fold_covers_full_width(self):
        from repro.vp.dfcm import _fold

        assert _fold(0, 10) == 0
        assert _fold(1 << 40, 10) != 0
        assert 0 <= _fold((1 << 64) - 1, 10) < (1 << 10)

    def test_distinct_histories_rarely_collide(self):
        p = DfcmPredictor()
        seen = set()
        entry = p._l1_entry(0x1000, allocate=True)
        for a in range(8):
            for b in range(8):
                entry.strides = [a * 8, b * 8, 16]
                seen.add(p._l2_index(entry))
        assert len(seen) > 48  # 64 histories, mostly distinct indices
