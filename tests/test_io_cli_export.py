"""Tests for trace I/O, result export, and the command-line interface."""

import json

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.export import (
    load_result_json,
    result_to_csv,
    result_to_dict,
    result_to_json,
    stats_to_dict,
)
from repro.workloads import get_workload
from repro.workloads.io import load_trace, save_trace


def sample_result():
    return ExperimentResult(
        experiment_id="x1",
        title="Test",
        columns=["workload", "pct"],
        rows=[{"workload": "mcf", "pct": 12.5}, {"workload": "swim", "pct": -3.0}],
        summary={"geomean": 4.25},
    )


class TestTraceIo:
    def test_roundtrip_workload_trace(self, tmp_path):
        trace = get_workload("mcf").trace(length=400)
        path = tmp_path / "mcf.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.pc, a.op, a.srcs, a.dst, a.addr, a.value, a.taken) == (
                b.pc,
                b.op,
                b.srcs,
                b.dst,
                b.addr,
                b.value,
                b.taken,
            )

    def test_roundtrip_handmade_trace(self, tmp_path, builder):
        trace = [
            builder.load(dst=1, addr=0x8000, value=(1 << 63) + 5),
            builder.store(addr=0x9000, srcs=(1,), value=0),
            builder.branch(taken=False, srcs=(1,)),
            builder.int_alu(dst=2, srcs=(1,)),
        ]
        path = tmp_path / "hand.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded[0].value == (1 << 63) + 5
        assert loaded[1].addr == 0x9000
        assert loaded[2].taken is False
        assert loaded[3].addr is None

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro import MachineConfig, simulate

        trace = get_workload("crafty").trace(length=400)
        path = tmp_path / "c.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        a = simulate(trace, MachineConfig.hpca05_baseline(warm_caches=False))
        b = simulate(loaded, MachineConfig.hpca05_baseline(warm_caches=False))
        assert a.cycles == b.cycles

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.trace"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(ValueError, match="magic"):
            load_trace(path)

    def test_truncated_rejected(self, tmp_path, builder):
        trace = [builder.int_alu(dst=1) for _ in range(10)]
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)

    def test_too_short_rejected(self, tmp_path):
        path = tmp_path / "s.trace"
        path.write_bytes(b"RV")
        with pytest.raises(ValueError, match="too short"):
            load_trace(path)


class TestExport:
    def test_stats_to_dict(self):
        from repro.core import SimStats

        d = stats_to_dict(SimStats(cycles=10, useful_instructions=25))
        assert d["useful_ipc"] == 2.5
        assert "memory" in d["level_counts"]
        json.dumps(d)  # must be serializable

    def test_result_json_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        result_to_json(sample_result(), path)
        back = load_result_json(path)
        assert back.rows == sample_result().rows
        assert back.summary == sample_result().summary

    def test_result_to_dict_is_serializable(self):
        json.dumps(result_to_dict(sample_result()))

    def test_result_csv(self, tmp_path):
        text = result_to_csv(sample_result())
        lines = text.strip().splitlines()
        assert lines[0] == "workload,pct"
        assert lines[1] == "mcf,12.5"
        assert any(line.startswith("# geomean") for line in lines)


class TestCli:
    def run_cli(self, argv, capsys):
        from repro.__main__ import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_workloads_listing(self, capsys):
        code, out = self.run_cli(["workloads"], capsys)
        assert code == 0
        assert "mcf" in out and "swim" in out

    def test_workloads_suite_filter(self, capsys):
        code, out = self.run_cli(["workloads", "--suite", "fp"], capsys)
        assert code == 0
        assert "swim" in out and "mcf" not in out

    def test_run_command(self, capsys):
        code, out = self.run_cli(
            ["run", "crafty", "--machine", "baseline", "--length", "500"], capsys
        )
        assert code == 0
        assert "useful IPC" in out

    def test_run_mtvp_with_options(self, capsys):
        code, out = self.run_cli(
            [
                "run", "mcf", "--machine", "mtvp", "--threads", "4",
                "--predictor", "oracle", "--selector", "always",
                "--length", "500",
            ],
            capsys,
        )
        assert code == 0
        assert "spawns" in out

    def test_experiment_unknown_id(self, capsys):
        code, out = self.run_cli(["experiment", "fig99"], capsys)
        assert code == 1
        assert "unknown experiment" in out

    def test_trace_command(self, tmp_path, capsys):
        out_path = tmp_path / "x.trace"
        code, out = self.run_cli(
            ["trace", "crafty", str(out_path), "--length", "300"], capsys
        )
        assert code == 0
        assert out_path.exists()
        assert len(load_trace(out_path)) == 300
