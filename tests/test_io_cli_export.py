"""Tests for trace I/O, result export, and the command-line interface."""

import json

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.export import (
    load_result_json,
    result_to_csv,
    result_to_dict,
    result_to_json,
    stats_to_dict,
)
from repro.workloads import get_workload
from repro.workloads.io import (
    _HEADER,
    _MAGIC,
    _RECORD,
    _VERSION,
    TraceFormatError,
    TraceSet,
    iter_trace,
    load_trace,
    load_trace_set,
    save_trace,
)


def sample_result():
    return ExperimentResult(
        experiment_id="x1",
        title="Test",
        columns=["workload", "pct"],
        rows=[{"workload": "mcf", "pct": 12.5}, {"workload": "swim", "pct": -3.0}],
        summary={"geomean": 4.25},
    )


class TestTraceIo:
    def test_roundtrip_workload_trace(self, tmp_path):
        trace = get_workload("mcf").trace(length=400)
        path = tmp_path / "mcf.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.pc, a.op, a.srcs, a.dst, a.addr, a.value, a.taken) == (
                b.pc,
                b.op,
                b.srcs,
                b.dst,
                b.addr,
                b.value,
                b.taken,
            )

    def test_roundtrip_handmade_trace(self, tmp_path, builder):
        trace = [
            builder.load(dst=1, addr=0x8000, value=(1 << 63) + 5),
            builder.store(addr=0x9000, srcs=(1,), value=0),
            builder.branch(taken=False, srcs=(1,)),
            builder.int_alu(dst=2, srcs=(1,)),
        ]
        path = tmp_path / "hand.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded[0].value == (1 << 63) + 5
        assert loaded[1].addr == 0x9000
        assert loaded[2].taken is False
        assert loaded[3].addr is None

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro import MachineConfig, simulate

        trace = get_workload("crafty").trace(length=400)
        path = tmp_path / "c.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        a = simulate(trace, MachineConfig.hpca05_baseline(warm_caches=False))
        b = simulate(loaded, MachineConfig.hpca05_baseline(warm_caches=False))
        assert a.cycles == b.cycles

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.trace"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(ValueError, match="magic"):
            load_trace(path)

    def test_truncated_rejected(self, tmp_path, builder):
        trace = [builder.int_alu(dst=1) for _ in range(10)]
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)

    def test_too_short_rejected(self, tmp_path):
        path = tmp_path / "s.trace"
        path.write_bytes(b"RV")
        with pytest.raises(ValueError, match="too short"):
            load_trace(path)


def _raw_file(tmp_path, records: list[bytes]) -> "object":
    """A trace file from hand-packed record bytes (bypassing save_trace)."""
    path = tmp_path / "raw.trace"
    path.write_bytes(
        _HEADER.pack(_MAGIC, _VERSION, len(records)) + b"".join(records)
    )
    return path


class TestTraceIngestion:
    """The hardened ingestion layer: streaming, validation, TraceSet."""

    def test_roundtrip_every_opclass(self, tmp_path, builder):
        from repro.isa import OpClass

        trace = [
            builder.int_alu(dst=1),
            builder.int_mul(dst=2, srcs=(1,)),
            builder.fp_alu(dst=3, srcs=(2,)),
            builder.fp_mul(dst=4, srcs=(3, 2)),
            builder.load(dst=5, addr=0x4000, value=77),
            builder.store(addr=0x4040, srcs=(5,), value=77),
            builder.branch(taken=True, srcs=(1,)),
        ]
        assert {i.op for i in trace} == set(OpClass)
        path = tmp_path / "all.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        for a, b in zip(trace, loaded):
            assert (a.pc, a.op, a.srcs, a.dst, a.addr, a.value, a.taken) == (
                b.pc, b.op, b.srcs, b.dst, b.addr, b.value, b.taken,
            )

    def test_iter_trace_streams(self, tmp_path, builder):
        trace = [builder.int_alu(dst=1) for _ in range(30)]
        path = tmp_path / "s.trace"
        save_trace(trace, path)
        it = iter_trace(path)
        assert next(it).op is trace[0].op
        assert sum(1 for _ in it) == 29

    def test_unknown_opclass_names_the_record(self, tmp_path):
        good = _RECORD.pack(0x1000, 0, 1, 0, 0, b"\0\0\0", 0, 0, 0, 0)
        bad = _RECORD.pack(0x1004, 99, 1, 0, 0, b"\0\0\0", 0, 0, 0, 0)
        path = _raw_file(tmp_path, [good, bad])
        with pytest.raises(TraceFormatError, match="record 1: unknown op class 99"):
            load_trace(path)

    def test_register_out_of_range_names_the_record(self, tmp_path):
        bad = _RECORD.pack(0x1000, 0, 80, 0, 0, b"\0\0\0", 0, 0, 0, 0)
        path = _raw_file(tmp_path, [bad])
        with pytest.raises(TraceFormatError, match="record 0: .*register 80"):
            load_trace(path)

    def test_source_count_overflow_rejected(self, tmp_path):
        bad = _RECORD.pack(0x1000, 0, 1, 4, 0, b"\1\2\3", 0, 0, 0, 0)
        path = _raw_file(tmp_path, [bad])
        with pytest.raises(TraceFormatError, match="source count 4"):
            load_trace(path)

    def test_memory_op_without_address_rejected(self, tmp_path):
        bad = _RECORD.pack(0x1000, 4, 1, 0, 0, b"\0\0\0", 0, 0, 0, 0)
        path = _raw_file(tmp_path, [bad])
        with pytest.raises(TraceFormatError, match="LOAD without an address"):
            load_trace(path)

    def test_branch_without_outcome_rejected(self, tmp_path):
        bad = _RECORD.pack(0x1000, 6, -1, 0, 0, b"\0\0\0", 0, 0, 0, 0)
        path = _raw_file(tmp_path, [bad])
        with pytest.raises(TraceFormatError, match="BRANCH without a taken"):
            load_trace(path)

    def test_trailing_bytes_rejected(self, tmp_path, builder):
        path = tmp_path / "t.trace"
        save_trace([builder.int_alu(dst=1)], path)
        path.write_bytes(path.read_bytes() + b"\x00" * 8)
        with pytest.raises(TraceFormatError, match="trailing bytes"):
            load_trace(path)

    def test_error_is_still_a_value_error(self, tmp_path):
        path = tmp_path / "j.trace"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_load_trace_set(self, tmp_path, builder):
        a = [builder.int_alu(dst=1) for _ in range(5)]
        b = [builder.int_alu(dst=2) for _ in range(7)]
        save_trace(a, tmp_path / "first.trace")
        save_trace(b, tmp_path / "second.trace")
        ts = load_trace_set(
            [tmp_path / "first.trace", tmp_path / "second.trace"]
        )
        assert len(ts) == 2
        assert ts.labels == ("first", "second")
        assert ts.name == "first+second"
        assert [len(t) for t in ts.traces] == [5, 7]

    def test_trace_set_validation(self):
        with pytest.raises(ValueError, match="at least one trace"):
            TraceSet(name="x", traces=(), labels=())
        with pytest.raises(ValueError, match="one-to-one"):
            TraceSet(name="x", traces=([],), labels=("a", "b"))

    def test_load_trace_set_needs_paths(self):
        with pytest.raises(ValueError, match="at least one path"):
            load_trace_set([])


class TestExport:
    def test_stats_to_dict(self):
        from repro.core import SimStats

        d = stats_to_dict(SimStats(cycles=10, useful_instructions=25))
        assert d["useful_ipc"] == 2.5
        assert "memory" in d["level_counts"]
        json.dumps(d)  # must be serializable

    def test_result_json_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        result_to_json(sample_result(), path)
        back = load_result_json(path)
        assert back.rows == sample_result().rows
        assert back.summary == sample_result().summary

    def test_result_to_dict_is_serializable(self):
        json.dumps(result_to_dict(sample_result()))

    def test_result_csv(self, tmp_path):
        text = result_to_csv(sample_result())
        lines = text.strip().splitlines()
        assert lines[0] == "workload,pct"
        assert lines[1] == "mcf,12.5"
        assert any(line.startswith("# geomean") for line in lines)


class TestCli:
    def run_cli(self, argv, capsys):
        from repro.__main__ import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_workloads_listing(self, capsys):
        code, out = self.run_cli(["workloads"], capsys)
        assert code == 0
        assert "mcf" in out and "swim" in out

    def test_workloads_suite_filter(self, capsys):
        code, out = self.run_cli(["workloads", "--suite", "fp"], capsys)
        assert code == 0
        assert "swim" in out and "mcf" not in out

    def test_run_command(self, capsys):
        code, out = self.run_cli(
            ["run", "crafty", "--machine", "baseline", "--length", "500"], capsys
        )
        assert code == 0
        assert "useful IPC" in out

    def test_run_mtvp_with_options(self, capsys):
        code, out = self.run_cli(
            [
                "run", "mcf", "--machine", "mtvp", "--threads", "4",
                "--predictor", "oracle", "--selector", "always",
                "--length", "500",
            ],
            capsys,
        )
        assert code == 0
        assert "spawns" in out

    def test_experiment_unknown_id(self, capsys):
        code, out = self.run_cli(["experiment", "fig99"], capsys)
        assert code == 1
        assert "unknown experiment" in out

    def test_trace_command(self, tmp_path, capsys):
        out_path = tmp_path / "x.trace"
        code, out = self.run_cli(
            ["trace", "crafty", str(out_path), "--length", "300"], capsys
        )
        assert code == 0
        assert out_path.exists()
        assert len(load_trace(out_path)) == 300

    def test_run_mode_alias(self, capsys):
        code, out = self.run_cli(
            ["run", "mcf", "--mode", "spmt", "--threads", "4",
             "--length", "500"], capsys
        )
        assert code == 0
        assert "useful IPC" in out

    def test_run_ingested_traces_smt(self, tmp_path, capsys):
        for i in range(2):
            self.run_cli(
                ["trace", "mcf", str(tmp_path / f"p{i}.trace"),
                 "--length", "400", "--seed", str(i)], capsys
            )
        code, out = self.run_cli(
            ["run", "--traces", str(tmp_path / "p0.trace"),
             str(tmp_path / "p1.trace"), "--machine", "smt",
             "--threads", "2"], capsys
        )
        assert code == 0
        assert "ctx 0 [p0]" in out and "ctx 1 [p1]" in out

    def test_run_ingested_single_trace(self, tmp_path, capsys):
        self.run_cli(
            ["trace", "crafty", str(tmp_path / "c.trace"),
             "--length", "300"], capsys
        )
        code, out = self.run_cli(
            ["run", "--traces", str(tmp_path / "c.trace"),
             "--machine", "baseline"], capsys
        )
        assert code == 0
        assert "useful IPC" in out

    def test_run_traces_reject_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_bytes(b"NOPE" + b"\x00" * 60)
        code, out = self.run_cli(
            ["run", "--traces", str(bad), "--machine", "baseline"], capsys
        )
        assert code == 1
        assert "cannot ingest traces" in out

    def test_run_traces_and_workload_conflict(self, tmp_path, capsys):
        code, out = self.run_cli(
            ["run", "mcf", "--traces", "x.trace"], capsys
        )
        assert code == 1
        assert "give one or the other" in out

    def test_run_without_workload_or_traces(self, capsys):
        code, out = self.run_cli(["run"], capsys)
        assert code == 1
        assert "workload name is required" in out
